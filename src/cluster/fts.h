// Fault Tolerance Service (Section 3.1): a coordinator-side daemon that probes
// every segment over the interconnect on a fixed period, counts consecutive
// missed probes per segment, and — once a primary misses enough probes in a
// row — promotes its mirror. Probing and promotion are injected as hooks so the
// daemon stays decoupled from Cluster (and trivially testable).
#ifndef GPHTAP_CLUSTER_FTS_H_
#define GPHTAP_CLUSTER_FTS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/status.h"

namespace gphtap {

class FtsDaemon {
 public:
  struct Hooks {
    int num_segments = 0;
    /// True if segment `i` answered the liveness probe.
    std::function<bool(int)> probe;
    /// True if segment `i` has a promotable mirror.
    std::function<bool(int)> can_failover;
    /// Promotes segment `i`'s mirror. Called from the daemon thread.
    std::function<Status(int)> failover;
  };

  struct Options {
    int64_t period_us = 10'000;       // probe round interval
    int misses_before_failover = 2;   // consecutive missed probes to act
  };

  struct Stats {
    uint64_t probes = 0;
    uint64_t probe_misses = 0;
    uint64_t failovers = 0;
    uint64_t failed_failovers = 0;
  };

  FtsDaemon(Hooks hooks, Options options)
      : hooks_(std::move(hooks)), options_(options) {}
  ~FtsDaemon() { Stop(); }

  FtsDaemon(const FtsDaemon&) = delete;
  FtsDaemon& operator=(const FtsDaemon&) = delete;

  void Start();
  void Stop();

  Stats stats() const {
    return Stats{probes_.load(std::memory_order_relaxed),
                 probe_misses_.load(std::memory_order_relaxed),
                 failovers_.load(std::memory_order_relaxed),
                 failed_failovers_.load(std::memory_order_relaxed)};
  }

 private:
  void Loop();

  const Hooks hooks_;
  const Options options_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> probe_misses_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> failed_failovers_{0};
};

}  // namespace gphtap

#endif  // GPHTAP_CLUSTER_FTS_H_
