// Fault Tolerance Service (Section 3.1): a coordinator-side daemon that probes
// every segment over the interconnect on a fixed period, counts consecutive
// missed probes per segment, and — once a primary misses enough probes in a
// row — promotes its mirror. Probing and promotion are injected as hooks so the
// daemon stays decoupled from Cluster (and trivially testable).
#ifndef GPHTAP_CLUSTER_FTS_H_
#define GPHTAP_CLUSTER_FTS_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace gphtap {

class FtsDaemon {
 public:
  struct Hooks {
    /// Current serving segment count, re-read every probe round so segments
    /// added by online expansion join the probe set.
    std::function<int()> num_segments;
    /// True if segment `i` answered the liveness probe.
    std::function<bool(int)> probe;
    /// True if segment `i` has a promotable mirror.
    std::function<bool(int)> can_failover;
    /// Promotes segment `i`'s mirror. Called from the daemon thread.
    std::function<Status(int)> failover;
  };

  struct Options {
    int64_t period_us = 10'000;       // probe round interval
    int misses_before_failover = 2;   // consecutive missed probes to act
  };

  struct Stats {
    uint64_t probes = 0;
    uint64_t probe_misses = 0;
    uint64_t failovers = 0;
    uint64_t failed_failovers = 0;
  };

  /// `metrics` (optional) registers fts.probes / fts.probe_misses /
  /// fts.failovers counters.
  FtsDaemon(Hooks hooks, Options options, MetricsRegistry* metrics = nullptr)
      : hooks_(std::move(hooks)), options_(options) {
    if (metrics != nullptr) {
      m_probes_ = metrics->counter("fts.probes");
      m_probe_misses_ = metrics->counter("fts.probe_misses");
      m_failovers_ = metrics->counter("fts.failovers");
    }
  }
  ~FtsDaemon() { Stop(); }

  FtsDaemon(const FtsDaemon&) = delete;
  FtsDaemon& operator=(const FtsDaemon&) = delete;

  void Start();
  void Stop();

  Stats stats() const {
    return Stats{probes_.load(std::memory_order_relaxed),
                 probe_misses_.load(std::memory_order_relaxed),
                 failovers_.load(std::memory_order_relaxed),
                 failed_failovers_.load(std::memory_order_relaxed)};
  }

 private:
  void Loop();

  const Hooks hooks_;
  const Options options_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  // Wakes the probe loop out of its inter-round sleep so Stop() returns
  // promptly (same pattern as GddDaemon).
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  Counter* m_probes_ = nullptr;
  Counter* m_probe_misses_ = nullptr;
  Counter* m_failovers_ = nullptr;
  std::atomic<uint64_t> probes_{0};
  std::atomic<uint64_t> probe_misses_{0};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> failed_failovers_{0};
};

}  // namespace gphtap

#endif  // GPHTAP_CLUSTER_FTS_H_
