// Row-group bookkeeping shared by the append-optimized storage kinds.
// AO tables never update in place, so reclamation works at row-group
// granularity: a group whose every row is dead to every live snapshot can be
// freed wholesale. Freed groups keep their index slot (tids are derived from
// group index * group size and must stay stable across reclamation AND across
// change-log replay, which reproduces tids by replaying appends in order).
#ifndef GPHTAP_STORAGE_AO_GROUP_H_
#define GPHTAP_STORAGE_AO_GROUP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "txn/xid.h"

namespace gphtap {

/// Per-row-group occupancy, the measurable trigger for AO compaction and the
/// source of gp_segment_status bloat reporting.
struct AoGroupInfo {
  size_t index = 0;      // group index (tid base = index * group size)
  uint64_t rows = 0;     // rows physically stored (0 once freed)
  uint64_t live = 0;     // rows whose latest state is visible-committed
  uint64_t dead = 0;     // rows dead per the caller's predicate
  bool sealed = false;   // full group (eligible for reclamation)
  bool freed = false;    // physically reclaimed; slot retained for tid math
};

/// Summed occupancy across a table (and, one level up, across a segment).
struct AoBloatStats {
  uint64_t live_rows = 0;
  uint64_t dead_rows = 0;
  uint64_t reclaimed_groups = 0;

  AoBloatStats& operator+=(const AoBloatStats& o) {
    live_rows += o.live_rows;
    dead_rows += o.dead_rows;
    reclaimed_groups += o.reclaimed_groups;
    return *this;
  }
};

/// Classifies one stored row given its xmin and visimap xmax (kInvalidLocalXid
/// when no delete is recorded). Two callers, two predicates:
///   - bloat reporting passes "xmin aborted, or xmax committed";
///   - physical reclamation passes the stricter "dead to every snapshot"
///     (xmax additionally older than the distributed truncation horizon), the
///     same rule HeapTable::Vacuum applies per slot.
using AoRowDeadFn = std::function<bool(LocalXid xmin, LocalXid xmax)>;

/// What a reclamation pass actually freed.
struct AoReclaimResult {
  uint64_t groups_freed = 0;
  uint64_t rows_freed = 0;
};

}  // namespace gphtap

#endif  // GPHTAP_STORAGE_AO_GROUP_H_
