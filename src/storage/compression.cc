#include "storage/compression.h"

#include <cstring>
#include <unordered_map>

namespace gphtap {

namespace {

// ---------- varint / zigzag ----------

void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool GetVarint(const std::vector<uint8_t>& in, size_t* pos, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < in.size() && shift <= 63) {
    uint8_t b = in[(*pos)++];
    result |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutVarint(out, s.size());
  out->insert(out->end(), s.begin(), s.end());
}

bool GetString(const std::vector<uint8_t>& in, size_t* pos, std::string* s) {
  uint64_t len;
  if (!GetVarint(in, pos, &len)) return false;
  if (*pos + len > in.size()) return false;
  s->assign(reinterpret_cast<const char*>(in.data()) + *pos, len);
  *pos += len;
  return true;
}

void PutDouble(std::vector<uint8_t>* out, double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(bits >> (8 * i)));
}

bool GetDouble(const std::vector<uint8_t>& in, size_t* pos, double* d) {
  if (*pos + 8 > in.size()) return false;
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits |= static_cast<uint64_t>(in[*pos + i]) << (8 * i);
  *pos += 8;
  std::memcpy(d, &bits, 8);
  return true;
}

// ---------- null bitmap ----------

void PutNullBitmap(std::vector<uint8_t>* out, const std::vector<Datum>& values) {
  size_t nbytes = (values.size() + 7) / 8;
  size_t start = out->size();
  out->resize(start + nbytes, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].is_null()) (*out)[start + i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  }
}

std::vector<bool> GetNullBitmap(const std::vector<uint8_t>& in, size_t* pos,
                                uint32_t count) {
  std::vector<bool> nulls(count, false);
  size_t nbytes = (count + 7) / 8;
  for (uint32_t i = 0; i < count && *pos + i / 8 < in.size(); ++i) {
    nulls[i] = (in[*pos + i / 8] >> (i % 8)) & 1;
  }
  *pos += nbytes;
  return nulls;
}

void PutValue(std::vector<uint8_t>* out, const Datum& d, TypeId type) {
  switch (type) {
    case TypeId::kInt64:
      PutVarint(out, ZigzagEncode(d.int_val()));
      break;
    case TypeId::kDouble:
      PutDouble(out, d.double_val());
      break;
    case TypeId::kString:
      PutString(out, d.string_val());
      break;
  }
}

bool GetValue(const std::vector<uint8_t>& in, size_t* pos, TypeId type, Datum* d) {
  switch (type) {
    case TypeId::kInt64: {
      uint64_t v;
      if (!GetVarint(in, pos, &v)) return false;
      *d = Datum(ZigzagDecode(v));
      return true;
    }
    case TypeId::kDouble: {
      double v;
      if (!GetDouble(in, pos, &v)) return false;
      *d = Datum(v);
      return true;
    }
    case TypeId::kString: {
      std::string s;
      if (!GetString(in, pos, &s)) return false;
      *d = Datum(std::move(s));
      return true;
    }
  }
  return false;
}

// ---------- codec payloads (operate on the non-null values, in order) ----------

void EncodeRaw(const std::vector<Datum>& nn, TypeId type, std::vector<uint8_t>* out) {
  for (const Datum& d : nn) PutValue(out, d, type);
}

bool DecodeRaw(const std::vector<uint8_t>& in, size_t* pos, TypeId type, size_t n,
               std::vector<Datum>* out) {
  for (size_t i = 0; i < n; ++i) {
    Datum d;
    if (!GetValue(in, pos, type, &d)) return false;
    out->push_back(std::move(d));
  }
  return true;
}

void EncodeRle(const std::vector<Datum>& nn, TypeId type, std::vector<uint8_t>* out) {
  size_t i = 0;
  while (i < nn.size()) {
    size_t j = i;
    while (j < nn.size() && nn[j] == nn[i]) ++j;
    PutVarint(out, j - i);  // run length
    PutValue(out, nn[i], type);
    i = j;
  }
}

bool DecodeRle(const std::vector<uint8_t>& in, size_t* pos, TypeId type, size_t n,
               std::vector<Datum>* out) {
  while (out->size() < n) {
    uint64_t run;
    Datum d;
    if (!GetVarint(in, pos, &run)) return false;
    if (!GetValue(in, pos, type, &d)) return false;
    if (run == 0 || out->size() + run > n) return false;
    for (uint64_t k = 0; k < run; ++k) out->push_back(d);
  }
  return true;
}

void EncodeDelta(const std::vector<Datum>& nn, std::vector<uint8_t>* out) {
  int64_t prev = 0;
  for (const Datum& d : nn) {
    int64_t v = d.int_val();
    PutVarint(out, ZigzagEncode(v - prev));
    prev = v;
  }
}

bool DecodeDelta(const std::vector<uint8_t>& in, size_t* pos, size_t n,
                 std::vector<Datum>* out) {
  int64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t z;
    if (!GetVarint(in, pos, &z)) return false;
    prev += ZigzagDecode(z);
    out->push_back(Datum(prev));
  }
  return true;
}

void EncodeDict(const std::vector<Datum>& nn, TypeId type, std::vector<uint8_t>* out) {
  std::vector<Datum> dict;
  std::unordered_map<std::string, uint64_t> seen;  // keyed by ToString (exact per type)
  std::vector<uint64_t> codes;
  codes.reserve(nn.size());
  for (const Datum& d : nn) {
    std::string key = d.ToString();
    auto it = seen.find(key);
    if (it == seen.end()) {
      it = seen.emplace(key, dict.size()).first;
      dict.push_back(d);
    }
    codes.push_back(it->second);
  }
  PutVarint(out, dict.size());
  for (const Datum& d : dict) PutValue(out, d, type);
  for (uint64_t c : codes) PutVarint(out, c);
}

bool DecodeDict(const std::vector<uint8_t>& in, size_t* pos, TypeId type, size_t n,
                std::vector<Datum>* out) {
  uint64_t dict_size;
  if (!GetVarint(in, pos, &dict_size)) return false;
  std::vector<Datum> dict;
  dict.reserve(dict_size);
  for (uint64_t i = 0; i < dict_size; ++i) {
    Datum d;
    if (!GetValue(in, pos, type, &d)) return false;
    dict.push_back(std::move(d));
  }
  for (size_t i = 0; i < n; ++i) {
    uint64_t code;
    if (!GetVarint(in, pos, &code)) return false;
    if (code >= dict.size()) return false;
    out->push_back(dict[code]);
  }
  return true;
}

}  // namespace

// ---------- LZ77-style byte codec ----------

std::vector<uint8_t> LzCompress(const std::vector<uint8_t>& in) {
  // Format: sequence of tokens. Token byte T:
  //   T < 0x80: literal run of T+1 bytes follows.
  //   T >= 0x80: match; length = (T & 0x7f) + kMinMatch, followed by varint
  //              backward distance (>=1).
  constexpr size_t kMinMatch = 4;
  constexpr size_t kMaxMatchLen = 0x7f + kMinMatch;
  std::vector<uint8_t> out;
  PutVarint(&out, in.size());
  if (in.empty()) return out;

  std::unordered_map<uint32_t, size_t> table;  // 4-byte prefix hash -> position
  auto hash4 = [&](size_t p) {
    uint32_t v;
    std::memcpy(&v, in.data() + p, 4);
    return v * 2654435761u;
  };

  size_t i = 0, lit_start = 0;
  auto flush_literals = [&](size_t end) {
    size_t p = lit_start;
    while (p < end) {
      size_t run = std::min<size_t>(end - p, 0x80);
      out.push_back(static_cast<uint8_t>(run - 1));
      out.insert(out.end(), in.begin() + static_cast<long>(p),
                 in.begin() + static_cast<long>(p + run));
      p += run;
    }
  };

  while (i + kMinMatch <= in.size()) {
    uint32_t h = hash4(i);
    auto it = table.find(h);
    size_t match_pos = (it != table.end()) ? it->second : SIZE_MAX;
    table[h] = i;
    if (match_pos != SIZE_MAX && i - match_pos <= (1u << 20) &&
        std::memcmp(in.data() + match_pos, in.data() + i, kMinMatch) == 0) {
      size_t len = kMinMatch;
      while (i + len < in.size() && len < kMaxMatchLen &&
             in[match_pos + len] == in[i + len]) {
        ++len;
      }
      flush_literals(i);
      out.push_back(static_cast<uint8_t>(0x80 | (len - kMinMatch)));
      PutVarint(&out, i - match_pos);
      i += len;
      lit_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(in.size());
  return out;
}

StatusOr<std::vector<uint8_t>> LzDecompress(const std::vector<uint8_t>& in) {
  constexpr size_t kMinMatch = 4;
  size_t pos = 0;
  uint64_t total;
  if (!GetVarint(in, &pos, &total)) return Status::InvalidArgument("lz: bad header");
  std::vector<uint8_t> out;
  out.reserve(total);
  while (out.size() < total) {
    if (pos >= in.size()) return Status::InvalidArgument("lz: truncated stream");
    uint8_t t = in[pos++];
    if (t < 0x80) {
      size_t run = static_cast<size_t>(t) + 1;
      if (pos + run > in.size()) return Status::InvalidArgument("lz: bad literal run");
      out.insert(out.end(), in.begin() + static_cast<long>(pos),
                 in.begin() + static_cast<long>(pos + run));
      pos += run;
    } else {
      size_t len = static_cast<size_t>(t & 0x7f) + kMinMatch;
      uint64_t dist;
      if (!GetVarint(in, &pos, &dist)) return Status::InvalidArgument("lz: bad distance");
      if (dist == 0 || dist > out.size()) {
        return Status::InvalidArgument("lz: distance out of range");
      }
      size_t start = out.size() - dist;
      for (size_t k = 0; k < len; ++k) out.push_back(out[start + k]);  // may overlap
    }
  }
  if (out.size() != total) return Status::InvalidArgument("lz: size mismatch");
  return out;
}

// ---------- public entry points ----------

Status CompressColumn(CompressionKind kind, TypeId type,
                      const std::vector<Datum>& values, CompressedBlock* out) {
  out->type = type;
  out->count = static_cast<uint32_t>(values.size());
  out->bytes.clear();

  std::vector<Datum> non_null;
  non_null.reserve(values.size());
  for (const Datum& d : values) {
    if (!d.is_null()) non_null.push_back(d);
  }
  // Delta applies to ints only; fall back to raw otherwise.
  CompressionKind effective = kind;
  if (kind == CompressionKind::kDelta && type != TypeId::kInt64) {
    effective = CompressionKind::kNone;
  }
  out->kind = effective;

  PutNullBitmap(&out->bytes, values);
  switch (effective) {
    case CompressionKind::kNone:
      EncodeRaw(non_null, type, &out->bytes);
      break;
    case CompressionKind::kRle:
      EncodeRle(non_null, type, &out->bytes);
      break;
    case CompressionKind::kDelta:
      EncodeDelta(non_null, &out->bytes);
      break;
    case CompressionKind::kDict:
      EncodeDict(non_null, type, &out->bytes);
      break;
    case CompressionKind::kLz: {
      std::vector<uint8_t> raw;
      EncodeRaw(non_null, type, &raw);
      std::vector<uint8_t> packed = LzCompress(raw);
      out->bytes.insert(out->bytes.end(), packed.begin(), packed.end());
      break;
    }
  }
  return Status::OK();
}

StatusOr<std::vector<Datum>> DecompressColumn(const CompressedBlock& block) {
  size_t pos = 0;
  std::vector<bool> nulls = GetNullBitmap(block.bytes, &pos, block.count);
  size_t num_non_null = 0;
  for (bool b : nulls) {
    if (!b) ++num_non_null;
  }

  std::vector<Datum> non_null;
  non_null.reserve(num_non_null);
  bool ok = false;
  switch (block.kind) {
    case CompressionKind::kNone:
      ok = DecodeRaw(block.bytes, &pos, block.type, num_non_null, &non_null);
      break;
    case CompressionKind::kRle:
      ok = num_non_null == 0 ||
           DecodeRle(block.bytes, &pos, block.type, num_non_null, &non_null);
      break;
    case CompressionKind::kDelta:
      ok = DecodeDelta(block.bytes, &pos, num_non_null, &non_null);
      break;
    case CompressionKind::kDict:
      ok = DecodeDict(block.bytes, &pos, block.type, num_non_null, &non_null);
      break;
    case CompressionKind::kLz: {
      std::vector<uint8_t> packed(block.bytes.begin() + static_cast<long>(pos),
                                  block.bytes.end());
      auto raw = LzDecompress(packed);
      if (!raw.ok()) return raw.status();
      size_t rpos = 0;
      ok = DecodeRaw(*raw, &rpos, block.type, num_non_null, &non_null);
      break;
    }
  }
  if (!ok) return Status::InvalidArgument("corrupt compressed block");

  std::vector<Datum> out;
  out.reserve(block.count);
  size_t next = 0;
  for (uint32_t i = 0; i < block.count; ++i) {
    if (nulls[i]) {
      out.push_back(Datum::Null());
    } else {
      out.push_back(std::move(non_null[next++]));
    }
  }
  return out;
}

}  // namespace gphtap
