// Append-optimized row-oriented storage (Section 3.4): bulk-load friendly.
// DELETE/UPDATE go through a visibility map under a relation-level
// ExclusiveLock (as in Greenplum), not through MVCC version chains.
#ifndef GPHTAP_STORAGE_AO_TABLE_H_
#define GPHTAP_STORAGE_AO_TABLE_H_

#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "storage/table.h"

namespace gphtap {

class AoRowTable : public Table {
 public:
  explicit AoRowTable(TableDef def) : Table(std::move(def)) {}

  StatusOr<TupleId> Insert(LocalXid xid, const Row& row) override;
  Status Scan(const VisibilityContext& ctx, const ScanCallback& fn) override;
  Status Truncate() override;
  uint64_t StoredVersionCount() const override;
  uint64_t BytesScanned() const override;

  /// Visibility-map delete (Greenplum's AO DML): records that `xid` deleted
  /// `tid`. Callers serialize through a relation-level ExclusiveLock, so a
  /// pre-existing entry can only be from an aborted deleter and is overwritten.
  Status MarkDeleted(TupleId tid, LocalXid xid);
  size_t VisimapSize() const;

 private:
  struct StoredRow {
    LocalXid xmin;
    Row row;
  };

  mutable std::shared_mutex latch_;
  std::vector<StoredRow> rows_;
  std::unordered_map<TupleId, LocalXid> visimap_;  // tid -> deleting xid
  mutable uint64_t bytes_scanned_ = 0;
};

}  // namespace gphtap

#endif  // GPHTAP_STORAGE_AO_TABLE_H_
