// Append-optimized row-oriented storage (Section 3.4): bulk-load friendly.
// DELETE/UPDATE go through a visibility map under a relation-level
// ExclusiveLock (as in Greenplum), not through MVCC version chains.
//
// Rows are stored in fixed-capacity row groups so reclamation (VACUUM) can
// free a fully-dead group wholesale. Freed groups keep their index slot: tids
// are group*kGroupSize+offset and must survive both reclamation and
// change-log replay (which reproduces tids by replaying appends in order).
#ifndef GPHTAP_STORAGE_AO_TABLE_H_
#define GPHTAP_STORAGE_AO_TABLE_H_

#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "storage/ao_group.h"
#include "storage/table.h"

namespace gphtap {

class AoRowTable : public Table {
 public:
  /// Row-group capacity: small enough that unit tests fill groups cheaply,
  /// large enough that reclamation amortizes.
  static constexpr size_t kGroupSize = 256;

  explicit AoRowTable(TableDef def) : Table(std::move(def)) {}

  StatusOr<TupleId> Insert(LocalXid xid, const Row& row) override;
  Status Scan(const VisibilityContext& ctx, const ScanCallback& fn) override;
  Status Truncate() override;
  uint64_t StoredVersionCount() const override;
  uint64_t BytesScanned() const override;

  /// Visibility-map delete (Greenplum's AO DML): records that `xid` deleted
  /// `tid`. Callers serialize through a relation-level ExclusiveLock, so a
  /// pre-existing entry can only be from an aborted deleter and is overwritten.
  Status MarkDeleted(TupleId tid, LocalXid xid);
  size_t VisimapSize() const;

  /// Per-group occupancy under the caller's dead-row predicate (bloat
  /// reporting and the compaction trigger).
  std::vector<AoGroupInfo> GroupInfos(const AoRowDeadFn& dead) const;

  /// Frees every sealed (full) group whose rows are all dead per `dead` —
  /// the predicate must mean "dead to every snapshot". Emits one kFreeGroup
  /// change record per freed group. Callers hold ShareUpdateExclusiveLock.
  AoReclaimResult ReclaimDeadGroups(const AoRowDeadFn& dead);

  /// Replay-side free (crash recovery / mirrors): frees group `group_index`
  /// without emitting a change record.
  Status ApplyFreeGroup(size_t group_index);

 private:
  struct StoredRow {
    LocalXid xmin;
    Row row;
  };

  struct Group {
    std::vector<StoredRow> rows;  // cleared once freed
    bool freed = false;
  };

  // Requires latch_ held (unique). Clears the group and its visimap range.
  void FreeGroupLocked(size_t gi);

  mutable std::shared_mutex latch_;
  std::vector<Group> groups_;
  uint64_t stored_rows_ = 0;  // rows in non-freed groups
  std::unordered_map<TupleId, LocalXid> visimap_;  // tid -> deleting xid
  mutable uint64_t bytes_scanned_ = 0;
};

}  // namespace gphtap

#endif  // GPHTAP_STORAGE_AO_TABLE_H_
