#include "storage/external_table.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace gphtap {

StatusOr<Row> ExternalTable::ParseCsvLine(const std::string& line, const Schema& schema) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  if (fields.size() != schema.num_columns()) {
    return Status::InvalidArgument("csv arity mismatch: " + line);
  }
  Row row;
  row.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    if (f.empty()) {
      row.push_back(Datum::Null());
      continue;
    }
    switch (schema.column(i).type) {
      case TypeId::kInt64: {
        char* end = nullptr;
        long long v = std::strtoll(f.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
          return Status::InvalidArgument("bad int in csv: " + f);
        }
        row.push_back(Datum(static_cast<int64_t>(v)));
        break;
      }
      case TypeId::kDouble: {
        char* end = nullptr;
        double v = std::strtod(f.c_str(), &end);
        if (end == nullptr || *end != '\0') {
          return Status::InvalidArgument("bad double in csv: " + f);
        }
        row.push_back(Datum(v));
        break;
      }
      case TypeId::kString:
        row.push_back(Datum(f));
        break;
    }
  }
  return row;
}

std::string ExternalTable::FormatCsvLine(const Row& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) out += ",";
    if (!row[i].is_null()) out += row[i].ToString();
  }
  return out;
}

StatusOr<TupleId> ExternalTable::Insert(LocalXid /*xid*/, const Row& row) {
  GPHTAP_RETURN_IF_ERROR(schema().CheckRow(row));
  std::lock_guard<std::mutex> g(mu_);
  std::ofstream f(def().external_path, std::ios::app);
  if (!f.good()) {
    return Status::Unavailable("cannot open external file " + def().external_path);
  }
  f << FormatCsvLine(row) << "\n";
  return kInvalidTupleId;  // external rows have no tuple identity
}

Status ExternalTable::Scan(const VisibilityContext& /*ctx*/, const ScanCallback& fn) {
  std::lock_guard<std::mutex> g(mu_);
  std::ifstream f(def().external_path);
  if (!f.good()) return Status::OK();  // missing file == empty table
  std::string line;
  TupleId tid = 0;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    auto row = ParseCsvLine(line, schema());
    if (!row.ok()) return row.status();
    if (!fn(tid++, *row)) return Status::OK();
  }
  return Status::OK();
}

Status ExternalTable::Truncate() {
  std::lock_guard<std::mutex> g(mu_);
  if (def().external_path.empty()) return Status::OK();
  std::ofstream f(def().external_path, std::ios::trunc);
  return Status::OK();
}

uint64_t ExternalTable::StoredVersionCount() const {
  std::lock_guard<std::mutex> g(mu_);
  std::ifstream f(def().external_path);
  if (!f.good()) return 0;
  uint64_t n = 0;
  std::string line;
  while (std::getline(f, line)) {
    if (!line.empty()) ++n;
  }
  return n;
}

}  // namespace gphtap
