// Range-partitioned root table: a hierarchy where only leaf partitions hold
// data, and each leaf may use a different storage kind — the paper's
// "polymorphic partitioning" (Figure 5: hot heap partitions, colder AO-column
// partitions, archived external partitions).
#ifndef GPHTAP_STORAGE_PARTITIONED_TABLE_H_
#define GPHTAP_STORAGE_PARTITIONED_TABLE_H_

#include <memory>
#include <vector>

#include "storage/table.h"

namespace gphtap {

class PartitionedTable : public Table {
 public:
  /// `leaves` must align 1:1 with def.partitions->ranges.
  PartitionedTable(TableDef def, std::vector<std::unique_ptr<Table>> leaves);

  StatusOr<TupleId> Insert(LocalXid xid, const Row& row) override;
  Status Scan(const VisibilityContext& ctx, const ScanCallback& fn) override;
  Status ScanColumns(const VisibilityContext& ctx, const std::vector<int>& cols,
                     const ScanCallback& fn) override;
  Status Truncate() override;
  uint64_t StoredVersionCount() const override;
  uint64_t BytesScanned() const override;

  /// Leaf responsible for partition-column value `v`, or nullptr if out of range.
  Table* LeafFor(const Datum& v);
  size_t num_leaves() const { return leaves_.size(); }
  Table* leaf(size_t i) { return leaves_[i].get(); }

 private:
  std::vector<std::unique_ptr<Table>> leaves_;
};

}  // namespace gphtap

#endif  // GPHTAP_STORAGE_PARTITIONED_TABLE_H_
