// Page-based MVCC heap storage (PostgreSQL-style): fixed-size pages of version
// slots, ctid chains for UPDATE, buffer-pool accounting, optional hash indexes,
// and a VACUUM that reclaims dead versions.
#ifndef GPHTAP_STORAGE_HEAP_TABLE_H_
#define GPHTAP_STORAGE_HEAP_TABLE_H_

#include <atomic>
#include <deque>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/table.h"
#include "txn/clog.h"

namespace gphtap {

/// Outcome of attempting to stamp a delete/update xmax onto a tuple version.
enum class MarkDeleteOutcome {
  kOk,           // xmax stamped; caller owns the delete
  kWait,         // an in-progress transaction holds the version; wait on wait_xid
  kFollow,       // a committed transaction (wait_xid) replaced it; follow next
  kSelfUpdated,  // this transaction already deleted the version
};

struct MarkDeleteResult {
  MarkDeleteOutcome outcome = MarkDeleteOutcome::kOk;
  LocalXid wait_xid = kInvalidLocalXid;
  TupleId next = kInvalidTupleId;
};

class HeapTable : public Table {
 public:
  static constexpr uint64_t kSlotsPerPage = 64;

  /// `clog` resolves in-progress/committed/aborted for version stamping;
  /// `pool` (optional) charges page accesses to the segment's buffer cache.
  HeapTable(TableDef def, const CommitLog* clog, BufferPool* pool = nullptr);

  StatusOr<TupleId> Insert(LocalXid xid, const Row& row) override;
  Status Scan(const VisibilityContext& ctx, const ScanCallback& fn) override;
  Status Truncate() override;
  bool SupportsMvccWrite() const override { return true; }
  uint64_t StoredVersionCount() const override;
  uint64_t BytesScanned() const override;

  /// Copy of the version at `tid` (header + row). Invalid tid -> NotFound.
  StatusOr<TupleVersion> Get(TupleId tid) const;

  /// Tries to stamp xmax=xid on `tid` following the PostgreSQL rules: free or
  /// aborted xmax is overwritten; in-progress xmax means wait; committed xmax
  /// means the row was replaced — follow the ctid chain.
  MarkDeleteResult TryMarkDeleted(TupleId tid, LocalXid xid);

  /// Chains `new_tid` as the successor version of `old_tid` (UPDATE).
  void LinkNewVersion(TupleId old_tid, TupleId new_tid);

  /// Looks up candidate versions by equality on an indexed column. Results
  /// still require a visibility check. Returns empty when `col` is not indexed
  /// (callers fall back to a scan).
  std::vector<TupleId> IndexLookup(int col, const Datum& key) const;
  bool HasIndexOn(int col) const;

  /// Builds a hash index over `col` from the existing contents (CREATE INDEX).
  /// No-op if the index already exists.
  void AddIndex(int col);

  /// Reclaims versions invisible to every transaction: xmin aborted, or xmax
  /// committed with xmax < oldest_running. Returns the number of slots freed.
  /// (Unit-test convenience; the cluster path uses the predicate overload.)
  uint64_t Vacuum(LocalXid oldest_running);

  /// Predicate-based reclamation: a version with a committed xmax is freed only
  /// when `delete_visible_to_all(xmax)` — i.e. every live snapshot in the whole
  /// cluster already sees the deletion. Guards readers that hold distributed
  /// snapshots without any local xid on this segment.
  uint64_t Vacuum(const std::function<bool(LocalXid)>& delete_visible_to_all);

  uint64_t FreeSlots() const;

  // ---- Mirror replay API (applies replicated records; emits nothing) ----
  Status ApplyInsertAt(TupleId tid, LocalXid xid, const Row& row);
  void ApplySetXmax(TupleId tid, LocalXid xid);
  void ApplyLink(TupleId old_tid, TupleId new_tid);
  void ApplyFreeSlot(TupleId tid);

 private:
  struct Page {
    std::vector<TupleVersion> slots;  // size up to kSlotsPerPage
  };

  void TouchPage(uint64_t page_no) const;
  TupleVersion* SlotAt(TupleId tid);
  const TupleVersion* SlotAt(TupleId tid) const;
  void IndexInsertLocked(TupleId tid, const Row& row);
  void IndexRemoveLocked(TupleId tid, const Row& row);

  const CommitLog* const clog_;
  BufferPool* const pool_;

  mutable std::shared_mutex latch_;
  std::deque<Page> pages_;
  std::vector<TupleId> free_list_;
  uint64_t live_versions_ = 0;
  mutable std::atomic<uint64_t> bytes_scanned_{0};  // scanners race under the shared latch
  // Per indexed column: hash(datum) -> tids with that hash (verify on lookup).
  std::unordered_map<int, std::unordered_multimap<uint64_t, TupleId>> indexes_;
};

}  // namespace gphtap

#endif  // GPHTAP_STORAGE_HEAP_TABLE_H_
