// MVCC tuple representation for heap storage.
#ifndef GPHTAP_STORAGE_TUPLE_H_
#define GPHTAP_STORAGE_TUPLE_H_

#include <cstdint>

#include "catalog/datum.h"
#include "txn/xid.h"

namespace gphtap {

/// Position of a tuple version within one segment's table: page * slots + slot.
using TupleId = uint64_t;
inline constexpr TupleId kInvalidTupleId = ~0ULL;

/// Per-version MVCC header, stamped with segment-local xids (the paper,
/// Section 5.1: versions carry local xids; the local->distributed mapping plus
/// the distributed snapshot decide visibility).
struct TupleHeader {
  LocalXid xmin = kInvalidLocalXid;  // creating transaction
  LocalXid xmax = kInvalidLocalXid;  // deleting transaction (0 = live)
  TupleId next_version = kInvalidTupleId;  // newer version after UPDATE (ctid chain)
};

struct TupleVersion {
  TupleHeader header;
  Row row;
};

}  // namespace gphtap

#endif  // GPHTAP_STORAGE_TUPLE_H_
