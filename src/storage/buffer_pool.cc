#include "storage/buffer_pool.h"

#include "common/clock.h"
#include "common/wait_event.h"
#include "stats/statement_resources.h"

namespace gphtap {

BufferPool::BufferPool(Options options) : options_(options) {}

void BufferPool::Access(TableId table, uint64_t page) {
  // Ambient per-statement attribution (gp_stat_statements buffer columns):
  // the executor installs the statement's accumulator on each slice thread's
  // wait context, so the pool needs no per-call plumbing.
  StatementResources* res = nullptr;
  if (WaitContext* wc = CurrentWaitContext(); wc != nullptr) res = wc->resources;
  bool miss = false;
  {
    std::lock_guard<std::mutex> g(mu_);
    Key key{table, page};
    auto it = resident_.find(key);
    if (it != resident_.end()) {
      ++stats_.hits;
      if (m_hits_ != nullptr) m_hits_->Add(1);
      if (res != nullptr) res->buffer_hits.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    ++stats_.misses;
    if (m_misses_ != nullptr) m_misses_->Add(1);
    if (res != nullptr) res->buffer_misses.fetch_add(1, std::memory_order_relaxed);
    miss = true;
    if (resident_.size() >= options_.capacity_pages && !lru_.empty()) {
      resident_.erase(lru_.back());
      lru_.pop_back();
      ++stats_.evictions;
      if (m_evictions_ != nullptr) m_evictions_->Add(1);
    }
    lru_.push_front(key);
    resident_[key] = lru_.begin();
  }
  // Pay the I/O cost outside the pool mutex so concurrent hits are not
  // blocked; faults themselves queue on the device when it is a single disk.
  if (miss && options_.miss_cost_us > 0) {
    WaitEventScope wait(WaitEvent::kBufferRead);
    if (options_.single_device) {
      std::lock_guard<std::mutex> io(io_mu_);
      PreciseSleepUs(options_.miss_cost_us);
    } else {
      PreciseSleepUs(options_.miss_cost_us);
    }
  }
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

size_t BufferPool::resident_pages() const {
  std::lock_guard<std::mutex> g(mu_);
  return resident_.size();
}

void BufferPool::set_metrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  std::lock_guard<std::mutex> g(mu_);
  m_hits_ = metrics->counter("bufferpool.hits");
  m_misses_ = metrics->counter("bufferpool.misses");
  m_evictions_ = metrics->counter("bufferpool.evictions");
}

}  // namespace gphtap
