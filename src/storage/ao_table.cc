#include "storage/ao_table.h"

namespace gphtap {

StatusOr<TupleId> AoRowTable::Insert(LocalXid xid, const Row& row) {
  GPHTAP_RETURN_IF_ERROR(schema().CheckRow(row));
  std::unique_lock<std::shared_mutex> g(latch_);
  // Appends go to the tail group; a freed or full tail starts a new group.
  // This is a pure function of the operation sequence, so change-log replay
  // (appends and frees in log order) reproduces every tid exactly.
  if (groups_.empty() || groups_.back().freed ||
      groups_.back().rows.size() >= kGroupSize) {
    groups_.emplace_back();
  }
  Group& tail = groups_.back();
  tail.rows.push_back(StoredRow{xid, row});
  ++stored_rows_;
  TupleId tid =
      static_cast<TupleId>((groups_.size() - 1) * kGroupSize + tail.rows.size() - 1);
  if (change_log() != nullptr) {
    change_log()->Append(
        ChangeRecord{ChangeKind::kInsert, id(), tid, kInvalidTupleId, xid, row});
  }
  return tid;
}

Status AoRowTable::Scan(const VisibilityContext& ctx, const ScanCallback& fn) {
  // Append-only: snapshot the current group count, then read group by group —
  // concurrent appends land past the snapshot and are invisible to this
  // snapshot anyway; a group freed mid-scan held only rows dead to every
  // snapshot (including ours), so seeing it empty is correct.
  size_t ngroups;
  {
    std::shared_lock<std::shared_mutex> g(latch_);
    ngroups = groups_.size();
  }
  std::vector<std::pair<TupleId, Row>> batch;
  for (size_t gi = 0; gi < ngroups; ++gi) {
    batch.clear();
    {
      std::shared_lock<std::shared_mutex> g(latch_);
      const Group& group = groups_[gi];
      if (group.freed) continue;
      TupleId base = static_cast<TupleId>(gi * kGroupSize);
      for (size_t r = 0; r < group.rows.size(); ++r) {
        const StoredRow& row = group.rows[r];
        auto del = visimap_.find(base + r);
        LocalXid xmax = del == visimap_.end() ? kInvalidLocalXid : del->second;
        if (!TupleVisible(row.xmin, xmax, ctx)) continue;
        batch.emplace_back(base + r, row.row);
        bytes_scanned_ += 16 * row.row.size();
      }
    }
    for (auto& [tid, row] : batch) {
      if (!fn(tid, row)) return Status::OK();
    }
  }
  return Status::OK();
}

Status AoRowTable::MarkDeleted(TupleId tid, LocalXid xid) {
  std::unique_lock<std::shared_mutex> g(latch_);
  size_t gi = tid / kGroupSize;
  size_t off = tid % kGroupSize;
  if (gi >= groups_.size() || groups_[gi].freed || off >= groups_[gi].rows.size()) {
    return Status::NotFound("AO tid " + std::to_string(tid));
  }
  visimap_[tid] = xid;
  if (change_log() != nullptr) {
    change_log()->Append(
        ChangeRecord{ChangeKind::kSetXmax, id(), tid, kInvalidTupleId, xid, {}});
  }
  return Status::OK();
}

size_t AoRowTable::VisimapSize() const {
  std::shared_lock<std::shared_mutex> g(latch_);
  return visimap_.size();
}

std::vector<AoGroupInfo> AoRowTable::GroupInfos(const AoRowDeadFn& dead) const {
  std::shared_lock<std::shared_mutex> g(latch_);
  std::vector<AoGroupInfo> infos;
  infos.reserve(groups_.size());
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    const Group& group = groups_[gi];
    AoGroupInfo info;
    info.index = gi;
    info.freed = group.freed;
    info.rows = group.rows.size();
    info.sealed = group.freed || group.rows.size() >= kGroupSize;
    TupleId base = static_cast<TupleId>(gi * kGroupSize);
    for (size_t r = 0; r < group.rows.size(); ++r) {
      auto del = visimap_.find(base + r);
      LocalXid xmax = del == visimap_.end() ? kInvalidLocalXid : del->second;
      if (dead(group.rows[r].xmin, xmax)) {
        ++info.dead;
      } else {
        ++info.live;
      }
    }
    infos.push_back(info);
  }
  return infos;
}

void AoRowTable::FreeGroupLocked(size_t gi) {
  Group& group = groups_[gi];
  stored_rows_ -= group.rows.size();
  TupleId base = static_cast<TupleId>(gi * kGroupSize);
  for (size_t r = 0; r < group.rows.size(); ++r) visimap_.erase(base + r);
  std::vector<StoredRow>().swap(group.rows);
  group.freed = true;
}

AoReclaimResult AoRowTable::ReclaimDeadGroups(const AoRowDeadFn& dead) {
  std::unique_lock<std::shared_mutex> g(latch_);
  AoReclaimResult result;
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    Group& group = groups_[gi];
    // Only sealed (full) groups: the tail group is still taking appends.
    if (group.freed || group.rows.size() < kGroupSize) continue;
    TupleId base = static_cast<TupleId>(gi * kGroupSize);
    bool all_dead = true;
    for (size_t r = 0; r < group.rows.size() && all_dead; ++r) {
      auto del = visimap_.find(base + r);
      LocalXid xmax = del == visimap_.end() ? kInvalidLocalXid : del->second;
      all_dead = dead(group.rows[r].xmin, xmax);
    }
    if (!all_dead) continue;
    result.rows_freed += group.rows.size();
    ++result.groups_freed;
    FreeGroupLocked(gi);
    if (change_log() != nullptr) {
      change_log()->Append(ChangeRecord{ChangeKind::kFreeGroup, id(),
                                        static_cast<TupleId>(gi), kInvalidTupleId,
                                        kInvalidLocalXid, {}});
    }
  }
  return result;
}

Status AoRowTable::ApplyFreeGroup(size_t group_index) {
  std::unique_lock<std::shared_mutex> g(latch_);
  if (group_index >= groups_.size()) {
    return Status::NotFound("AO free-group replay: group " +
                            std::to_string(group_index));
  }
  if (!groups_[group_index].freed) FreeGroupLocked(group_index);
  return Status::OK();
}

Status AoRowTable::Truncate() {
  std::unique_lock<std::shared_mutex> g(latch_);
  groups_.clear();
  stored_rows_ = 0;
  visimap_.clear();
  if (change_log() != nullptr) {
    change_log()->Append(ChangeRecord{ChangeKind::kTruncate, id(), kInvalidTupleId,
                                      kInvalidTupleId, kInvalidLocalXid, {}});
  }
  return Status::OK();
}

uint64_t AoRowTable::StoredVersionCount() const {
  std::shared_lock<std::shared_mutex> g(latch_);
  return stored_rows_;
}

uint64_t AoRowTable::BytesScanned() const {
  std::shared_lock<std::shared_mutex> g(latch_);
  return bytes_scanned_;
}

}  // namespace gphtap
