#include "storage/ao_table.h"

namespace gphtap {

StatusOr<TupleId> AoRowTable::Insert(LocalXid xid, const Row& row) {
  GPHTAP_RETURN_IF_ERROR(schema().CheckRow(row));
  std::unique_lock<std::shared_mutex> g(latch_);
  rows_.push_back(StoredRow{xid, row});
  TupleId tid = static_cast<TupleId>(rows_.size() - 1);
  if (change_log() != nullptr) {
    change_log()->Append(
        ChangeRecord{ChangeKind::kInsert, id(), tid, kInvalidTupleId, xid, row});
  }
  return tid;
}

Status AoRowTable::Scan(const VisibilityContext& ctx, const ScanCallback& fn) {
  // Append-only: snapshot the current length, then read without re-checking —
  // concurrent appends land past `n` and are invisible to this snapshot anyway.
  size_t n;
  {
    std::shared_lock<std::shared_mutex> g(latch_);
    n = rows_.size();
  }
  constexpr size_t kBatch = 256;
  std::vector<std::pair<TupleId, Row>> batch;
  for (size_t start = 0; start < n; start += kBatch) {
    size_t end = std::min(n, start + kBatch);
    batch.clear();
    {
      std::shared_lock<std::shared_mutex> g(latch_);
      for (size_t i = start; i < end; ++i) {
        const StoredRow& r = rows_[i];
        auto del = visimap_.find(static_cast<TupleId>(i));
        LocalXid xmax = del == visimap_.end() ? kInvalidLocalXid : del->second;
        if (!TupleVisible(r.xmin, xmax, ctx)) continue;
        batch.emplace_back(static_cast<TupleId>(i), r.row);
        bytes_scanned_ += 16 * r.row.size();
      }
    }
    for (auto& [tid, row] : batch) {
      if (!fn(tid, row)) return Status::OK();
    }
  }
  return Status::OK();
}

Status AoRowTable::MarkDeleted(TupleId tid, LocalXid xid) {
  std::unique_lock<std::shared_mutex> g(latch_);
  if (tid >= rows_.size()) return Status::NotFound("AO tid " + std::to_string(tid));
  visimap_[tid] = xid;
  if (change_log() != nullptr) {
    change_log()->Append(
        ChangeRecord{ChangeKind::kSetXmax, id(), tid, kInvalidTupleId, xid, {}});
  }
  return Status::OK();
}

size_t AoRowTable::VisimapSize() const {
  std::shared_lock<std::shared_mutex> g(latch_);
  return visimap_.size();
}

Status AoRowTable::Truncate() {
  std::unique_lock<std::shared_mutex> g(latch_);
  rows_.clear();
  visimap_.clear();
  if (change_log() != nullptr) {
    change_log()->Append(ChangeRecord{ChangeKind::kTruncate, id(), kInvalidTupleId,
                                      kInvalidTupleId, kInvalidLocalXid, {}});
  }
  return Status::OK();
}

uint64_t AoRowTable::StoredVersionCount() const {
  std::shared_lock<std::shared_mutex> g(latch_);
  return rows_.size();
}

uint64_t AoRowTable::BytesScanned() const {
  std::shared_lock<std::shared_mutex> g(latch_);
  return bytes_scanned_;
}

}  // namespace gphtap
