// Column block codecs for append-optimized storage: RLE, delta, dictionary,
// and an LZ77-style byte codec — written from scratch (the paper's zstd/zlib/
// quicklz stand-ins; see DESIGN.md substitutions).
#ifndef GPHTAP_STORAGE_COMPRESSION_H_
#define GPHTAP_STORAGE_COMPRESSION_H_

#include <cstdint>
#include <vector>

#include "catalog/datum.h"
#include "catalog/schema.h"
#include "common/status.h"

namespace gphtap {

/// One compressed column block.
struct CompressedBlock {
  CompressionKind kind = CompressionKind::kNone;
  TypeId type = TypeId::kInt64;
  uint32_t count = 0;            // number of values (incl. nulls)
  std::vector<uint8_t> bytes;    // null bitmap + payload
};

/// Compresses `values` (all of `type`, nulls allowed) with the requested codec.
/// Codecs that cannot represent the data (e.g. delta on strings) silently fall
/// back to kNone; the block records the codec actually used.
Status CompressColumn(CompressionKind kind, TypeId type,
                      const std::vector<Datum>& values, CompressedBlock* out);

StatusOr<std::vector<Datum>> DecompressColumn(const CompressedBlock& block);

/// Raw LZ77-style byte compression (greedy hash-chain matcher). Exposed for
/// tests; CompressColumn(kLz) applies it to the raw encoding.
std::vector<uint8_t> LzCompress(const std::vector<uint8_t>& in);
StatusOr<std::vector<uint8_t>> LzDecompress(const std::vector<uint8_t>& in);

}  // namespace gphtap

#endif  // GPHTAP_STORAGE_COMPRESSION_H_
