// External tables: data living outside the database in a CSV file (the paper's
// S3-style cold storage tier). Scans parse the file; inserts append to it.
// No MVCC — external rows are visible to everyone.
#ifndef GPHTAP_STORAGE_EXTERNAL_TABLE_H_
#define GPHTAP_STORAGE_EXTERNAL_TABLE_H_

#include <mutex>
#include <string>

#include "storage/table.h"

namespace gphtap {

class ExternalTable : public Table {
 public:
  /// `def.external_path` names the CSV file; created lazily on first insert.
  explicit ExternalTable(TableDef def) : Table(std::move(def)) {}

  StatusOr<TupleId> Insert(LocalXid xid, const Row& row) override;
  Status Scan(const VisibilityContext& ctx, const ScanCallback& fn) override;
  Status Truncate() override;
  uint64_t StoredVersionCount() const override;

  /// Parses one CSV line against `schema`; empty fields become NULL.
  static StatusOr<Row> ParseCsvLine(const std::string& line, const Schema& schema);
  static std::string FormatCsvLine(const Row& row);

 private:
  mutable std::mutex mu_;
};

}  // namespace gphtap

#endif  // GPHTAP_STORAGE_EXTERNAL_TABLE_H_
