// A simulated buffer cache: LRU over (table, page) keys with a configurable
// miss penalty standing in for disk I/O. This is the knob behind the Figure 13
// experiment (single-host PostgreSQL throughput collapsing once the working set
// exceeds the cache, while MPP segments each hold only 1/Nth of the data).
#ifndef GPHTAP_STORAGE_BUFFER_POOL_H_
#define GPHTAP_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "catalog/schema.h"
#include "common/metrics.h"

namespace gphtap {

class BufferPool {
 public:
  struct Options {
    size_t capacity_pages = 1 << 16;  // pages held in cache
    int64_t miss_cost_us = 0;         // simulated I/O latency per miss
    // Misses queue on one simulated device (a node has one disk): concurrent
    // faults serialize, which is what makes a cache-busting working set
    // collapse a single node's throughput (Figure 13).
    bool single_device = true;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    double HitRate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 1.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };

  explicit BufferPool(Options options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Declares an access to (table, page). On a miss the page is faulted in
  /// (LRU eviction + simulated I/O latency); on a hit it is moved to MRU.
  void Access(TableId table, uint64_t page);

  Stats stats() const;
  size_t resident_pages() const;

  /// Registers bufferpool.hits / bufferpool.misses / bufferpool.evictions
  /// counters (shared across all segments); null is a no-op.
  void set_metrics(MetricsRegistry* metrics);

 private:
  struct Key {
    TableId table;
    uint64_t page;
    bool operator==(const Key& o) const { return table == o.table && page == o.page; }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = (static_cast<uint64_t>(k.table) << 40) ^ k.page;
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 29;
      return static_cast<size_t>(h);
    }
  };

  const Options options_;
  std::mutex io_mu_;  // the simulated device queue
  mutable std::mutex mu_;
  std::list<Key> lru_;  // front = MRU
  std::unordered_map<Key, std::list<Key>::iterator, KeyHash> resident_;
  Stats stats_;
  Counter* m_hits_ = nullptr;
  Counter* m_misses_ = nullptr;
  Counter* m_evictions_ = nullptr;
};

}  // namespace gphtap

#endif  // GPHTAP_STORAGE_BUFFER_POOL_H_
