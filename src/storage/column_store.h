// Append-optimized column-oriented storage: each column lives in its own
// stream of compressed blocks ("each column is allotted a separate file"),
// so projected scans read only the touched columns (Section 3.4).
#ifndef GPHTAP_STORAGE_COLUMN_STORE_H_
#define GPHTAP_STORAGE_COLUMN_STORE_H_

#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "storage/compression.h"
#include "storage/table.h"

namespace gphtap {

class AoColumnTable : public Table {
 public:
  static constexpr size_t kRowGroupSize = 1024;

  explicit AoColumnTable(TableDef def);

  StatusOr<TupleId> Insert(LocalXid xid, const Row& row) override;
  Status Scan(const VisibilityContext& ctx, const ScanCallback& fn) override;
  Status ScanColumns(const VisibilityContext& ctx, const std::vector<int>& cols,
                     const ScanCallback& fn) override;
  Status Truncate() override;
  uint64_t StoredVersionCount() const override;
  uint64_t BytesScanned() const override;

  /// Compressed footprint of one column's sealed blocks, in bytes.
  uint64_t ColumnCompressedBytes(int col) const;

  /// Visibility-map delete (see AoRowTable::MarkDeleted).
  Status MarkDeleted(TupleId tid, LocalXid xid);

 private:
  struct RowGroup {
    std::vector<CompressedBlock> columns;  // one block per column
    std::vector<LocalXid> xmins;           // uncompressed visibility column
  };

  // Seals the open group into compressed blocks. Requires latch_ held (unique).
  void SealOpenGroupLocked();
  Status ScanImpl(const VisibilityContext& ctx, const std::vector<int>& cols,
                  const ScanCallback& fn);

  mutable std::shared_mutex latch_;
  std::vector<RowGroup> sealed_;
  std::vector<Row> open_rows_;
  std::vector<LocalXid> open_xmins_;
  std::unordered_map<TupleId, LocalXid> visimap_;
  mutable uint64_t bytes_scanned_ = 0;
};

}  // namespace gphtap

#endif  // GPHTAP_STORAGE_COLUMN_STORE_H_
