// Append-optimized column-oriented storage: each column lives in its own
// stream of compressed blocks ("each column is allotted a separate file"),
// so projected scans read only the touched columns (Section 3.4).
#ifndef GPHTAP_STORAGE_COLUMN_STORE_H_
#define GPHTAP_STORAGE_COLUMN_STORE_H_

#include <atomic>
#include <functional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "storage/ao_group.h"
#include "storage/compression.h"
#include "storage/table.h"
#include "vec/column_batch.h"

namespace gphtap {

/// Receives one decoded batch per row group; return false to stop the scan.
using BatchScanCallback = std::function<bool(ColumnBatch&&)>;

class AoColumnTable : public Table {
 public:
  static constexpr size_t kRowGroupSize = 1024;

  explicit AoColumnTable(TableDef def);

  StatusOr<TupleId> Insert(LocalXid xid, const Row& row) override;
  Status Scan(const VisibilityContext& ctx, const ScanCallback& fn) override;
  Status ScanColumns(const VisibilityContext& ctx, const std::vector<int>& cols,
                     const ScanCallback& fn) override;
  Status Truncate() override;
  uint64_t StoredVersionCount() const override;
  uint64_t BytesScanned() const override;

  /// Vectorized scan: each sealed row group decompresses its touched columns
  /// directly into one ColumnBatch whose selection vector holds the visible
  /// rows (visibility checked once per group, not per tuple); the open
  /// (unsealed) tail arrives as one final dense batch. Shares the visibility
  /// logic with the row scans via GroupVisibility.
  Status ScanBatches(const VisibilityContext& ctx, const std::vector<int>& cols,
                     const BatchScanCallback& fn);

  /// Number of sealed row groups (the morsel count for parallel scans). The
  /// snapshot is stable for a scan's purposes: groups sealed afterwards hold
  /// rows the scan's snapshot cannot see.
  size_t NumSealedGroups() const;

  /// Decodes one sealed group into `batch` (typed columns + visibility
  /// selection), the per-morsel unit of work. Returns false — with `batch`
  /// untouched — when the group is reclaimed or has no visible rows.
  /// Thread-safe: any number of groups may decode concurrently.
  StatusOr<bool> DecodeGroupBatch(size_t gi, const VisibilityContext& ctx,
                                  const std::vector<int>& cols, ColumnBatch* batch);

  /// Decodes the open (unsealed) tail as one dense batch. Returns false when
  /// no open rows are visible.
  StatusOr<bool> DecodeOpenTail(const VisibilityContext& ctx,
                                const std::vector<int>& cols, ColumnBatch* batch);

  /// Compressed footprint of one column's sealed blocks, in bytes.
  uint64_t ColumnCompressedBytes(int col) const;

  /// Visibility-map delete (see AoRowTable::MarkDeleted).
  Status MarkDeleted(TupleId tid, LocalXid xid);

  /// Per-group occupancy under the caller's dead-row predicate (bloat
  /// reporting and the compaction trigger). The open tail reports unsealed.
  std::vector<AoGroupInfo> GroupInfos(const AoRowDeadFn& dead) const;

  /// Frees every sealed group whose rows are all dead per `dead` ("dead to
  /// every snapshot"): drops the compressed blocks and visibility column,
  /// keeps the group slot so tids stay stable. One kFreeGroup record per
  /// freed group. Callers hold ShareUpdateExclusiveLock.
  AoReclaimResult ReclaimDeadGroups(const AoRowDeadFn& dead);

  /// Replay-side free (crash recovery / mirrors): no change record emitted.
  Status ApplyFreeGroup(size_t group_index);

 private:
  struct RowGroup {
    std::vector<CompressedBlock> columns;  // one block per column
    std::vector<LocalXid> xmins;           // uncompressed visibility column
    bool reclaimed = false;                // blocks freed; slot kept for tids
  };

  // Seals the open group into compressed blocks. Requires latch_ held (unique).
  void SealOpenGroupLocked();

  // Frees group `gi`'s storage and visimap range. Requires latch_ held (unique).
  void FreeGroupLocked(size_t gi);

  // Computes per-row visibility for the tuple range [base_tid, base_tid +
  // xmins.size()): one shared latch acquisition covers the whole group's
  // visimap lookups. The single visibility path for row AND batch scans.
  void GroupVisibility(TupleId base_tid, const std::vector<LocalXid>& xmins,
                       const VisibilityContext& ctx,
                       std::vector<uint8_t>* visible) const;

  Status ScanImpl(const VisibilityContext& ctx, const std::vector<int>& cols,
                  const ScanCallback& fn);

  mutable std::shared_mutex latch_;
  std::vector<RowGroup> sealed_;
  size_t reclaimed_groups_ = 0;
  std::vector<Row> open_rows_;
  std::vector<LocalXid> open_xmins_;
  std::unordered_map<TupleId, LocalXid> visimap_;
  // Atomic: concurrent scans account under the shared latch.
  mutable std::atomic<uint64_t> bytes_scanned_{0};
};

}  // namespace gphtap

#endif  // GPHTAP_STORAGE_COLUMN_STORE_H_
