#include "storage/heap_table.h"

#include <algorithm>

namespace gphtap {

HeapTable::HeapTable(TableDef def, const CommitLog* clog, BufferPool* pool)
    : Table(std::move(def)), clog_(clog), pool_(pool) {
  for (int col : this->def().indexed_cols) {
    indexes_[col];  // create empty index
  }
}

void HeapTable::TouchPage(uint64_t page_no) const {
  if (pool_ != nullptr) pool_->Access(id(), page_no);
}

TupleVersion* HeapTable::SlotAt(TupleId tid) {
  uint64_t page = tid / kSlotsPerPage, slot = tid % kSlotsPerPage;
  if (page >= pages_.size()) return nullptr;
  if (slot >= pages_[page].slots.size()) return nullptr;
  return &pages_[page].slots[slot];
}

const TupleVersion* HeapTable::SlotAt(TupleId tid) const {
  return const_cast<HeapTable*>(this)->SlotAt(tid);
}

void HeapTable::IndexInsertLocked(TupleId tid, const Row& row) {
  for (auto& [col, index] : indexes_) {
    index.emplace(row[static_cast<size_t>(col)].Hash(), tid);
  }
}

void HeapTable::IndexRemoveLocked(TupleId tid, const Row& row) {
  for (auto& [col, index] : indexes_) {
    auto range = index.equal_range(row[static_cast<size_t>(col)].Hash());
    for (auto it = range.first; it != range.second; ++it) {
      if (it->second == tid) {
        index.erase(it);
        break;
      }
    }
  }
}

StatusOr<TupleId> HeapTable::Insert(LocalXid xid, const Row& row) {
  GPHTAP_RETURN_IF_ERROR(schema().CheckRow(row));
  TupleId tid;
  {
    std::unique_lock<std::shared_mutex> g(latch_);
    if (!free_list_.empty()) {
      tid = free_list_.back();
      free_list_.pop_back();
      TupleVersion* v = SlotAt(tid);
      v->header = TupleHeader{xid, kInvalidLocalXid, kInvalidTupleId};
      v->row = row;
    } else {
      if (pages_.empty() || pages_.back().slots.size() >= kSlotsPerPage) {
        pages_.emplace_back();
        pages_.back().slots.reserve(kSlotsPerPage);
      }
      Page& page = pages_.back();
      tid = (pages_.size() - 1) * kSlotsPerPage + page.slots.size();
      page.slots.push_back(TupleVersion{TupleHeader{xid, kInvalidLocalXid,
                                                    kInvalidTupleId},
                                        row});
    }
    ++live_versions_;
    IndexInsertLocked(tid, row);
    if (change_log() != nullptr) {
      change_log()->Append(
          ChangeRecord{ChangeKind::kInsert, id(), tid, kInvalidTupleId, xid, row});
    }
  }
  TouchPage(tid / kSlotsPerPage);
  return tid;
}

Status HeapTable::Scan(const VisibilityContext& ctx, const ScanCallback& fn) {
  // Copy visible rows out page by page so callbacks (which may block on motion
  // channels) never run under the table latch.
  size_t num_pages;
  {
    std::shared_lock<std::shared_mutex> g(latch_);
    num_pages = pages_.size();
  }
  std::vector<std::pair<TupleId, Row>> batch;
  for (size_t p = 0; p < num_pages; ++p) {
    TouchPage(p);
    batch.clear();
    {
      std::shared_lock<std::shared_mutex> g(latch_);
      const Page& page = pages_[p];
      for (size_t s = 0; s < page.slots.size(); ++s) {
        const TupleVersion& v = page.slots[s];
        if (v.header.xmin == kInvalidLocalXid) continue;  // freed slot
        if (!TupleVisible(v.header.xmin, v.header.xmax, ctx)) continue;
        TupleId tid = p * kSlotsPerPage + s;
        batch.emplace_back(tid, v.row);
        bytes_scanned_.fetch_add(16 * v.row.size(),  // logical width estimate
                                 std::memory_order_relaxed);
      }
    }
    for (auto& [tid, row] : batch) {
      if (!fn(tid, row)) return Status::OK();
    }
  }
  return Status::OK();
}

Status HeapTable::Truncate() {
  std::unique_lock<std::shared_mutex> g(latch_);
  pages_.clear();
  free_list_.clear();
  live_versions_ = 0;
  for (auto& [col, index] : indexes_) index.clear();
  if (change_log() != nullptr) {
    change_log()->Append(ChangeRecord{ChangeKind::kTruncate, id(), kInvalidTupleId,
                                      kInvalidTupleId, kInvalidLocalXid, {}});
  }
  return Status::OK();
}

uint64_t HeapTable::StoredVersionCount() const {
  std::shared_lock<std::shared_mutex> g(latch_);
  return live_versions_;
}

uint64_t HeapTable::BytesScanned() const {
  return bytes_scanned_.load(std::memory_order_relaxed);
}

StatusOr<TupleVersion> HeapTable::Get(TupleId tid) const {
  TouchPage(tid / kSlotsPerPage);
  std::shared_lock<std::shared_mutex> g(latch_);
  const TupleVersion* v = SlotAt(tid);
  if (v == nullptr || v->header.xmin == kInvalidLocalXid) {
    return Status::NotFound("tuple " + std::to_string(tid));
  }
  return *v;
}

MarkDeleteResult HeapTable::TryMarkDeleted(TupleId tid, LocalXid xid) {
  TouchPage(tid / kSlotsPerPage);
  std::unique_lock<std::shared_mutex> g(latch_);
  TupleVersion* v = SlotAt(tid);
  if (v == nullptr || v->header.xmin == kInvalidLocalXid) {
    // Vacuumed away underneath us: the replacing version (if any) is gone too.
    return {MarkDeleteOutcome::kFollow, kInvalidLocalXid, kInvalidTupleId};
  }
  TupleHeader& h = v->header;
  if (h.xmax == kInvalidLocalXid) {
    h.xmax = xid;
    if (change_log() != nullptr) {
      change_log()->Append(
          ChangeRecord{ChangeKind::kSetXmax, id(), tid, kInvalidTupleId, xid, {}});
    }
    return {MarkDeleteOutcome::kOk, kInvalidLocalXid, kInvalidTupleId};
  }
  if (h.xmax == xid) return {MarkDeleteOutcome::kSelfUpdated, kInvalidLocalXid, kInvalidTupleId};
  switch (clog_->GetState(h.xmax)) {
    case TxnState::kAborted:
      h.xmax = xid;  // overwrite an aborted deleter
      h.next_version = kInvalidTupleId;
      if (change_log() != nullptr) {
        change_log()->Append(
            ChangeRecord{ChangeKind::kSetXmax, id(), tid, kInvalidTupleId, xid, {}});
      }
      return {MarkDeleteOutcome::kOk, kInvalidLocalXid, kInvalidTupleId};
    case TxnState::kCommitted:
      // wait_xid carries the committed replacer: callers in a distributed
      // cluster must not build on this version until that transaction's
      // *distributed* commit has completed (local clog alone is not the
      // commit point for conflicting writers).
      return {MarkDeleteOutcome::kFollow, h.xmax, h.next_version};
    case TxnState::kInProgress:
    case TxnState::kPrepared:
      return {MarkDeleteOutcome::kWait, h.xmax, kInvalidTupleId};
  }
  return {MarkDeleteOutcome::kWait, h.xmax, kInvalidTupleId};
}

void HeapTable::LinkNewVersion(TupleId old_tid, TupleId new_tid) {
  std::unique_lock<std::shared_mutex> g(latch_);
  TupleVersion* v = SlotAt(old_tid);
  if (v != nullptr) v->header.next_version = new_tid;
  if (change_log() != nullptr) {
    change_log()->Append(ChangeRecord{ChangeKind::kLink, id(), old_tid, new_tid,
                                      kInvalidLocalXid, {}});
  }
}

std::vector<TupleId> HeapTable::IndexLookup(int col, const Datum& key) const {
  std::shared_lock<std::shared_mutex> g(latch_);
  auto iit = indexes_.find(col);
  if (iit == indexes_.end()) return {};
  std::vector<TupleId> out;
  auto range = iit->second.equal_range(key.Hash());
  for (auto it = range.first; it != range.second; ++it) {
    const TupleVersion* v = SlotAt(it->second);
    if (v != nullptr && v->header.xmin != kInvalidLocalXid &&
        v->row[static_cast<size_t>(col)] == key) {
      out.push_back(it->second);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void HeapTable::AddIndex(int col) {
  std::unique_lock<std::shared_mutex> g(latch_);
  if (indexes_.count(col)) return;
  auto& index = indexes_[col];
  for (size_t p = 0; p < pages_.size(); ++p) {
    const Page& page = pages_[p];
    for (size_t s = 0; s < page.slots.size(); ++s) {
      const TupleVersion& v = page.slots[s];
      if (v.header.xmin == kInvalidLocalXid) continue;
      index.emplace(v.row[static_cast<size_t>(col)].Hash(), p * kSlotsPerPage + s);
    }
  }
}

bool HeapTable::HasIndexOn(int col) const {
  std::shared_lock<std::shared_mutex> g(latch_);
  return indexes_.count(col) > 0;
}

uint64_t HeapTable::Vacuum(LocalXid oldest_running) {
  return Vacuum([this, oldest_running](LocalXid xmax) { return xmax < oldest_running; });
}

uint64_t HeapTable::Vacuum(const std::function<bool(LocalXid)>& delete_visible_to_all) {
  std::unique_lock<std::shared_mutex> g(latch_);
  uint64_t freed = 0;
  for (size_t p = 0; p < pages_.size(); ++p) {
    Page& page = pages_[p];
    for (size_t s = 0; s < page.slots.size(); ++s) {
      TupleVersion& v = page.slots[s];
      const TupleHeader& h = v.header;
      if (h.xmin == kInvalidLocalXid) continue;
      bool dead = false;
      if (clog_->GetState(h.xmin) == TxnState::kAborted) {
        dead = true;
      } else if (h.xmax != kInvalidLocalXid &&
                 clog_->GetState(h.xmax) == TxnState::kCommitted &&
                 delete_visible_to_all(h.xmax)) {
        dead = true;
      }
      if (!dead) continue;
      TupleId tid = p * kSlotsPerPage + s;
      IndexRemoveLocked(tid, v.row);
      v.header = TupleHeader{};  // xmin invalid marks the slot free
      v.row.clear();
      free_list_.push_back(tid);
      --live_versions_;
      ++freed;
      if (change_log() != nullptr) {
        change_log()->Append(ChangeRecord{ChangeKind::kFreeSlot, id(), tid,
                                          kInvalidTupleId, kInvalidLocalXid, {}});
      }
    }
  }
  return freed;
}

Status HeapTable::ApplyInsertAt(TupleId tid, LocalXid xid, const Row& row) {
  std::unique_lock<std::shared_mutex> g(latch_);
  uint64_t page = tid / kSlotsPerPage, slot = tid % kSlotsPerPage;
  while (pages_.size() <= page) {
    pages_.emplace_back();
    pages_.back().slots.reserve(kSlotsPerPage);
  }
  Page& p = pages_[page];
  while (p.slots.size() <= slot) p.slots.push_back(TupleVersion{});
  TupleVersion& v = p.slots[slot];
  if (v.header.xmin != kInvalidLocalXid) {
    return Status::Internal("mirror replay: slot " + std::to_string(tid) + " occupied");
  }
  v.header = TupleHeader{xid, kInvalidLocalXid, kInvalidTupleId};
  v.row = row;
  ++live_versions_;
  IndexInsertLocked(tid, row);
  return Status::OK();
}

void HeapTable::ApplySetXmax(TupleId tid, LocalXid xid) {
  std::unique_lock<std::shared_mutex> g(latch_);
  TupleVersion* v = SlotAt(tid);
  if (v != nullptr && v->header.xmin != kInvalidLocalXid) {
    v->header.xmax = xid;
    v->header.next_version = kInvalidTupleId;
  }
}

void HeapTable::ApplyLink(TupleId old_tid, TupleId new_tid) {
  std::unique_lock<std::shared_mutex> g(latch_);
  TupleVersion* v = SlotAt(old_tid);
  if (v != nullptr) v->header.next_version = new_tid;
}

void HeapTable::ApplyFreeSlot(TupleId tid) {
  std::unique_lock<std::shared_mutex> g(latch_);
  TupleVersion* v = SlotAt(tid);
  if (v == nullptr || v->header.xmin == kInvalidLocalXid) return;
  IndexRemoveLocked(tid, v->row);
  v->header = TupleHeader{};
  v->row.clear();
  --live_versions_;
}

uint64_t HeapTable::FreeSlots() const {
  std::shared_lock<std::shared_mutex> g(latch_);
  return free_list_.size();
}

// Default projected scan for storages without native column projection.
Status Table::ScanColumns(const VisibilityContext& ctx, const std::vector<int>& cols,
                          const ScanCallback& fn) {
  return Scan(ctx, [&](TupleId tid, const Row& row) {
    Row projected;
    projected.reserve(cols.size());
    for (int c : cols) projected.push_back(row[static_cast<size_t>(c)]);
    return fn(tid, projected);
  });
}

}  // namespace gphtap
