#include "storage/table_factory.h"

#include "storage/ao_table.h"
#include "storage/column_store.h"
#include "storage/external_table.h"
#include "storage/heap_table.h"
#include "storage/partitioned_table.h"

namespace gphtap {

namespace {

std::unique_ptr<Table> CreateLeaf(const TableDef& def, const CommitLog* clog,
                                  BufferPool* pool) {
  switch (def.storage) {
    case StorageKind::kHeap:
      return std::make_unique<HeapTable>(def, clog, pool);
    case StorageKind::kAoRow:
      return std::make_unique<AoRowTable>(def);
    case StorageKind::kAoColumn:
      return std::make_unique<AoColumnTable>(def);
    case StorageKind::kExternal:
      return std::make_unique<ExternalTable>(def);
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<Table> CreateTable(const TableDef& def, const CommitLog* clog,
                                   BufferPool* pool) {
  if (!def.partitions.has_value()) return CreateLeaf(def, clog, pool);

  std::vector<std::unique_ptr<Table>> leaves;
  leaves.reserve(def.partitions->ranges.size());
  for (const RangePartitionSpec& range : def.partitions->ranges) {
    TableDef leaf_def = def;
    leaf_def.partitions.reset();
    leaf_def.name = def.name + "_" + range.name;
    leaf_def.storage = range.storage;
    leaf_def.external_path = range.external_path;
    leaves.push_back(CreateLeaf(leaf_def, clog, pool));
  }
  return std::make_unique<PartitionedTable>(def, std::move(leaves));
}

}  // namespace gphtap
