// Abstract table interface implemented by heap, append-optimized row/column,
// external, and partitioned storage (Section 3.4: the execution engine is
// agnostic to table storage type).
#ifndef GPHTAP_STORAGE_TABLE_H_
#define GPHTAP_STORAGE_TABLE_H_

#include <functional>
#include <memory>

#include "catalog/schema.h"
#include "storage/change_log.h"
#include "common/status.h"
#include "storage/tuple.h"
#include "txn/visibility.h"

namespace gphtap {

/// Scan callback: return false to stop the scan early.
using ScanCallback = std::function<bool(TupleId, const Row&)>;

class Table {
 public:
  explicit Table(TableDef def) : def_(std::move(def)) {}
  virtual ~Table() = default;

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableDef& def() const { return def_; }
  TableId id() const { return def_.id; }
  const Schema& schema() const { return def_.schema; }

  /// Appends a new row version stamped with `xid`.
  virtual StatusOr<TupleId> Insert(LocalXid xid, const Row& row) = 0;

  /// Invokes `fn` for each row visible under `ctx`, in storage order.
  virtual Status Scan(const VisibilityContext& ctx, const ScanCallback& fn) = 0;

  /// Projected scan: only the listed columns are materialized (column stores
  /// read fewer bytes). Rows passed to `fn` contain exactly `cols` values in
  /// the given order. Default implementation scans fully and projects.
  virtual Status ScanColumns(const VisibilityContext& ctx, const std::vector<int>& cols,
                             const ScanCallback& fn);

  /// Whether UPDATE/DELETE are supported (heap only in this implementation,
  /// mirroring append-optimized tables favouring bulk load).
  virtual bool SupportsMvccWrite() const { return false; }

  /// Total stored versions (including dead ones); a cheap size estimate.
  virtual uint64_t StoredVersionCount() const = 0;

  /// Logical bytes read by scans so far (column stores count only the columns
  /// actually touched). Used by the AO-column I/O benchmarks.
  virtual uint64_t BytesScanned() const { return 0; }

  /// Discards all contents (TRUNCATE). Callers hold AccessExclusiveLock, so no
  /// concurrent reader or writer can be inside the table.
  virtual Status Truncate() = 0;

  /// Attaches the segment's replication stream; writes will be mirrored.
  void SetChangeLog(ChangeLog* log) { change_log_ = log; }

 protected:
  ChangeLog* change_log() const { return change_log_; }

 private:
  TableDef def_;
  ChangeLog* change_log_ = nullptr;
};

}  // namespace gphtap

#endif  // GPHTAP_STORAGE_TABLE_H_
