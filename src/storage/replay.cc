#include "storage/replay.h"

#include "storage/ao_table.h"
#include "storage/column_store.h"
#include "storage/heap_table.h"

namespace gphtap {

Status ApplyDataChange(Table* table, const ChangeRecord& record) {
  auto* heap = dynamic_cast<HeapTable*>(table);
  switch (record.kind) {
    case ChangeKind::kInsert:
      if (heap != nullptr) return heap->ApplyInsertAt(record.tid, record.xid, record.row);
      // Append-only storage reproduces tids by replaying appends in order.
      return table->Insert(record.xid, record.row).status();
    case ChangeKind::kSetXmax:
      if (heap != nullptr) {
        heap->ApplySetXmax(record.tid, record.xid);
      } else if (auto* ao = dynamic_cast<AoRowTable*>(table)) {
        return ao->MarkDeleted(record.tid, record.xid);
      } else if (auto* aoc = dynamic_cast<AoColumnTable*>(table)) {
        return aoc->MarkDeleted(record.tid, record.xid);
      }
      return Status::OK();
    case ChangeKind::kLink:
      if (heap != nullptr) heap->ApplyLink(record.tid, record.tid2);
      return Status::OK();
    case ChangeKind::kFreeSlot:
      if (heap != nullptr) heap->ApplyFreeSlot(record.tid);
      return Status::OK();
    case ChangeKind::kFreeGroup:
      // AO reclamation: `tid` carries the freed group's index.
      if (auto* ao = dynamic_cast<AoRowTable*>(table)) {
        return ao->ApplyFreeGroup(static_cast<size_t>(record.tid));
      } else if (auto* aoc = dynamic_cast<AoColumnTable*>(table)) {
        return aoc->ApplyFreeGroup(static_cast<size_t>(record.tid));
      }
      return Status::OK();
    case ChangeKind::kTruncate:
      return table->Truncate();
    case ChangeKind::kTxnBegin:
    case ChangeKind::kTxnPrepare:
    case ChangeKind::kTxnCommit:
    case ChangeKind::kTxnAbort:
      break;
  }
  return Status::Internal("ApplyDataChange: transaction record kind");
}

}  // namespace gphtap
