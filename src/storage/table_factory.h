// Creates the right Table implementation for a TableDef (including partitioned
// roots with polymorphic leaf storage).
#ifndef GPHTAP_STORAGE_TABLE_FACTORY_H_
#define GPHTAP_STORAGE_TABLE_FACTORY_H_

#include <memory>

#include "storage/buffer_pool.h"
#include "storage/table.h"
#include "txn/clog.h"

namespace gphtap {

/// `clog`/`pool` are the owning segment's; pool may be null (no I/O model).
std::unique_ptr<Table> CreateTable(const TableDef& def, const CommitLog* clog,
                                   BufferPool* pool);

}  // namespace gphtap

#endif  // GPHTAP_STORAGE_TABLE_FACTORY_H_
