#include "storage/column_store.h"

#include <numeric>

namespace gphtap {

AoColumnTable::AoColumnTable(TableDef def) : Table(std::move(def)) {}

StatusOr<TupleId> AoColumnTable::Insert(LocalXid xid, const Row& row) {
  GPHTAP_RETURN_IF_ERROR(schema().CheckRow(row));
  std::unique_lock<std::shared_mutex> g(latch_);
  open_rows_.push_back(row);
  open_xmins_.push_back(xid);
  TupleId tid = sealed_.size() * kRowGroupSize + (open_rows_.size() - 1);
  if (change_log() != nullptr) {
    change_log()->Append(
        ChangeRecord{ChangeKind::kInsert, id(), tid, kInvalidTupleId, xid, row});
  }
  if (open_rows_.size() >= kRowGroupSize) SealOpenGroupLocked();
  return tid;
}

void AoColumnTable::SealOpenGroupLocked() {
  RowGroup group;
  size_t ncols = schema().num_columns();
  group.columns.resize(ncols);
  std::vector<Datum> column_values(open_rows_.size());
  for (size_t c = 0; c < ncols; ++c) {
    for (size_t r = 0; r < open_rows_.size(); ++r) column_values[r] = open_rows_[r][c];
    CompressColumn(def().compression, schema().column(c).type, column_values,
                   &group.columns[c]);
  }
  group.xmins = std::move(open_xmins_);
  sealed_.push_back(std::move(group));
  open_rows_.clear();
  open_xmins_.clear();
}

Status AoColumnTable::Scan(const VisibilityContext& ctx, const ScanCallback& fn) {
  std::vector<int> all(schema().num_columns());
  std::iota(all.begin(), all.end(), 0);
  return ScanImpl(ctx, all, [&](TupleId tid, const Row& row) { return fn(tid, row); });
}

Status AoColumnTable::ScanColumns(const VisibilityContext& ctx,
                                  const std::vector<int>& cols, const ScanCallback& fn) {
  return ScanImpl(ctx, cols, fn);
}

void AoColumnTable::GroupVisibility(TupleId base_tid, const std::vector<LocalXid>& xmins,
                                    const VisibilityContext& ctx,
                                    std::vector<uint8_t>* visible) const {
  visible->assign(xmins.size(), 0);
  std::shared_lock<std::shared_mutex> g(latch_);
  for (size_t r = 0; r < xmins.size(); ++r) {
    auto del = visimap_.find(base_tid + r);
    LocalXid xmax = del == visimap_.end() ? kInvalidLocalXid : del->second;
    (*visible)[r] = TupleVisible(xmins[r], xmax, ctx) ? 1 : 0;
  }
}

Status AoColumnTable::ScanImpl(const VisibilityContext& ctx, const std::vector<int>& cols,
                               const ScanCallback& fn) {
  size_t num_sealed;
  {
    std::shared_lock<std::shared_mutex> g(latch_);
    num_sealed = sealed_.size();
  }

  std::vector<uint8_t> visible;
  for (size_t gi = 0; gi < num_sealed; ++gi) {
    // Decompress only the requested columns of this group.
    std::vector<std::vector<Datum>> decoded(cols.size());
    std::vector<LocalXid> xmins;
    {
      std::shared_lock<std::shared_mutex> g(latch_);
      const RowGroup& group = sealed_[gi];
      // Reclaimed groups held only rows dead to every snapshot (ours too).
      if (group.reclaimed) continue;
      xmins = group.xmins;
      for (size_t k = 0; k < cols.size(); ++k) {
        const CompressedBlock& block = group.columns[static_cast<size_t>(cols[k])];
        bytes_scanned_.fetch_add(block.bytes.size(), std::memory_order_relaxed);
        auto vals = DecompressColumn(block);
        if (!vals.ok()) return vals.status();
        decoded[k] = std::move(*vals);
      }
    }
    GroupVisibility(gi * kRowGroupSize, xmins, ctx, &visible);
    for (size_t r = 0; r < xmins.size(); ++r) {
      if (!visible[r]) continue;
      TupleId tid = gi * kRowGroupSize + r;
      Row row;
      row.reserve(cols.size());
      for (size_t k = 0; k < cols.size(); ++k) row.push_back(decoded[k][r]);
      if (!fn(tid, row)) return Status::OK();
    }
  }

  // Open (unsealed) rows. The tid base is recomputed under the latch: inserts
  // may have sealed another group since the scan started, and tids derived
  // from the stale snapshot would name the wrong tuples (rows sealed while we
  // scanned are skipped — they belong to groups this scan never visits).
  std::vector<std::pair<TupleId, Row>> open_copy;
  {
    std::shared_lock<std::shared_mutex> g(latch_);
    TupleId base = sealed_.size() * kRowGroupSize;
    for (size_t r = 0; r < open_rows_.size(); ++r) {
      auto del = visimap_.find(base + r);
      LocalXid xmax = del == visimap_.end() ? kInvalidLocalXid : del->second;
      if (!TupleVisible(open_xmins_[r], xmax, ctx)) continue;
      Row row;
      row.reserve(cols.size());
      for (int c : cols) row.push_back(open_rows_[r][static_cast<size_t>(c)]);
      bytes_scanned_.fetch_add(16 * row.size(), std::memory_order_relaxed);
      open_copy.emplace_back(base + r, std::move(row));
    }
  }
  for (auto& [tid, row] : open_copy) {
    if (!fn(tid, row)) return Status::OK();
  }
  return Status::OK();
}

size_t AoColumnTable::NumSealedGroups() const {
  std::shared_lock<std::shared_mutex> g(latch_);
  return sealed_.size();
}

StatusOr<bool> AoColumnTable::DecodeGroupBatch(size_t gi, const VisibilityContext& ctx,
                                               const std::vector<int>& cols,
                                               ColumnBatch* batch) {
  ColumnBatch out;
  std::vector<LocalXid> xmins;
  {
    std::shared_lock<std::shared_mutex> g(latch_);
    if (gi >= sealed_.size()) return false;
    const RowGroup& group = sealed_[gi];
    // Reclaimed groups held only rows dead to every snapshot (ours too).
    if (group.reclaimed) return false;
    xmins = group.xmins;
    out.columns.resize(cols.size());
    for (size_t k = 0; k < cols.size(); ++k) {
      const CompressedBlock& block = group.columns[static_cast<size_t>(cols[k])];
      bytes_scanned_.fetch_add(block.bytes.size(), std::memory_order_relaxed);
      auto vals = DecompressColumn(block);
      if (!vals.ok()) return vals.status();
      // Decompressed column values adopt the unboxed typed layout: zero
      // per-tuple materialization on the scan path.
      out.columns[k].AdoptDatums(std::move(*vals), block.type);
    }
  }
  out.rows = xmins.size();
  std::vector<uint8_t> visible;
  GroupVisibility(gi * kRowGroupSize, xmins, ctx, &visible);
  out.sel.reserve(out.rows);
  for (size_t r = 0; r < xmins.size(); ++r) {
    if (visible[r]) out.sel.push_back(static_cast<int32_t>(r));
  }
  // Fully-deleted (or fully-invisible) groups never leave the scan.
  if (out.sel.empty()) return false;
  *batch = std::move(out);
  return true;
}

StatusOr<bool> AoColumnTable::DecodeOpenTail(const VisibilityContext& ctx,
                                             const std::vector<int>& cols,
                                             ColumnBatch* batch) {
  // One dense batch of the visible unsealed rows. Same fresh-base rule as
  // ScanImpl.
  ColumnBatch tail;
  tail.columns.resize(cols.size());
  {
    std::shared_lock<std::shared_mutex> g(latch_);
    TupleId base = sealed_.size() * kRowGroupSize;
    for (size_t r = 0; r < open_rows_.size(); ++r) {
      auto del = visimap_.find(base + r);
      LocalXid xmax = del == visimap_.end() ? kInvalidLocalXid : del->second;
      if (!TupleVisible(open_xmins_[r], xmax, ctx)) continue;
      for (size_t k = 0; k < cols.size(); ++k) {
        tail.columns[k].Append(open_rows_[r][static_cast<size_t>(cols[k])]);
      }
      bytes_scanned_.fetch_add(16 * cols.size(), std::memory_order_relaxed);
      ++tail.rows;
    }
  }
  if (tail.rows == 0) return false;
  tail.SelectAll();
  *batch = std::move(tail);
  return true;
}

Status AoColumnTable::ScanBatches(const VisibilityContext& ctx,
                                  const std::vector<int>& cols,
                                  const BatchScanCallback& fn) {
  size_t num_sealed = NumSealedGroups();
  for (size_t gi = 0; gi < num_sealed; ++gi) {
    ColumnBatch batch;
    auto decoded = DecodeGroupBatch(gi, ctx, cols, &batch);
    if (!decoded.ok()) return decoded.status();
    if (!*decoded) continue;
    if (!fn(std::move(batch))) return Status::OK();
  }
  ColumnBatch tail;
  auto decoded = DecodeOpenTail(ctx, cols, &tail);
  if (!decoded.ok()) return decoded.status();
  if (*decoded && !fn(std::move(tail))) return Status::OK();
  return Status::OK();
}

std::vector<AoGroupInfo> AoColumnTable::GroupInfos(const AoRowDeadFn& dead) const {
  std::shared_lock<std::shared_mutex> g(latch_);
  std::vector<AoGroupInfo> infos;
  infos.reserve(sealed_.size() + 1);
  auto classify = [&](AoGroupInfo* info, TupleId base,
                      const std::vector<LocalXid>& xmins) {
    for (size_t r = 0; r < xmins.size(); ++r) {
      auto del = visimap_.find(base + r);
      LocalXid xmax = del == visimap_.end() ? kInvalidLocalXid : del->second;
      if (dead(xmins[r], xmax)) {
        ++info->dead;
      } else {
        ++info->live;
      }
    }
  };
  for (size_t gi = 0; gi < sealed_.size(); ++gi) {
    AoGroupInfo info;
    info.index = gi;
    info.sealed = true;
    info.freed = sealed_[gi].reclaimed;
    info.rows = sealed_[gi].xmins.size();
    classify(&info, static_cast<TupleId>(gi * kRowGroupSize), sealed_[gi].xmins);
    infos.push_back(info);
  }
  if (!open_rows_.empty()) {
    AoGroupInfo info;
    info.index = sealed_.size();
    info.rows = open_rows_.size();
    classify(&info, static_cast<TupleId>(sealed_.size() * kRowGroupSize), open_xmins_);
    infos.push_back(info);
  }
  return infos;
}

void AoColumnTable::FreeGroupLocked(size_t gi) {
  RowGroup& group = sealed_[gi];
  TupleId base = static_cast<TupleId>(gi * kRowGroupSize);
  for (size_t r = 0; r < group.xmins.size(); ++r) visimap_.erase(base + r);
  std::vector<CompressedBlock>().swap(group.columns);
  std::vector<LocalXid>().swap(group.xmins);
  group.reclaimed = true;
  ++reclaimed_groups_;
}

AoReclaimResult AoColumnTable::ReclaimDeadGroups(const AoRowDeadFn& dead) {
  std::unique_lock<std::shared_mutex> g(latch_);
  AoReclaimResult result;
  for (size_t gi = 0; gi < sealed_.size(); ++gi) {
    RowGroup& group = sealed_[gi];
    if (group.reclaimed) continue;
    TupleId base = static_cast<TupleId>(gi * kRowGroupSize);
    bool all_dead = true;
    for (size_t r = 0; r < group.xmins.size() && all_dead; ++r) {
      auto del = visimap_.find(base + r);
      LocalXid xmax = del == visimap_.end() ? kInvalidLocalXid : del->second;
      all_dead = dead(group.xmins[r], xmax);
    }
    if (!all_dead) continue;
    result.rows_freed += group.xmins.size();
    ++result.groups_freed;
    FreeGroupLocked(gi);
    if (change_log() != nullptr) {
      change_log()->Append(ChangeRecord{ChangeKind::kFreeGroup, id(),
                                        static_cast<TupleId>(gi), kInvalidTupleId,
                                        kInvalidLocalXid, {}});
    }
  }
  return result;
}

Status AoColumnTable::ApplyFreeGroup(size_t group_index) {
  std::unique_lock<std::shared_mutex> g(latch_);
  if (group_index >= sealed_.size()) {
    return Status::NotFound("AO-column free-group replay: group " +
                            std::to_string(group_index));
  }
  if (!sealed_[group_index].reclaimed) FreeGroupLocked(group_index);
  return Status::OK();
}

Status AoColumnTable::Truncate() {
  std::unique_lock<std::shared_mutex> g(latch_);
  sealed_.clear();
  reclaimed_groups_ = 0;
  open_rows_.clear();
  open_xmins_.clear();
  visimap_.clear();
  if (change_log() != nullptr) {
    change_log()->Append(ChangeRecord{ChangeKind::kTruncate, id(), kInvalidTupleId,
                                      kInvalidTupleId, kInvalidLocalXid, {}});
  }
  return Status::OK();
}

uint64_t AoColumnTable::StoredVersionCount() const {
  std::shared_lock<std::shared_mutex> g(latch_);
  return (sealed_.size() - reclaimed_groups_) * kRowGroupSize + open_rows_.size();
}

uint64_t AoColumnTable::BytesScanned() const {
  return bytes_scanned_.load(std::memory_order_relaxed);
}

Status AoColumnTable::MarkDeleted(TupleId tid, LocalXid xid) {
  std::unique_lock<std::shared_mutex> g(latch_);
  if (tid >= sealed_.size() * kRowGroupSize + open_rows_.size()) {
    return Status::NotFound("AO-column tid " + std::to_string(tid));
  }
  visimap_[tid] = xid;
  if (change_log() != nullptr) {
    change_log()->Append(
        ChangeRecord{ChangeKind::kSetXmax, id(), tid, kInvalidTupleId, xid, {}});
  }
  return Status::OK();
}

uint64_t AoColumnTable::ColumnCompressedBytes(int col) const {
  std::shared_lock<std::shared_mutex> g(latch_);
  uint64_t total = 0;
  for (const RowGroup& group : sealed_) {
    if (group.reclaimed) continue;
    total += group.columns[static_cast<size_t>(col)].bytes.size();
  }
  return total;
}

}  // namespace gphtap
