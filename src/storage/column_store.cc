#include "storage/column_store.h"

#include <numeric>

namespace gphtap {

AoColumnTable::AoColumnTable(TableDef def) : Table(std::move(def)) {}

StatusOr<TupleId> AoColumnTable::Insert(LocalXid xid, const Row& row) {
  GPHTAP_RETURN_IF_ERROR(schema().CheckRow(row));
  std::unique_lock<std::shared_mutex> g(latch_);
  open_rows_.push_back(row);
  open_xmins_.push_back(xid);
  TupleId tid = sealed_.size() * kRowGroupSize + (open_rows_.size() - 1);
  if (change_log() != nullptr) {
    change_log()->Append(
        ChangeRecord{ChangeKind::kInsert, id(), tid, kInvalidTupleId, xid, row});
  }
  if (open_rows_.size() >= kRowGroupSize) SealOpenGroupLocked();
  return tid;
}

void AoColumnTable::SealOpenGroupLocked() {
  RowGroup group;
  size_t ncols = schema().num_columns();
  group.columns.resize(ncols);
  std::vector<Datum> column_values(open_rows_.size());
  for (size_t c = 0; c < ncols; ++c) {
    for (size_t r = 0; r < open_rows_.size(); ++r) column_values[r] = open_rows_[r][c];
    CompressColumn(def().compression, schema().column(c).type, column_values,
                   &group.columns[c]);
  }
  group.xmins = std::move(open_xmins_);
  sealed_.push_back(std::move(group));
  open_rows_.clear();
  open_xmins_.clear();
}

Status AoColumnTable::Scan(const VisibilityContext& ctx, const ScanCallback& fn) {
  std::vector<int> all(schema().num_columns());
  std::iota(all.begin(), all.end(), 0);
  return ScanImpl(ctx, all, [&](TupleId tid, const Row& row) { return fn(tid, row); });
}

Status AoColumnTable::ScanColumns(const VisibilityContext& ctx,
                                  const std::vector<int>& cols, const ScanCallback& fn) {
  return ScanImpl(ctx, cols, fn);
}

Status AoColumnTable::ScanImpl(const VisibilityContext& ctx, const std::vector<int>& cols,
                               const ScanCallback& fn) {
  size_t num_sealed;
  {
    std::shared_lock<std::shared_mutex> g(latch_);
    num_sealed = sealed_.size();
  }

  for (size_t gi = 0; gi < num_sealed; ++gi) {
    // Decompress only the requested columns of this group.
    std::vector<std::vector<Datum>> decoded(cols.size());
    std::vector<LocalXid> xmins;
    {
      std::shared_lock<std::shared_mutex> g(latch_);
      const RowGroup& group = sealed_[gi];
      xmins = group.xmins;
      for (size_t k = 0; k < cols.size(); ++k) {
        const CompressedBlock& block = group.columns[static_cast<size_t>(cols[k])];
        bytes_scanned_ += block.bytes.size();
        auto vals = DecompressColumn(block);
        if (!vals.ok()) return vals.status();
        decoded[k] = std::move(*vals);
      }
    }
    for (size_t r = 0; r < xmins.size(); ++r) {
      TupleId tid = gi * kRowGroupSize + r;
      LocalXid xmax = kInvalidLocalXid;
      {
        std::shared_lock<std::shared_mutex> g(latch_);
        auto del = visimap_.find(tid);
        if (del != visimap_.end()) xmax = del->second;
      }
      if (!TupleVisible(xmins[r], xmax, ctx)) continue;
      Row row;
      row.reserve(cols.size());
      for (size_t k = 0; k < cols.size(); ++k) row.push_back(decoded[k][r]);
      if (!fn(tid, row)) return Status::OK();
    }
  }

  // Open (unsealed) rows.
  std::vector<std::pair<TupleId, Row>> open_copy;
  {
    std::shared_lock<std::shared_mutex> g(latch_);
    for (size_t r = 0; r < open_rows_.size(); ++r) {
      auto del = visimap_.find(num_sealed * kRowGroupSize + r);
      LocalXid xmax = del == visimap_.end() ? kInvalidLocalXid : del->second;
      if (!TupleVisible(open_xmins_[r], xmax, ctx)) continue;
      Row row;
      row.reserve(cols.size());
      for (int c : cols) row.push_back(open_rows_[r][static_cast<size_t>(c)]);
      bytes_scanned_ += 16 * row.size();
      open_copy.emplace_back(num_sealed * kRowGroupSize + r, std::move(row));
    }
  }
  for (auto& [tid, row] : open_copy) {
    if (!fn(tid, row)) return Status::OK();
  }
  return Status::OK();
}

Status AoColumnTable::Truncate() {
  std::unique_lock<std::shared_mutex> g(latch_);
  sealed_.clear();
  open_rows_.clear();
  open_xmins_.clear();
  visimap_.clear();
  if (change_log() != nullptr) {
    change_log()->Append(ChangeRecord{ChangeKind::kTruncate, id(), kInvalidTupleId,
                                      kInvalidTupleId, kInvalidLocalXid, {}});
  }
  return Status::OK();
}

uint64_t AoColumnTable::StoredVersionCount() const {
  std::shared_lock<std::shared_mutex> g(latch_);
  return sealed_.size() * kRowGroupSize + open_rows_.size();
}

uint64_t AoColumnTable::BytesScanned() const {
  std::shared_lock<std::shared_mutex> g(latch_);
  return bytes_scanned_;
}

Status AoColumnTable::MarkDeleted(TupleId tid, LocalXid xid) {
  std::unique_lock<std::shared_mutex> g(latch_);
  if (tid >= sealed_.size() * kRowGroupSize + open_rows_.size()) {
    return Status::NotFound("AO-column tid " + std::to_string(tid));
  }
  visimap_[tid] = xid;
  if (change_log() != nullptr) {
    change_log()->Append(
        ChangeRecord{ChangeKind::kSetXmax, id(), tid, kInvalidTupleId, xid, {}});
  }
  return Status::OK();
}

uint64_t AoColumnTable::ColumnCompressedBytes(int col) const {
  std::shared_lock<std::shared_mutex> g(latch_);
  uint64_t total = 0;
  for (const RowGroup& group : sealed_) {
    total += group.columns[static_cast<size_t>(col)].bytes.size();
  }
  return total;
}

}  // namespace gphtap
