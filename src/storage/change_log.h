// Per-segment logical change stream: the in-process stand-in for WAL shipping
// (Section 3.1: "mirrors receive WAL logs from their corresponding primary
// segments continuously and replay the logs on the fly"). Storage and the
// transaction manager append records in commit-order; a mirror replays them.
#ifndef GPHTAP_STORAGE_CHANGE_LOG_H_
#define GPHTAP_STORAGE_CHANGE_LOG_H_

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "catalog/datum.h"
#include "catalog/schema.h"
#include "storage/tuple.h"
#include "txn/xid.h"

namespace gphtap {

enum class ChangeKind : uint8_t {
  kTxnBegin,    // xid registered
  kInsert,      // tuple version created at tid
  kSetXmax,     // delete/update stamped xmax=xid on tid
  kLink,        // ctid chain: tid -> tid2
  kFreeSlot,    // vacuum reclaimed tid
  kTxnCommit,   // local transaction committed
  kTxnAbort,    // local transaction aborted
  kTruncate,    // table contents discarded
  kTxnPrepare,  // local transaction PREPAREd (2PC phase one)
  kFreeGroup,   // AO reclamation freed a whole row group (`tid` = group index)
};

struct ChangeRecord {
  ChangeKind kind = ChangeKind::kInsert;
  TableId table = 0;
  TupleId tid = kInvalidTupleId;
  TupleId tid2 = kInvalidTupleId;  // kLink target
  LocalXid xid = kInvalidLocalXid;
  Row row;  // kInsert payload
  // Distributed xid for transaction records; lets a promoted mirror resolve
  // in-doubt prepared transactions against the coordinator's commit record.
  Gxid gxid = kInvalidGxid;
};

/// Unbounded ordered log with blocking readers. Appenders may hold storage
/// latches while appending (the log never takes storage locks).
class ChangeLog {
 public:
  void Append(ChangeRecord record) {
    std::lock_guard<std::mutex> g(mu_);
    records_.push_back(std::move(record));
    cv_.notify_all();
  }

  /// Returns record `index`, blocking until it exists; nullopt once the log is
  /// closed and `index` is past the end.
  std::optional<ChangeRecord> Read(size_t index) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return closed_ || index < records_.size(); });
    if (index >= records_.size()) return std::nullopt;
    return records_[index];
  }

  size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return records_.size();
  }

  /// Non-blocking copy of the first `limit` records (crash-recovery replay).
  std::vector<ChangeRecord> Snapshot(size_t limit) const {
    std::lock_guard<std::mutex> g(mu_);
    limit = std::min(limit, records_.size());
    return std::vector<ChangeRecord>(records_.begin(),
                                     records_.begin() + static_cast<ptrdiff_t>(limit));
  }

  /// Non-blocking copy of records [from, end) — rebalance catchup reads the
  /// delta that accumulated since its copy-phase mark.
  std::vector<ChangeRecord> SnapshotFrom(size_t from) const {
    std::lock_guard<std::mutex> g(mu_);
    if (from >= records_.size()) return {};
    return std::vector<ChangeRecord>(records_.begin() + static_cast<ptrdiff_t>(from),
                                     records_.end());
  }

  void Close() {
    std::lock_guard<std::mutex> g(mu_);
    closed_ = true;
    cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<ChangeRecord> records_;
  bool closed_ = false;
};

}  // namespace gphtap

#endif  // GPHTAP_STORAGE_CHANGE_LOG_H_
