#include "storage/partitioned_table.h"

namespace gphtap {

PartitionedTable::PartitionedTable(TableDef def, std::vector<std::unique_ptr<Table>> leaves)
    : Table(std::move(def)), leaves_(std::move(leaves)) {}

Table* PartitionedTable::LeafFor(const Datum& v) {
  int idx = def().partitions->RouteValue(v);
  if (idx < 0) return nullptr;
  return leaves_[static_cast<size_t>(idx)].get();
}

StatusOr<TupleId> PartitionedTable::Insert(LocalXid xid, const Row& row) {
  GPHTAP_RETURN_IF_ERROR(schema().CheckRow(row));
  const Datum& key = row[static_cast<size_t>(def().partitions->partition_col)];
  Table* leaf = LeafFor(key);
  if (leaf == nullptr) {
    return Status::InvalidArgument("no partition of " + def().name + " holds value " +
                                   key.ToString());
  }
  return leaf->Insert(xid, row);
}

Status PartitionedTable::Scan(const VisibilityContext& ctx, const ScanCallback& fn) {
  bool stopped = false;
  for (auto& leaf : leaves_) {
    if (stopped) break;
    GPHTAP_RETURN_IF_ERROR(leaf->Scan(ctx, [&](TupleId tid, const Row& row) {
      if (!fn(tid, row)) {
        stopped = true;
        return false;
      }
      return true;
    }));
  }
  return Status::OK();
}

Status PartitionedTable::ScanColumns(const VisibilityContext& ctx,
                                     const std::vector<int>& cols,
                                     const ScanCallback& fn) {
  bool stopped = false;
  for (auto& leaf : leaves_) {
    if (stopped) break;
    GPHTAP_RETURN_IF_ERROR(leaf->ScanColumns(ctx, cols, [&](TupleId tid, const Row& row) {
      if (!fn(tid, row)) {
        stopped = true;
        return false;
      }
      return true;
    }));
  }
  return Status::OK();
}

Status PartitionedTable::Truncate() {
  for (auto& leaf : leaves_) {
    GPHTAP_RETURN_IF_ERROR(leaf->Truncate());
  }
  return Status::OK();
}

uint64_t PartitionedTable::StoredVersionCount() const {
  uint64_t total = 0;
  for (const auto& leaf : leaves_) total += leaf->StoredVersionCount();
  return total;
}

uint64_t PartitionedTable::BytesScanned() const {
  uint64_t total = 0;
  for (const auto& leaf : leaves_) total += leaf->BytesScanned();
  return total;
}

}  // namespace gphtap
