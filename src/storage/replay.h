// Shared change-record application: the single switch that turns a logical
// ChangeRecord back into physical table state. Used by mirror replay (shipped
// stream) and by segment crash recovery (local change-log replay) so both paths
// reproduce the primary bit-for-bit with one implementation.
#ifndef GPHTAP_STORAGE_REPLAY_H_
#define GPHTAP_STORAGE_REPLAY_H_

#include "common/status.h"
#include "storage/change_log.h"
#include "storage/table.h"

namespace gphtap {

/// Applies one *data* change record (kInsert/kSetXmax/kLink/kFreeSlot/kTruncate)
/// to `table`. Transaction records (kTxnBegin/kTxnPrepare/kTxnCommit/kTxnAbort)
/// are the caller's job (they touch the clog, not a table) and return Internal.
Status ApplyDataChange(Table* table, const ChangeRecord& record);

}  // namespace gphtap

#endif  // GPHTAP_STORAGE_REPLAY_H_
