// Physical plan representation. Motion nodes cut the tree into slices; every
// slice executes SPMD on its gang (all segments, one segment under direct
// dispatch, or the coordinator for the top slice) — Section 3.2.
#ifndef GPHTAP_PLAN_PLAN_H_
#define GPHTAP_PLAN_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "plan/expr.h"

namespace gphtap {

enum class PlanKind : uint8_t {
  kSeqScan,
  kIndexScan,
  kVirtualScan,  // coordinator-only system-view scan (Cluster::SystemViewRows)
  kValues,
  kGenerateSeries,
  kFilter,
  kProject,
  kHashJoin,
  kNestLoop,
  kHashAgg,
  kSort,
  kLimit,
  kMotion,  // receive side; the child subtree is the send-side slice
};

enum class MotionKind : uint8_t {
  kGather,        // N senders -> 1 receiver (coordinator)
  kRedistribute,  // N senders -> N receivers by hash of keys
  kBroadcast,     // N senders -> every receiver gets every row
};

enum class AggFunc : uint8_t { kCountStar, kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc fn);

struct AggSpec {
  AggFunc fn = AggFunc::kCountStar;
  ExprPtr arg;  // null for COUNT(*)
};

enum class AggPhase : uint8_t { kSingle, kPartial, kFinal };

struct SortKey {
  int column = 0;
  bool ascending = true;
};

/// One physical plan node. A single struct with per-kind fields keeps the
/// executor's dispatch simple; unused fields stay default.
struct PlanNode {
  PlanKind kind = PlanKind::kSeqScan;
  std::vector<std::unique_ptr<PlanNode>> children;

  // kSeqScan / kIndexScan
  TableId table = 0;
  std::vector<int> scan_cols;  // projection pushed into the scan (empty = all)
  ExprPtr filter;              // also used by kFilter / join filters
  int index_col = -1;          // kIndexScan
  Datum index_key;

  // kValues / kGenerateSeries
  std::vector<Row> rows;
  int64_t series_start = 0, series_end = 0;

  // kProject
  std::vector<ExprPtr> exprs;

  // kHashJoin / kNestLoop: children[0]=outer/probe, children[1]=inner/build
  std::vector<int> left_keys, right_keys;
  bool prefetch_inner = true;  // Appendix B: materialize inner before outer

  // kHashAgg
  std::vector<int> group_cols;
  std::vector<AggSpec> aggs;
  AggPhase agg_phase = AggPhase::kSingle;

  // kSort / kLimit
  std::vector<SortKey> sort_keys;
  int64_t limit = -1;

  // kMotion
  MotionKind motion = MotionKind::kGather;
  std::vector<int> hash_cols;  // kRedistribute
  int motion_id = -1;

  /// Number of columns this node produces (filled in by the planner).
  int output_arity = 0;

  /// Pre-order id assigned by AssignPlanNodeIds; -1 = unassigned. Keys the
  /// EXPLAIN ANALYZE per-operator actuals (OperatorStatsCollector).
  int node_id = -1;

  /// Marked by the planner when this subtree runs on the vectorized batch
  /// engine (src/vec/). Unmarked nodes run tuple-at-a-time; the executor
  /// bridges at marked/unmarked boundaries.
  bool vectorize = false;

  /// Scan nodes only: which store serves the scan ("heap", "ao-row",
  /// "ao-column", "delta-merged", ...). Labeled by the planner, rendered by
  /// EXPLAIN so delta coverage is visible per query.
  std::string scan_store;

  std::string ToString(int indent = 0) const;
};

using PlanPtr = std::unique_ptr<PlanNode>;

/// Assigns pre-order node ids starting at `next_id`; returns the next free id.
int AssignPlanNodeIds(PlanNode* root, int next_id = 0);

/// Convenience builders used by the planner and tests.
PlanPtr MakeSeqScan(TableId table, int arity, ExprPtr filter = nullptr);
PlanPtr MakeVirtualScan(TableId table, int arity, ExprPtr filter = nullptr);
PlanPtr MakeIndexScan(TableId table, int arity, int col, Datum key,
                      ExprPtr filter = nullptr);
PlanPtr MakeMotion(MotionKind kind, PlanPtr child, int motion_id,
                   std::vector<int> hash_cols = {});

/// Number of output columns contributed by one aggregate's partial state.
int AggStateArity(AggFunc fn);

/// Deep-copies `e` with every kParam node replaced by Const(params[param]).
/// Subtrees without parameters are shared, not copied (Expr is immutable).
/// Returns an error if a parameter position is outside `params`.
StatusOr<ExprPtr> CloneExprWithParams(const ExprPtr& e,
                                      const std::vector<Datum>& params);

/// Deep-copies a (cached/prepared) plan tree, substituting EXECUTE-time
/// parameter values into every expression. The node copy is required even
/// when no parameters appear under a node: callers execute the clone while
/// other sessions may concurrently clone the same cached original.
StatusOr<PlanPtr> ClonePlanWithParams(const PlanNode& node,
                                      const std::vector<Datum>& params);

}  // namespace gphtap

#endif  // GPHTAP_PLAN_PLAN_H_
