#include "plan/expr.h"

#include <cmath>

namespace gphtap {

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kMod:
      return "%";
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "<>";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAnd:
      return "AND";
    case BinOp::kOr:
      return "OR";
  }
  return "?";
}

ExprPtr Expr::Const(Datum d) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kConst;
  e->value = std::move(d);
  return e;
}

ExprPtr Expr::Column(int index) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumn;
  e->column = index;
  return e;
}

ExprPtr Expr::Param(int index) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kParam;
  e->param = index;
  return e;
}

ExprPtr Expr::Binary(BinOp op, ExprPtr l, ExprPtr r) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

ExprPtr Expr::Not(ExprPtr inner) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kNot;
  e->left = std::move(inner);
  return e;
}

ExprPtr Expr::IsNull(ExprPtr inner) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kIsNull;
  e->left = std::move(inner);
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kConst:
      return value.ToString();
    case ExprKind::kColumn:
      return "$" + std::to_string(column);
    case ExprKind::kBinary:
      return "(" + left->ToString() + " " + BinOpName(op) + " " + right->ToString() + ")";
    case ExprKind::kNot:
      return "NOT " + left->ToString();
    case ExprKind::kIsNull:
      return left->ToString() + " IS NULL";
    case ExprKind::kParam:
      return "$param" + std::to_string(param + 1);
  }
  return "?";
}

namespace {

StatusOr<Datum> EvalArith(BinOp op, const Datum& l, const Datum& r) {
  if (l.is_null() || r.is_null()) return Datum::Null();
  if (l.is_string() || r.is_string()) {
    if (op == BinOp::kAdd && l.is_string() && r.is_string()) {
      return Datum(l.string_val() + r.string_val());  // string concatenation
    }
    return Status::InvalidArgument("arithmetic on strings");
  }
  bool both_int = l.is_int() && r.is_int();
  if (both_int) {
    int64_t a = l.int_val(), b = r.int_val();
    switch (op) {
      case BinOp::kAdd:
        return Datum(a + b);
      case BinOp::kSub:
        return Datum(a - b);
      case BinOp::kMul:
        return Datum(a * b);
      case BinOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Datum(a / b);
      case BinOp::kMod:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Datum(a % b);
      default:
        break;
    }
  }
  double a = l.AsDouble(), b = r.AsDouble();
  switch (op) {
    case BinOp::kAdd:
      return Datum(a + b);
    case BinOp::kSub:
      return Datum(a - b);
    case BinOp::kMul:
      return Datum(a * b);
    case BinOp::kDiv:
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Datum(a / b);
    case BinOp::kMod:
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Datum(std::fmod(a, b));
    default:
      break;
  }
  return Status::Internal("bad arithmetic op");
}

StatusOr<Datum> EvalCompare(BinOp op, const Datum& l, const Datum& r) {
  if (l.is_null() || r.is_null()) return Datum::Null();
  int c = l.Compare(r);
  bool result = false;
  switch (op) {
    case BinOp::kEq:
      result = c == 0;
      break;
    case BinOp::kNe:
      result = c != 0;
      break;
    case BinOp::kLt:
      result = c < 0;
      break;
    case BinOp::kLe:
      result = c <= 0;
      break;
    case BinOp::kGt:
      result = c > 0;
      break;
    case BinOp::kGe:
      result = c >= 0;
      break;
    default:
      return Status::Internal("bad comparison op");
  }
  return Datum(static_cast<int64_t>(result ? 1 : 0));
}

// Boolean interpretation: NULL stays NULL, nonzero = true.
enum class Tri { kFalse, kTrue, kNull };

Tri AsTri(const Datum& d) {
  if (d.is_null()) return Tri::kNull;
  if (d.is_int()) return d.int_val() != 0 ? Tri::kTrue : Tri::kFalse;
  if (d.is_double()) return d.double_val() != 0 ? Tri::kTrue : Tri::kFalse;
  return d.string_val().empty() ? Tri::kFalse : Tri::kTrue;
}

Datum TriToDatum(Tri t) {
  if (t == Tri::kNull) return Datum::Null();
  return Datum(static_cast<int64_t>(t == Tri::kTrue ? 1 : 0));
}

}  // namespace

StatusOr<Datum> EvalBinaryOp(BinOp op, const Datum& l, const Datum& r) {
  switch (op) {
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv:
    case BinOp::kMod:
      return EvalArith(op, l, r);
    case BinOp::kAnd:
    case BinOp::kOr:
      return Status::Internal("EvalBinaryOp does not handle AND/OR");
    default:
      return EvalCompare(op, l, r);
  }
}

int DatumTruth(const Datum& d) {
  switch (AsTri(d)) {
    case Tri::kNull:
      return -1;
    case Tri::kFalse:
      return 0;
    case Tri::kTrue:
      return 1;
  }
  return -1;
}

StatusOr<Datum> EvalExpr(const Expr& e, const Row& row) {
  switch (e.kind) {
    case ExprKind::kConst:
      return e.value;
    case ExprKind::kColumn:
      if (e.column < 0 || static_cast<size_t>(e.column) >= row.size()) {
        return Status::Internal("column index out of range: " + std::to_string(e.column));
      }
      return row[static_cast<size_t>(e.column)];
    case ExprKind::kParam:
      // Parameters must be substituted out (ClonePlanWithParams) before a
      // prepared plan executes; reaching one here is a bind failure.
      return Status::Internal("unbound parameter $" + std::to_string(e.param + 1));
    case ExprKind::kNot: {
      GPHTAP_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e.left, row));
      Tri t = AsTri(v);
      if (t == Tri::kNull) return Datum::Null();
      return Datum(static_cast<int64_t>(t == Tri::kTrue ? 0 : 1));
    }
    case ExprKind::kIsNull: {
      GPHTAP_ASSIGN_OR_RETURN(Datum v, EvalExpr(*e.left, row));
      return Datum(static_cast<int64_t>(v.is_null() ? 1 : 0));
    }
    case ExprKind::kBinary: {
      if (e.op == BinOp::kAnd || e.op == BinOp::kOr) {
        GPHTAP_ASSIGN_OR_RETURN(Datum lv, EvalExpr(*e.left, row));
        Tri lt = AsTri(lv);
        // Short circuit.
        if (e.op == BinOp::kAnd && lt == Tri::kFalse) return Datum(int64_t{0});
        if (e.op == BinOp::kOr && lt == Tri::kTrue) return Datum(int64_t{1});
        GPHTAP_ASSIGN_OR_RETURN(Datum rv, EvalExpr(*e.right, row));
        Tri rt = AsTri(rv);
        if (e.op == BinOp::kAnd) {
          if (lt == Tri::kTrue && rt == Tri::kTrue) return Datum(int64_t{1});
          if (rt == Tri::kFalse) return Datum(int64_t{0});
          return Datum::Null();
        }
        if (lt == Tri::kFalse && rt == Tri::kFalse) return Datum(int64_t{0});
        if (rt == Tri::kTrue) return Datum(int64_t{1});
        return Datum::Null();
      }
      GPHTAP_ASSIGN_OR_RETURN(Datum lv, EvalExpr(*e.left, row));
      GPHTAP_ASSIGN_OR_RETURN(Datum rv, EvalExpr(*e.right, row));
      switch (e.op) {
        case BinOp::kAdd:
        case BinOp::kSub:
        case BinOp::kMul:
        case BinOp::kDiv:
        case BinOp::kMod:
          return EvalArith(e.op, lv, rv);
        default:
          return EvalCompare(e.op, lv, rv);
      }
    }
  }
  return Status::Internal("bad expr kind");
}

StatusOr<bool> EvalPredicate(const Expr& e, const Row& row) {
  GPHTAP_ASSIGN_OR_RETURN(Datum v, EvalExpr(e, row));
  return AsTri(v) == Tri::kTrue;
}

bool ExtractEqualityConst(const Expr& e, int col, Datum* out) {
  if (e.kind == ExprKind::kBinary && e.op == BinOp::kAnd) {
    return ExtractEqualityConst(*e.left, col, out) ||
           ExtractEqualityConst(*e.right, col, out);
  }
  if (e.kind != ExprKind::kBinary || e.op != BinOp::kEq) return false;
  const Expr* l = e.left.get();
  const Expr* r = e.right.get();
  if (l->kind == ExprKind::kColumn && l->column == col && r->kind == ExprKind::kConst &&
      !r->value.is_null()) {
    *out = r->value;
    return true;
  }
  if (r->kind == ExprKind::kColumn && r->column == col && l->kind == ExprKind::kConst &&
      !l->value.is_null()) {
    *out = l->value;
    return true;
  }
  return false;
}

bool ExprReadsColumns(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kConst:
      return false;
    case ExprKind::kParam:
      // Not constant-foldable at plan time: the value arrives at EXECUTE.
      return true;
    case ExprKind::kColumn:
      return true;
    case ExprKind::kNot:
    case ExprKind::kIsNull:
      return ExprReadsColumns(*e.left);
    case ExprKind::kBinary:
      return ExprReadsColumns(*e.left) || ExprReadsColumns(*e.right);
  }
  return false;
}

}  // namespace gphtap
