// Coordinator plan cache: memoizes planned SELECTs keyed by normalized SQL
// text so repeated statements (the OLTP side of the mixed workload) stop
// paying parse/analyze/plan on every execution. Entries are stamped with the
// catalog version current at plan time; any DDL / expansion / rebalance bumps
// the cluster's catalog version and stale entries are evicted lazily at
// lookup ("plan_cache.invalidations").
#ifndef GPHTAP_PLAN_PLAN_CACHE_H_
#define GPHTAP_PLAN_PLAN_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "common/metrics.h"
#include "plan/plan.h"

namespace gphtap {

/// One reusable planned SELECT. The plan tree is shared immutable state —
/// executors only read PlanNode, so any number of concurrent queries may run
/// the same root. Tables ride along for execute-time lock acquisition.
struct CachedPlan {
  std::shared_ptr<const PlanNode> root;
  std::vector<int> gang;
  std::vector<std::string> columns;
  std::vector<TableDef> tables;
  uint64_t catalog_version = 0;
};

class PlanCache {
 public:
  /// `capacity` 0 disables the cache (every lookup misses, inserts drop).
  /// `metrics` (optional) receives plan_cache.hits / .misses /
  /// .invalidations / .evictions counters.
  explicit PlanCache(size_t capacity, MetricsRegistry* metrics = nullptr);

  /// Returns the cached plan for `sql` when present and planned at
  /// `catalog_version`; a version mismatch evicts the entry and misses.
  std::shared_ptr<const CachedPlan> Lookup(const std::string& sql,
                                           uint64_t catalog_version);

  /// Inserts (or replaces) the entry, evicting the least-recently-used entry
  /// beyond capacity.
  void Insert(const std::string& sql, std::shared_ptr<const CachedPlan> plan);

  void Clear();

  size_t size() const;
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::string sql;
    std::shared_ptr<const CachedPlan> plan;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> invalidations_{0};

  Counter* m_hits_ = nullptr;
  Counter* m_misses_ = nullptr;
  Counter* m_invalidations_ = nullptr;
  Counter* m_evictions_ = nullptr;
};

}  // namespace gphtap

#endif  // GPHTAP_PLAN_PLAN_CACHE_H_
