#include "plan/plan_cache.h"

namespace gphtap {

PlanCache::PlanCache(size_t capacity, MetricsRegistry* metrics)
    : capacity_(capacity) {
  if (metrics != nullptr) {
    m_hits_ = metrics->counter("plan_cache.hits");
    m_misses_ = metrics->counter("plan_cache.misses");
    m_invalidations_ = metrics->counter("plan_cache.invalidations");
    m_evictions_ = metrics->counter("plan_cache.evictions");
  }
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const std::string& sql,
                                                    uint64_t catalog_version) {
  if (capacity_ == 0) return nullptr;
  std::lock_guard<std::mutex> g(mu_);
  auto it = index_.find(sql);
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (m_misses_ != nullptr) m_misses_->Add(1);
    return nullptr;
  }
  if (it->second->plan->catalog_version != catalog_version) {
    // Planned against a catalog that has since changed (DDL, expansion,
    // rebalance): the plan may reference dropped tables or a stale gang.
    lru_.erase(it->second);
    index_.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    if (m_invalidations_ != nullptr) m_invalidations_->Add(1);
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (m_misses_ != nullptr) m_misses_->Add(1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  hits_.fetch_add(1, std::memory_order_relaxed);
  if (m_hits_ != nullptr) m_hits_->Add(1);
  return it->second->plan;
}

void PlanCache::Insert(const std::string& sql,
                       std::shared_ptr<const CachedPlan> plan) {
  if (capacity_ == 0 || plan == nullptr) return;
  std::lock_guard<std::mutex> g(mu_);
  auto it = index_.find(sql);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{sql, std::move(plan)});
  index_[sql] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().sql);
    lru_.pop_back();
    if (m_evictions_ != nullptr) m_evictions_->Add(1);
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> g(mu_);
  lru_.clear();
  index_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> g(mu_);
  return lru_.size();
}

}  // namespace gphtap
