#include "plan/plan.h"

namespace gphtap {

const char* AggFuncName(AggFunc fn) {
  switch (fn) {
    case AggFunc::kCountStar:
      return "count(*)";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

int AggStateArity(AggFunc fn) { return fn == AggFunc::kAvg ? 2 : 1; }

namespace {
const char* PlanKindName(PlanKind k) {
  switch (k) {
    case PlanKind::kSeqScan:
      return "SeqScan";
    case PlanKind::kIndexScan:
      return "IndexScan";
    case PlanKind::kVirtualScan:
      return "VirtualScan";
    case PlanKind::kValues:
      return "Values";
    case PlanKind::kGenerateSeries:
      return "GenerateSeries";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kHashJoin:
      return "HashJoin";
    case PlanKind::kNestLoop:
      return "NestLoop";
    case PlanKind::kHashAgg:
      return "HashAgg";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kLimit:
      return "Limit";
    case PlanKind::kMotion:
      return "Motion";
  }
  return "?";
}

const char* MotionKindName(MotionKind k) {
  switch (k) {
    case MotionKind::kGather:
      return "Gather";
    case MotionKind::kRedistribute:
      return "Redistribute";
    case MotionKind::kBroadcast:
      return "Broadcast";
  }
  return "?";
}
}  // namespace

int AssignPlanNodeIds(PlanNode* root, int next_id) {
  if (root == nullptr) return next_id;
  root->node_id = next_id++;
  for (auto& child : root->children) next_id = AssignPlanNodeIds(child.get(), next_id);
  return next_id;
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string s = pad + PlanKindName(kind);
  switch (kind) {
    case PlanKind::kSeqScan:
    case PlanKind::kIndexScan:
    case PlanKind::kVirtualScan:
      s += " table=" + std::to_string(table);
      if (kind == PlanKind::kIndexScan) {
        s += " key[$" + std::to_string(index_col) + "=" + index_key.ToString() + "]";
      }
      if (filter) s += " filter=" + filter->ToString();
      break;
    case PlanKind::kFilter:
      if (filter) s += " " + filter->ToString();
      break;
    case PlanKind::kMotion:
      s += std::string(" ") + MotionKindName(motion) + " id=" + std::to_string(motion_id);
      break;
    case PlanKind::kHashAgg:
      s += " phase=" + std::to_string(static_cast<int>(agg_phase)) +
           " groups=" + std::to_string(group_cols.size()) +
           " aggs=" + std::to_string(aggs.size());
      break;
    case PlanKind::kLimit:
      s += " n=" + std::to_string(limit);
      break;
    default:
      break;
  }
  if (vectorize) s += " (vectorized)";
  s += "\n";
  for (const auto& c : children) s += c->ToString(indent + 1);
  return s;
}

PlanPtr MakeSeqScan(TableId table, int arity, ExprPtr filter) {
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kSeqScan;
  p->table = table;
  p->filter = std::move(filter);
  p->output_arity = arity;
  return p;
}

PlanPtr MakeVirtualScan(TableId table, int arity, ExprPtr filter) {
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kVirtualScan;
  p->table = table;
  p->filter = std::move(filter);
  p->output_arity = arity;
  return p;
}

PlanPtr MakeIndexScan(TableId table, int arity, int col, Datum key, ExprPtr filter) {
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kIndexScan;
  p->table = table;
  p->index_col = col;
  p->index_key = std::move(key);
  p->filter = std::move(filter);
  p->output_arity = arity;
  return p;
}

PlanPtr MakeMotion(MotionKind kind, PlanPtr child, int motion_id,
                   std::vector<int> hash_cols) {
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kMotion;
  p->motion = kind;
  p->motion_id = motion_id;
  p->hash_cols = std::move(hash_cols);
  p->output_arity = child->output_arity;
  p->children.push_back(std::move(child));
  return p;
}

}  // namespace gphtap
