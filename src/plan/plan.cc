#include "plan/plan.h"

namespace gphtap {

const char* AggFuncName(AggFunc fn) {
  switch (fn) {
    case AggFunc::kCountStar:
      return "count(*)";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

int AggStateArity(AggFunc fn) { return fn == AggFunc::kAvg ? 2 : 1; }

namespace {
const char* PlanKindName(PlanKind k) {
  switch (k) {
    case PlanKind::kSeqScan:
      return "SeqScan";
    case PlanKind::kIndexScan:
      return "IndexScan";
    case PlanKind::kVirtualScan:
      return "VirtualScan";
    case PlanKind::kValues:
      return "Values";
    case PlanKind::kGenerateSeries:
      return "GenerateSeries";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kHashJoin:
      return "HashJoin";
    case PlanKind::kNestLoop:
      return "NestLoop";
    case PlanKind::kHashAgg:
      return "HashAgg";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kLimit:
      return "Limit";
    case PlanKind::kMotion:
      return "Motion";
  }
  return "?";
}

const char* MotionKindName(MotionKind k) {
  switch (k) {
    case MotionKind::kGather:
      return "Gather";
    case MotionKind::kRedistribute:
      return "Redistribute";
    case MotionKind::kBroadcast:
      return "Broadcast";
  }
  return "?";
}
}  // namespace

int AssignPlanNodeIds(PlanNode* root, int next_id) {
  if (root == nullptr) return next_id;
  root->node_id = next_id++;
  for (auto& child : root->children) next_id = AssignPlanNodeIds(child.get(), next_id);
  return next_id;
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string s = pad + PlanKindName(kind);
  switch (kind) {
    case PlanKind::kSeqScan:
    case PlanKind::kIndexScan:
    case PlanKind::kVirtualScan:
      s += " table=" + std::to_string(table);
      if (kind == PlanKind::kIndexScan) {
        s += " key[$" + std::to_string(index_col) + "=" + index_key.ToString() + "]";
      }
      if (filter) s += " filter=" + filter->ToString();
      if (!scan_store.empty()) s += " store=" + scan_store;
      break;
    case PlanKind::kFilter:
      if (filter) s += " " + filter->ToString();
      break;
    case PlanKind::kMotion:
      s += std::string(" ") + MotionKindName(motion) + " id=" + std::to_string(motion_id);
      break;
    case PlanKind::kHashAgg:
      s += " phase=" + std::to_string(static_cast<int>(agg_phase)) +
           " groups=" + std::to_string(group_cols.size()) +
           " aggs=" + std::to_string(aggs.size());
      break;
    case PlanKind::kLimit:
      s += " n=" + std::to_string(limit);
      break;
    default:
      break;
  }
  if (vectorize) s += " (vectorized)";
  s += "\n";
  for (const auto& c : children) s += c->ToString(indent + 1);
  return s;
}

PlanPtr MakeSeqScan(TableId table, int arity, ExprPtr filter) {
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kSeqScan;
  p->table = table;
  p->filter = std::move(filter);
  p->output_arity = arity;
  return p;
}

PlanPtr MakeVirtualScan(TableId table, int arity, ExprPtr filter) {
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kVirtualScan;
  p->table = table;
  p->filter = std::move(filter);
  p->output_arity = arity;
  return p;
}

PlanPtr MakeIndexScan(TableId table, int arity, int col, Datum key, ExprPtr filter) {
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kIndexScan;
  p->table = table;
  p->index_col = col;
  p->index_key = std::move(key);
  p->filter = std::move(filter);
  p->output_arity = arity;
  return p;
}

namespace {
// Does any kParam appear in this expression?
bool ExprHasParams(const Expr& e) {
  if (e.kind == ExprKind::kParam) return true;
  if (e.left != nullptr && ExprHasParams(*e.left)) return true;
  return e.right != nullptr && ExprHasParams(*e.right);
}
}  // namespace

StatusOr<ExprPtr> CloneExprWithParams(const ExprPtr& e,
                                      const std::vector<Datum>& params) {
  if (e == nullptr) return ExprPtr{};
  if (!ExprHasParams(*e)) return e;  // immutable: share the subtree
  switch (e->kind) {
    case ExprKind::kParam: {
      if (e->param < 0 || static_cast<size_t>(e->param) >= params.size()) {
        return Status::InvalidArgument("parameter $" +
                                       std::to_string(e->param + 1) +
                                       " has no value");
      }
      return Expr::Const(params[static_cast<size_t>(e->param)]);
    }
    case ExprKind::kNot: {
      GPHTAP_ASSIGN_OR_RETURN(ExprPtr l, CloneExprWithParams(e->left, params));
      return Expr::Not(std::move(l));
    }
    case ExprKind::kIsNull: {
      GPHTAP_ASSIGN_OR_RETURN(ExprPtr l, CloneExprWithParams(e->left, params));
      return Expr::IsNull(std::move(l));
    }
    case ExprKind::kBinary: {
      GPHTAP_ASSIGN_OR_RETURN(ExprPtr l, CloneExprWithParams(e->left, params));
      GPHTAP_ASSIGN_OR_RETURN(ExprPtr r, CloneExprWithParams(e->right, params));
      return Expr::Binary(e->op, std::move(l), std::move(r));
    }
    case ExprKind::kConst:
    case ExprKind::kColumn:
      return e;  // unreachable given ExprHasParams, kept for completeness
  }
  return Status::Internal("bad expr kind");
}

StatusOr<PlanPtr> ClonePlanWithParams(const PlanNode& node,
                                      const std::vector<Datum>& params) {
  auto p = std::make_unique<PlanNode>();
  p->kind = node.kind;
  p->table = node.table;
  p->scan_cols = node.scan_cols;
  GPHTAP_ASSIGN_OR_RETURN(p->filter, CloneExprWithParams(node.filter, params));
  p->index_col = node.index_col;
  p->index_key = node.index_key;
  p->rows = node.rows;
  p->series_start = node.series_start;
  p->series_end = node.series_end;
  p->exprs.reserve(node.exprs.size());
  for (const ExprPtr& e : node.exprs) {
    GPHTAP_ASSIGN_OR_RETURN(ExprPtr c, CloneExprWithParams(e, params));
    p->exprs.push_back(std::move(c));
  }
  p->left_keys = node.left_keys;
  p->right_keys = node.right_keys;
  p->prefetch_inner = node.prefetch_inner;
  p->group_cols = node.group_cols;
  p->aggs.reserve(node.aggs.size());
  for (const AggSpec& a : node.aggs) {
    AggSpec spec;
    spec.fn = a.fn;
    GPHTAP_ASSIGN_OR_RETURN(spec.arg, CloneExprWithParams(a.arg, params));
    p->aggs.push_back(std::move(spec));
  }
  p->agg_phase = node.agg_phase;
  p->sort_keys = node.sort_keys;
  p->limit = node.limit;
  p->motion = node.motion;
  p->hash_cols = node.hash_cols;
  p->motion_id = node.motion_id;
  p->output_arity = node.output_arity;
  p->node_id = node.node_id;
  p->vectorize = node.vectorize;
  p->scan_store = node.scan_store;
  p->children.reserve(node.children.size());
  for (const auto& child : node.children) {
    GPHTAP_ASSIGN_OR_RETURN(PlanPtr c, ClonePlanWithParams(*child, params));
    p->children.push_back(std::move(c));
  }
  return p;
}

PlanPtr MakeMotion(MotionKind kind, PlanPtr child, int motion_id,
                   std::vector<int> hash_cols) {
  auto p = std::make_unique<PlanNode>();
  p->kind = PlanKind::kMotion;
  p->motion = kind;
  p->motion_id = motion_id;
  p->hash_cols = std::move(hash_cols);
  p->output_arity = child->output_arity;
  p->children.push_back(std::move(child));
  return p;
}

}  // namespace gphtap
