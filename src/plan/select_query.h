// The analyzer's bound representation of a SELECT, consumed by the planner.
// Expressions reference the "combined layout": the columns of every FROM table
// concatenated in FROM order.
#ifndef GPHTAP_PLAN_SELECT_QUERY_H_
#define GPHTAP_PLAN_SELECT_QUERY_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "plan/plan.h"

namespace gphtap {

struct SelectItem {
  bool is_agg = false;
  ExprPtr expr;     // when !is_agg
  AggSpec agg;      // when is_agg
  std::string name; // output column label
};

struct OrderItem {
  int select_index = 0;  // references the select list
  bool ascending = true;
};

struct SelectQuery {
  std::vector<TableDef> tables;   // FROM items in order
  std::vector<ExprPtr> quals;     // conjunctive WHERE/ON predicates
  std::vector<SelectItem> items;  // first `visible_items` are user-visible;
                                  // the rest are hidden (HAVING-only aggregates)
  int visible_items = -1;         // -1 = all items visible
  std::vector<int> group_by;      // combined-layout column indexes
  /// Bound over the ITEM layout (column i = items[i]'s output).
  ExprPtr having;
  bool distinct = false;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;

  int NumVisible() const {
    return visible_items < 0 ? static_cast<int>(items.size()) : visible_items;
  }

  bool HasAggregates() const {
    if (!group_by.empty()) return true;
    for (const auto& item : items) {
      if (item.is_agg) return true;
    }
    return false;
  }
};

}  // namespace gphtap

#endif  // GPHTAP_PLAN_SELECT_QUERY_H_
