#include "plan/planner.h"

#include <algorithm>
#include <numeric>
#include <set>

namespace gphtap {

namespace {

// Rebases an expression that references the combined layout so that column i
// becomes column remap[i]. Returns null if the expr references an unmapped col.
ExprPtr RemapExpr(const ExprPtr& e, const std::vector<int>& remap) {
  if (!e) return nullptr;
  switch (e->kind) {
    case ExprKind::kConst:
    case ExprKind::kParam:  // no column references; survives remapping as-is
      return e;
    case ExprKind::kColumn: {
      if (e->column < 0 || static_cast<size_t>(e->column) >= remap.size() ||
          remap[static_cast<size_t>(e->column)] < 0) {
        return nullptr;
      }
      return Expr::Column(remap[static_cast<size_t>(e->column)]);
    }
    case ExprKind::kNot: {
      ExprPtr l = RemapExpr(e->left, remap);
      return l ? Expr::Not(l) : nullptr;
    }
    case ExprKind::kIsNull: {
      ExprPtr l = RemapExpr(e->left, remap);
      return l ? Expr::IsNull(l) : nullptr;
    }
    case ExprKind::kBinary: {
      ExprPtr l = RemapExpr(e->left, remap);
      ExprPtr r = RemapExpr(e->right, remap);
      return (l && r) ? Expr::Binary(e->op, l, r) : nullptr;
    }
  }
  return nullptr;
}

void CollectColumns(const Expr& e, std::set<int>* out) {
  switch (e.kind) {
    case ExprKind::kColumn:
      out->insert(e.column);
      break;
    case ExprKind::kNot:
    case ExprKind::kIsNull:
      CollectColumns(*e.left, out);
      break;
    case ExprKind::kBinary:
      CollectColumns(*e.left, out);
      CollectColumns(*e.right, out);
      break;
    default:
      break;
  }
}

ExprPtr AndAll(const std::vector<ExprPtr>& quals) {
  ExprPtr acc;
  for (const ExprPtr& q : quals) {
    if (!q) continue;
    acc = acc ? Expr::Binary(BinOp::kAnd, acc, q) : q;
  }
  return acc;
}

// Is `e` an equality between a column of table range [al, ar) and one of
// [bl, br)? Outputs the two combined-layout column indexes.
bool IsJoinQual(const Expr& e, int al, int ar, int bl, int br, int* a_col, int* b_col) {
  if (e.kind != ExprKind::kBinary || e.op != BinOp::kEq) return false;
  if (e.left->kind != ExprKind::kColumn || e.right->kind != ExprKind::kColumn) {
    return false;
  }
  int l = e.left->column, r = e.right->column;
  if (l >= al && l < ar && r >= bl && r < br) {
    *a_col = l;
    *b_col = r;
    return true;
  }
  if (r >= al && r < ar && l >= bl && l < br) {
    *a_col = r;
    *b_col = l;
    return true;
  }
  return false;
}

struct RelState {
  PlanPtr plan;
  // For each combined-layout column index: its position in this plan's output,
  // or -1 if this relation does not produce it.
  std::vector<int> col_map;
  // Distribution: the combined-layout columns this stream is hash-distributed
  // by; empty + replicated=false means "gathered/unknown".
  std::vector<int> hash_dist;
  bool replicated = false;
  uint64_t rows = 1000;
};

// Bottom-up vectorizability marking. A node is marked when the batch engine
// can run its whole input side: SeqScans over AO-column tables, and
// Filter/Project/Motion/HashAgg/HashJoin chains above them (all agg phases —
// the batch engine merges partial state itself). Unmarked parents over marked
// children are fine — the executor bridges the boundary by materializing rows
// out of batches.
bool MarkVectorizable(PlanNode* n, const std::set<TableId>& vec_tables) {
  bool children_marked = !n->children.empty();
  for (auto& c : n->children) {
    children_marked &= MarkVectorizable(c.get(), vec_tables);
  }
  switch (n->kind) {
    case PlanKind::kSeqScan:
      n->vectorize = vec_tables.count(n->table) > 0;
      break;
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kMotion:
    case PlanKind::kHashAgg:
    case PlanKind::kHashJoin:
      n->vectorize = children_marked;
      break;
    default:
      n->vectorize = false;
      break;
  }
  return n->vectorize;
}

// Labels every scan node with the store that will serve it, for EXPLAIN
// transparency: a vectorized heap scan under the delta store is served by the
// delta-merged path, everything else by its table's physical storage.
void LabelScanStores(PlanNode* n, const std::vector<TableDef>& tables,
                     const PlannerOptions& opts) {
  if (n == nullptr) return;
  for (auto& c : n->children) LabelScanStores(c.get(), tables, opts);
  if (n->kind == PlanKind::kVirtualScan) {
    n->scan_store = "virtual";
    return;
  }
  if (n->kind != PlanKind::kSeqScan && n->kind != PlanKind::kIndexScan) return;
  const TableDef* def = nullptr;
  for (const TableDef& t : tables) {
    if (t.id == n->table) {
      def = &t;
      break;
    }
  }
  if (def == nullptr) return;
  if (def->partitions.has_value()) {
    n->scan_store = "partitioned";
    return;
  }
  switch (def->storage) {
    case StorageKind::kHeap:
      n->scan_store =
          (n->vectorize && opts.delta_store) ? "delta-merged" : "heap";
      break;
    case StorageKind::kAoRow:
      n->scan_store = "ao-row";
      break;
    case StorageKind::kAoColumn:
      n->scan_store = "ao-column";
      break;
    case StorageKind::kExternal:
      n->scan_store = "external";
      break;
  }
}

}  // namespace

int DirectDispatchSegment(const TableDef& table, const std::vector<ExprPtr>& quals,
                          int first_col_offset, int num_segments) {
  if (table.distribution.kind != DistributionKind::kHash) return -1;
  ExprPtr all = AndAll(quals);
  if (!all) return -1;
  Row key_values;
  for (int key_col : table.distribution.key_cols) {
    Datum v;
    if (!ExtractEqualityConst(*all, first_col_offset + key_col, &v)) return -1;
    key_values.push_back(std::move(v));
  }
  std::vector<int> idx(key_values.size());
  std::iota(idx.begin(), idx.end(), 0);
  uint64_t h = HashRowKey(key_values, idx);
  return static_cast<int>(h % static_cast<uint64_t>(num_segments));
}

StatusOr<PlannedSelect> PlanSelect(const SelectQuery& query, const PlannerOptions& opts) {
  if (query.tables.empty()) return Status::InvalidArgument("SELECT requires FROM");
  const int num_tables = static_cast<int>(query.tables.size());

  // System views execute coordinator-only: one kVirtualScan leaf, no motions,
  // an empty gang. Joining them — with each other or with stored tables —
  // would need virtual rows on segments, which is out of scope.
  bool any_virtual = false;
  for (const TableDef& t : query.tables) any_virtual |= t.is_system_view;
  if (any_virtual && num_tables > 1) {
    return Status::NotSupported("system views cannot be joined with other tables");
  }

  // Combined-layout offsets.
  std::vector<int> offset(static_cast<size_t>(num_tables) + 1, 0);
  for (int t = 0; t < num_tables; ++t) {
    offset[static_cast<size_t>(t) + 1] =
        offset[static_cast<size_t>(t)] +
        static_cast<int>(query.tables[static_cast<size_t>(t)].schema.num_columns());
  }
  const int total_cols = offset[static_cast<size_t>(num_tables)];

  // Partition quals: single-table quals push into scans; two-table equality
  // quals become join keys; the rest are residual filters.
  std::vector<std::vector<ExprPtr>> table_quals(static_cast<size_t>(num_tables));
  struct JoinQual {
    int ta, tb;       // table indexes
    int ca, cb;       // combined-layout columns
    bool used = false;
  };
  std::vector<JoinQual> join_quals;
  std::vector<ExprPtr> residual;

  auto table_of_col = [&](int col) {
    for (int t = 0; t < num_tables; ++t) {
      if (col >= offset[static_cast<size_t>(t)] && col < offset[static_cast<size_t>(t) + 1]) {
        return t;
      }
    }
    return -1;
  };

  for (const ExprPtr& q : query.quals) {
    std::set<int> cols;
    CollectColumns(*q, &cols);
    std::set<int> tables_touched;
    for (int c : cols) tables_touched.insert(table_of_col(c));
    if (tables_touched.size() <= 1) {
      int t = tables_touched.empty() ? 0 : *tables_touched.begin();
      table_quals[static_cast<size_t>(t)].push_back(q);
      continue;
    }
    if (tables_touched.size() == 2) {
      auto it = tables_touched.begin();
      int ta = *it++;
      int tb = *it;
      int ca, cb;
      if (IsJoinQual(*q, offset[static_cast<size_t>(ta)], offset[static_cast<size_t>(ta) + 1],
                     offset[static_cast<size_t>(tb)], offset[static_cast<size_t>(tb) + 1],
                     &ca, &cb)) {
        join_quals.push_back(JoinQual{ta, tb, ca, cb});
        continue;
      }
    }
    residual.push_back(q);
  }

  // Elastic expansion: the span a table's rows actually occupy. Prefers the
  // live-catalog callback (cached TableDefs go stale across a rebalance
  // cutover); falls back to the def's own field, then to "all segments".
  auto dist_of = [&](const TableDef& t) -> std::pair<int, bool> {
    if (opts.table_dist) {
      std::pair<int, bool> d = opts.table_dist(t.id);
      if (d.first > 0 && d.first <= opts.num_segments) return d;
    }
    int ds = t.dist_segments;
    if (ds <= 0 || ds > opts.num_segments) ds = opts.num_segments;
    return {ds, t.rebalancing};
  };

  // Direct dispatch: single hash-distributed table with a fully pinned key.
  // The routing modulus is the table's own span, not the cluster width — and
  // while a rebalance is in flight the row may visibly live at either the old
  // or the new home depending on snapshot, so dispatch goes wide.
  std::vector<int> gang(static_cast<size_t>(opts.num_segments));
  std::iota(gang.begin(), gang.end(), 0);
  if (num_tables == 1 && opts.direct_dispatch) {
    auto [mod, rebalancing] = dist_of(query.tables[0]);
    if (!rebalancing) {
      int seg = DirectDispatchSegment(query.tables[0], table_quals[0], 0, mod);
      if (seg >= 0) gang = {seg};
    }
  }
  // A query over only replicated tables runs on one segment (any copy);
  // segment 0 always holds a copy regardless of expansion state.
  bool all_replicated = true;
  for (const TableDef& t : query.tables) {
    all_replicated &= t.distribution.kind == DistributionKind::kReplicated;
  }
  if (all_replicated) gang = {0};
  // A replicated table only has complete copies on [0, dist_segments). When
  // the gang must span wider (a hash table occupies the new segments too), the
  // join would silently lose rows on segments with no replica — fail
  // retryably; expansion syncs replicated tables before rebalancing hash
  // tables, so a retry lands after the sync.
  if (!all_replicated && !any_virtual) {
    for (const TableDef& t : query.tables) {
      if (t.distribution.kind != DistributionKind::kReplicated) continue;
      // The recorded span is authoritative even mid-rebalance: the sync flips
      // it only after every live snapshot can see the new copies, so until
      // then a wide gang would read missing rows on the added segments.
      if (dist_of(t).first < opts.num_segments) {
        return Status::Unavailable("replicated table " + t.name +
                                   " not yet synced to expanded segments; retry");
      }
    }
  }
  // Virtual scans never dispatch to segments at all.
  if (any_virtual) gang = {};

  // Build per-table scans.
  auto estimate = [&](const TableDef& t) -> uint64_t {
    return opts.row_estimate ? opts.row_estimate(t.id) : 1000;
  };

  std::vector<RelState> rels;
  for (int t = 0; t < num_tables; ++t) {
    const TableDef& def = query.tables[static_cast<size_t>(t)];
    int ncols = static_cast<int>(def.schema.num_columns());
    // Scan-local remap: combined col -> scan output col.
    std::vector<int> remap(static_cast<size_t>(total_cols), -1);
    for (int c = 0; c < ncols; ++c) {
      remap[static_cast<size_t>(offset[static_cast<size_t>(t)] + c)] = c;
    }
    ExprPtr scan_filter = RemapExpr(AndAll(table_quals[static_cast<size_t>(t)]), remap);

    PlanPtr scan;
    // Point lookup through a hash index when available and pinned.
    ExprPtr all_quals = AndAll(table_quals[static_cast<size_t>(t)]);
    bool made_index_scan = false;
    if (def.is_system_view) {
      scan = MakeVirtualScan(def.id, ncols, scan_filter);
      made_index_scan = true;  // suppress the SeqScan fallback below
    } else if (all_quals) {
      for (int icol : def.indexed_cols) {
        Datum key;
        if (ExtractEqualityConst(*all_quals, offset[static_cast<size_t>(t)] + icol, &key)) {
          scan = MakeIndexScan(def.id, ncols, icol, key, scan_filter);
          made_index_scan = true;
          break;
        }
      }
    }
    if (!made_index_scan) scan = MakeSeqScan(def.id, ncols, scan_filter);

    RelState rel;
    rel.plan = std::move(scan);
    rel.col_map.assign(static_cast<size_t>(total_cols), -1);
    for (int c = 0; c < ncols; ++c) {
      rel.col_map[static_cast<size_t>(offset[static_cast<size_t>(t)] + c)] = c;
    }
    if (def.distribution.kind == DistributionKind::kHash) {
      // Collocation only holds when the table's hash modulus matches the
      // cluster width: a table still routed modulo its pre-expansion span (or
      // mid-rebalance, with rows transiently at both homes) does not place a
      // key on the segment a full-width redistribute would, so its
      // distribution is treated as unknown and joins add a motion.
      auto [mod, rebalancing] = dist_of(def);
      if (mod == opts.num_segments && !rebalancing) {
        for (int kc : def.distribution.key_cols) {
          rel.hash_dist.push_back(offset[static_cast<size_t>(t)] + kc);
        }
      }
    } else if (def.distribution.kind == DistributionKind::kReplicated) {
      rel.replicated = true;
    }
    rel.rows = estimate(def);
    rels.push_back(std::move(rel));
  }

  // Join order: FROM order (heuristic), or by descending cardinality with the
  // largest relation first (cost-based "Orca" mode). Replicated relations go
  // last so they end up on the build side.
  std::vector<int> order(static_cast<size_t>(num_tables));
  std::iota(order.begin(), order.end(), 0);
  if (opts.use_orca) {
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return rels[static_cast<size_t>(a)].rows > rels[static_cast<size_t>(b)].rows;
    });
  }
  std::stable_partition(order.begin(), order.end(),
                        [&](int t) { return !rels[static_cast<size_t>(t)].replicated; });

  // Left-deep join chain.
  RelState current = std::move(rels[static_cast<size_t>(order[0])]);
  for (size_t oi = 1; oi < order.size(); ++oi) {
    RelState next = std::move(rels[static_cast<size_t>(order[oi])]);

    // Join keys between `current` and `next`.
    std::vector<int> left_keys_combined, right_keys_combined;
    for (auto& jq : join_quals) {
      if (jq.used) continue;
      bool a_in_cur = current.col_map[static_cast<size_t>(jq.ca)] >= 0;
      bool b_in_cur = current.col_map[static_cast<size_t>(jq.cb)] >= 0;
      bool a_in_next = next.col_map[static_cast<size_t>(jq.ca)] >= 0;
      bool b_in_next = next.col_map[static_cast<size_t>(jq.cb)] >= 0;
      if (a_in_cur && b_in_next) {
        left_keys_combined.push_back(jq.ca);
        right_keys_combined.push_back(jq.cb);
        jq.used = true;
      } else if (b_in_cur && a_in_next) {
        left_keys_combined.push_back(jq.cb);
        right_keys_combined.push_back(jq.ca);
        jq.used = true;
      }
    }

    auto needs_motion = [&](const RelState& rel,
                            const std::vector<int>& join_cols) -> bool {
      if (rel.replicated) return false;
      if (rel.hash_dist.empty()) return true;
      // Collocated iff its hash distribution equals the join key set.
      std::set<int> dist(rel.hash_dist.begin(), rel.hash_dist.end());
      std::set<int> keys(join_cols.begin(), join_cols.end());
      return dist != keys;
    };

    if (!left_keys_combined.empty()) {
      // Hash join. Decide motions. A replicated side is collocated with
      // anything, so joins against it never move data.
      bool left_motion = needs_motion(current, left_keys_combined);
      bool right_motion = needs_motion(next, right_keys_combined);
      if (current.replicated || next.replicated) {
        left_motion = false;
        right_motion = false;
      }
      bool broadcast_right = false;
      if (opts.use_orca && (left_motion || right_motion) &&
          next.rows * 10 < current.rows) {
        // Small build side: replicate it instead of moving either stream.
        broadcast_right = true;
        left_motion = false;
        right_motion = true;
      }

      auto add_motion = [&](RelState& rel, const std::vector<int>& keys_combined,
                            bool broadcast) {
        std::vector<int> local_keys;
        for (int kc : keys_combined) {
          local_keys.push_back(rel.col_map[static_cast<size_t>(kc)]);
        }
        rel.plan = MakeMotion(broadcast ? MotionKind::kBroadcast : MotionKind::kRedistribute,
                              std::move(rel.plan), opts.next_motion_id(), local_keys);
        if (broadcast) {
          rel.replicated = true;
          rel.hash_dist.clear();
        } else {
          rel.hash_dist = keys_combined;
          rel.replicated = false;
        }
      };
      if (left_motion) add_motion(current, left_keys_combined, false);
      if (right_motion) add_motion(next, right_keys_combined, broadcast_right);

      auto join = std::make_unique<PlanNode>();
      join->kind = PlanKind::kHashJoin;
      for (int kc : left_keys_combined) {
        join->left_keys.push_back(current.col_map[static_cast<size_t>(kc)]);
      }
      for (int kc : right_keys_combined) {
        join->right_keys.push_back(next.col_map[static_cast<size_t>(kc)]);
      }
      int left_arity = current.plan->output_arity;
      join->output_arity = left_arity + next.plan->output_arity;
      join->children.push_back(std::move(current.plan));
      join->children.push_back(std::move(next.plan));
      current.plan = std::move(join);
      // Merge column maps: next's outputs shift by left_arity.
      for (int c = 0; c < total_cols; ++c) {
        if (next.col_map[static_cast<size_t>(c)] >= 0) {
          current.col_map[static_cast<size_t>(c)] =
              left_arity + next.col_map[static_cast<size_t>(c)];
        }
      }
      // Distribution of the join output: the probe side's, unless the probe
      // was replicated — then matches live where the build rows live.
      if (current.replicated && !next.replicated) {
        current.replicated = false;
        current.hash_dist = next.hash_dist;
      }
      current.rows = std::max(current.rows, next.rows);
    } else {
      // No equi-join: cartesian nested loop; broadcast the inner side.
      if (!next.replicated) {
        next.plan = MakeMotion(MotionKind::kBroadcast, std::move(next.plan),
                               opts.next_motion_id());
        next.replicated = true;
      }
      auto join = std::make_unique<PlanNode>();
      join->kind = PlanKind::kNestLoop;
      join->prefetch_inner = true;
      int left_arity = current.plan->output_arity;
      join->output_arity = left_arity + next.plan->output_arity;
      join->children.push_back(std::move(current.plan));
      join->children.push_back(std::move(next.plan));
      current.plan = std::move(join);
      for (int c = 0; c < total_cols; ++c) {
        if (next.col_map[static_cast<size_t>(c)] >= 0) {
          current.col_map[static_cast<size_t>(c)] =
              left_arity + next.col_map[static_cast<size_t>(c)];
        }
      }
      current.rows *= next.rows;
    }
  }

  // Residual filters (multi-table, non-equi).
  if (!residual.empty()) {
    ExprPtr remapped = RemapExpr(AndAll(residual), current.col_map);
    if (!remapped) return Status::Internal("failed to remap residual predicate");
    auto filter = std::make_unique<PlanNode>();
    filter->kind = PlanKind::kFilter;
    filter->filter = remapped;
    filter->output_arity = current.plan->output_arity;
    filter->children.push_back(std::move(current.plan));
    current.plan = std::move(filter);
  }

  PlannedSelect out;
  out.gang = gang;

  if (query.HasAggregates()) {
    // Aggregation with group columns / agg arguments rebased onto the current
    // stream layout. Stored tables aggregate in two phases (partial on the
    // segments, final above a Gather); a system-view scan already runs on the
    // coordinator, so one single-phase HashAgg suffices and no motion exists.
    auto partial = std::make_unique<PlanNode>();
    partial->kind = PlanKind::kHashAgg;
    partial->agg_phase = any_virtual ? AggPhase::kSingle : AggPhase::kPartial;
    for (int gc : query.group_by) {
      int local = current.col_map[static_cast<size_t>(gc)];
      if (local < 0) return Status::Internal("group-by column lost in join");
      partial->group_cols.push_back(local);
    }
    int state_arity = 0;
    for (const SelectItem& item : query.items) {
      if (!item.is_agg) continue;
      AggSpec spec = item.agg;
      if (spec.arg) {
        spec.arg = RemapExpr(spec.arg, current.col_map);
        if (!spec.arg) return Status::Internal("agg argument lost in join");
      }
      state_arity += AggStateArity(spec.fn);
      partial->aggs.push_back(std::move(spec));
    }
    partial->output_arity = static_cast<int>(partial->group_cols.size()) + state_arity;
    std::vector<AggSpec> final_aggs = partial->aggs;
    size_t num_groups = partial->group_cols.size();

    PlanPtr agg_out;
    if (any_virtual) {
      partial->output_arity =
          static_cast<int>(num_groups + partial->aggs.size());
      partial->children.push_back(std::move(current.plan));
      agg_out = std::move(partial);
    } else {
      partial->children.push_back(std::move(current.plan));

      PlanPtr gathered = MakeMotion(MotionKind::kGather, std::move(partial),
                                    opts.next_motion_id());

      auto final_agg = std::make_unique<PlanNode>();
      final_agg->kind = PlanKind::kHashAgg;
      final_agg->agg_phase = AggPhase::kFinal;
      for (size_t i = 0; i < num_groups; ++i) {
        final_agg->group_cols.push_back(static_cast<int>(i));
      }
      final_agg->aggs = std::move(final_aggs);
      final_agg->output_arity =
          static_cast<int>(num_groups + final_agg->aggs.size());
      final_agg->children.push_back(std::move(gathered));
      agg_out = std::move(final_agg);
    }

    // Final projection: every item (visible + HAVING-hidden) in order.
    auto project = std::make_unique<PlanNode>();
    project->kind = PlanKind::kProject;
    int agg_index = 0;
    int num_visible = query.NumVisible();
    for (int item_index = 0; item_index < static_cast<int>(query.items.size());
         ++item_index) {
      const SelectItem& item = query.items[static_cast<size_t>(item_index)];
      if (item.is_agg) {
        project->exprs.push_back(
            Expr::Column(static_cast<int>(num_groups) + agg_index));
        ++agg_index;
      } else {
        // Must be one of the group-by columns.
        if (item.expr->kind != ExprKind::kColumn) {
          return Status::InvalidArgument(
              "non-aggregate select item must be a grouped column");
        }
        int pos = -1;
        for (size_t g = 0; g < query.group_by.size(); ++g) {
          if (query.group_by[g] == item.expr->column) {
            pos = static_cast<int>(g);
            break;
          }
        }
        if (pos < 0) {
          return Status::InvalidArgument("column " + item.name +
                                         " must appear in GROUP BY");
        }
        project->exprs.push_back(Expr::Column(pos));
      }
      if (item_index < num_visible) out.columns.push_back(item.name);
    }
    project->output_arity = static_cast<int>(project->exprs.size());
    project->children.push_back(std::move(agg_out));
    out.root = std::move(project);

    // HAVING filters over the item layout, then hidden items are chopped off.
    if (query.having != nullptr) {
      auto filter = std::make_unique<PlanNode>();
      filter->kind = PlanKind::kFilter;
      filter->filter = query.having;
      filter->output_arity = out.root->output_arity;
      filter->children.push_back(std::move(out.root));
      out.root = std::move(filter);
    }
    if (static_cast<int>(query.items.size()) > num_visible) {
      auto chop = std::make_unique<PlanNode>();
      chop->kind = PlanKind::kProject;
      for (int i = 0; i < num_visible; ++i) chop->exprs.push_back(Expr::Column(i));
      chop->output_arity = num_visible;
      chop->children.push_back(std::move(out.root));
      out.root = std::move(chop);
    }
  } else {
    // Plain select: project on segments, gather to coordinator.
    auto project = std::make_unique<PlanNode>();
    project->kind = PlanKind::kProject;
    for (const SelectItem& item : query.items) {
      ExprPtr remapped = RemapExpr(item.expr, current.col_map);
      if (!remapped) return Status::Internal("select item lost in join");
      project->exprs.push_back(remapped);
      out.columns.push_back(item.name);
    }
    project->output_arity = static_cast<int>(project->exprs.size());
    project->children.push_back(std::move(current.plan));
    if (any_virtual) {
      out.root = std::move(project);  // already on the coordinator; no Gather
    } else {
      out.root =
          MakeMotion(MotionKind::kGather, std::move(project), opts.next_motion_id());
    }
  }

  // DISTINCT: dedupe on the coordinator (a grouping with no aggregates).
  if (query.distinct) {
    auto dedup = std::make_unique<PlanNode>();
    dedup->kind = PlanKind::kHashAgg;
    dedup->agg_phase = AggPhase::kSingle;
    for (int i = 0; i < out.root->output_arity; ++i) dedup->group_cols.push_back(i);
    dedup->output_arity = out.root->output_arity;
    dedup->children.push_back(std::move(out.root));
    out.root = std::move(dedup);
  }

  // ORDER BY / LIMIT on the coordinator.
  if (!query.order_by.empty()) {
    auto sort = std::make_unique<PlanNode>();
    sort->kind = PlanKind::kSort;
    for (const OrderItem& o : query.order_by) {
      sort->sort_keys.push_back(SortKey{o.select_index, o.ascending});
    }
    sort->output_arity = out.root->output_arity;
    sort->children.push_back(std::move(out.root));
    out.root = std::move(sort);
  }
  if (query.limit >= 0) {
    auto limit = std::make_unique<PlanNode>();
    limit->kind = PlanKind::kLimit;
    limit->limit = query.limit;
    limit->output_arity = out.root->output_arity;
    limit->children.push_back(std::move(out.root));
    out.root = std::move(limit);
  }

  if (opts.vectorize) {
    std::set<TableId> vec_tables;
    for (const TableDef& def : query.tables) {
      // Non-partitioned AO-column tables scan as ColumnBatches. Partitioned
      // roots fan out to heterogeneous leaves, so they stay on the row path.
      if (def.storage == StorageKind::kAoColumn && !def.partitions.has_value()) {
        vec_tables.insert(def.id);
      }
      // With the delta store on, plain heap tables scan as delta-merged
      // batches (sealed delta groups + open columnar tail) — the fresh-data
      // vectorization path. Same partitioned-root exclusion.
      if (opts.delta_store && def.storage == StorageKind::kHeap &&
          !def.partitions.has_value() && !def.is_system_view) {
        vec_tables.insert(def.id);
      }
    }
    if (!vec_tables.empty()) MarkVectorizable(out.root.get(), vec_tables);
  }
  LabelScanStores(out.root.get(), query.tables, opts);
  return out;
}

}  // namespace gphtap
