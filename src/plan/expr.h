// Scalar expression trees evaluated over rows.
#ifndef GPHTAP_PLAN_EXPR_H_
#define GPHTAP_PLAN_EXPR_H_

#include <memory>
#include <string>

#include "catalog/datum.h"
#include "common/status.h"

namespace gphtap {

enum class ExprKind : uint8_t { kConst, kColumn, kBinary, kNot, kIsNull, kParam };

enum class BinOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* BinOpName(BinOp op);

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression node. Build with the factory helpers.
struct Expr {
  ExprKind kind = ExprKind::kConst;
  Datum value;      // kConst
  int column = -1;  // kColumn: index into the input row
  int param = -1;   // kParam: 0-based position into the EXECUTE argument list
  BinOp op = BinOp::kAdd;
  ExprPtr left;
  ExprPtr right;  // null for kNot / kIsNull

  static ExprPtr Const(Datum d);
  static ExprPtr Column(int index);
  static ExprPtr Param(int index);
  static ExprPtr Binary(BinOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Not(ExprPtr e);
  static ExprPtr IsNull(ExprPtr e);

  std::string ToString() const;
};

/// Evaluates `e` against `row`. Comparison/arithmetic with NULL yields NULL;
/// AND/OR use three-valued logic collapsed to (NULL == false) at the boolean
/// boundary, matching how WHERE treats unknown.
StatusOr<Datum> EvalExpr(const Expr& e, const Row& row);

/// Evaluates as a WHERE predicate: NULL and false are both "reject".
StatusOr<bool> EvalPredicate(const Expr& e, const Row& row);

/// One non-logical binary op (arithmetic or comparison) over already-evaluated
/// operands — the same semantics EvalExpr applies per row, exposed so the
/// vectorized kernels share a single implementation. AND/OR are not accepted
/// here (they need short-circuit treatment at the caller).
StatusOr<Datum> EvalBinaryOp(BinOp op, const Datum& l, const Datum& r);

/// SQL truth value of a datum: -1 = NULL/unknown, 0 = false, 1 = true.
int DatumTruth(const Datum& d);

/// If the predicate (conjunctively) pins `row[col] == <constant>`, returns that
/// constant — the key enabler of direct dispatch and index point lookups.
bool ExtractEqualityConst(const Expr& e, int col, Datum* out);

/// True if the expression reads any column (false = evaluable at plan time).
bool ExprReadsColumns(const Expr& e);

}  // namespace gphtap

#endif  // GPHTAP_PLAN_EXPR_H_
