// Query planning (Section 3.4): a fast heuristic planner for transactional
// queries ("MPP-aware PostgreSQL planner") and a cost-based mode for analytics
// ("Orca-style"): join ordering by cardinality and broadcast-vs-redistribute
// motion choice. Both produce sliced physical plans with Motion nodes, and both
// apply direct dispatch when a predicate pins the distribution key.
#ifndef GPHTAP_PLAN_PLANNER_H_
#define GPHTAP_PLAN_PLANNER_H_

#include <functional>
#include <utility>

#include "plan/plan.h"
#include "plan/select_query.h"

namespace gphtap {

struct PlannerOptions {
  int num_segments = 1;
  bool use_orca = false;          // cost-based join order + motion choice
  bool direct_dispatch = true;    // single-segment routing for pinned keys
  bool vectorize = false;         // mark batch-executable subtrees (src/vec/)
  // Delta store on: plain heap scans run as vectorized delta-merged scans
  // (src/delta/), so they join the vec_tables set and their scan lines are
  // labeled store=delta-merged. Only meaningful with `vectorize`.
  bool delta_store = false;
  /// Estimated stored rows per table (for the cost-based mode); may be null.
  std::function<uint64_t(TableId)> row_estimate;
  /// Allocates cluster-unique motion ids.
  std::function<int()> next_motion_id;
  /// Elastic expansion: fresh (dist_segments, rebalancing) for a table, read
  /// from the live catalog (cached TableDefs can be stale across a cutover).
  /// Null — the default — means every table spans num_segments and nothing is
  /// rebalancing. A returned dist_segments <= 0 means "unknown table": the
  /// planner falls back to the TableDef's own dist_segments field.
  std::function<std::pair<int, bool>(TableId)> table_dist;
};

struct PlannedSelect {
  PlanPtr root;                       // top slice runs on the coordinator
  std::vector<int> gang;              // segments executing the leaf slices
  std::vector<std::string> columns;   // output column labels
};

StatusOr<PlannedSelect> PlanSelect(const SelectQuery& query, const PlannerOptions& opts);

/// Returns the segment a fully pinned distribution key routes to, or -1.
/// Exposed for DML direct dispatch as well.
int DirectDispatchSegment(const TableDef& table, const std::vector<ExprPtr>& quals,
                          int first_col_offset, int num_segments);

}  // namespace gphtap

#endif  // GPHTAP_PLAN_PLANNER_H_
