// Simulated interconnect cost model. The cluster is in-process, so "sending a
// message" is a function call; this injects the per-message wire latency and
// counts messages by kind so protocol costs (dispatch, 2PC vs 1PC round trips —
// Figure 10) are measurable and tunable. With a FaultInjector attached, any
// message kind can additionally be dropped or delayed ("net.drop.<kind>" /
// "net.delay.<kind>" fault points); sends are always counted so the Figure-10
// accounting holds with or without faults, and drops are tallied separately.
#ifndef GPHTAP_NET_SIM_NET_H_
#define GPHTAP_NET_SIM_NET_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/metrics.h"

namespace gphtap {

enum class MsgKind : uint8_t {
  kDispatch = 0,       // plan/statement dispatch to a segment
  kResult = 1,         // result/ack back to coordinator
  kPrepare = 2,        // 2PC phase one
  kPrepareAck = 3,
  kCommit = 4,         // commit / commit-prepared / 1PC commit
  kCommitAck = 5,
  kAbort = 6,
  kAbortAck = 7,
  kGddCollect = 8,     // GDD daemon pulling wait-for graphs
  kTupleData = 9,      // motion traffic
  kFtsProbe = 10,      // FTS daemon liveness probe / response
  kNumKinds = 11,
};

inline const char* MsgKindName(MsgKind kind) {
  switch (kind) {
    case MsgKind::kDispatch: return "dispatch";
    case MsgKind::kResult: return "result";
    case MsgKind::kPrepare: return "prepare";
    case MsgKind::kPrepareAck: return "prepare_ack";
    case MsgKind::kCommit: return "commit";
    case MsgKind::kCommitAck: return "commit_ack";
    case MsgKind::kAbort: return "abort";
    case MsgKind::kAbortAck: return "abort_ack";
    case MsgKind::kGddCollect: return "gdd_collect";
    case MsgKind::kTupleData: return "tuple_data";
    case MsgKind::kFtsProbe: return "fts_probe";
    case MsgKind::kNumKinds: break;
  }
  return "?";
}

/// Fault-point name for dropping messages of `kind` ("net.drop.<kind>").
inline const std::string& NetDropPoint(MsgKind kind) {
  static const std::array<std::string, static_cast<size_t>(MsgKind::kNumKinds)>
      names = [] {
        std::array<std::string, static_cast<size_t>(MsgKind::kNumKinds)> out;
        for (size_t i = 0; i < out.size(); ++i) {
          out[i] = std::string("net.drop.") + MsgKindName(static_cast<MsgKind>(i));
        }
        return out;
      }();
  return names[static_cast<size_t>(kind)];
}

/// Fault-point name for delaying messages of `kind` ("net.delay.<kind>").
inline const std::string& NetDelayPoint(MsgKind kind) {
  static const std::array<std::string, static_cast<size_t>(MsgKind::kNumKinds)>
      names = [] {
        std::array<std::string, static_cast<size_t>(MsgKind::kNumKinds)> out;
        for (size_t i = 0; i < out.size(); ++i) {
          out[i] = std::string("net.delay.") + MsgKindName(static_cast<MsgKind>(i));
        }
        return out;
      }();
  return names[static_cast<size_t>(kind)];
}

class SimNet {
 public:
  explicit SimNet(int64_t latency_us = 0) : latency_us_(latency_us) {}

  /// Charges one message of `kind`: counts it and sleeps the wire latency.
  /// Returns false when an armed "net.drop.<kind>" fault swallowed the message
  /// (the send is still counted; the drop is tallied separately).
  bool Deliver(MsgKind kind) {
    counts_[static_cast<size_t>(kind)].fetch_add(1, std::memory_order_relaxed);
    if (m_sent_[static_cast<size_t>(kind)] != nullptr) {
      m_sent_[static_cast<size_t>(kind)]->Add(1);
    }
    if (faults_ != nullptr && faults_->AnyArmed()) {
      if (faults_->Evaluate(NetDropPoint(kind))) {
        drops_[static_cast<size_t>(kind)].fetch_add(1, std::memory_order_relaxed);
        if (m_dropped_[static_cast<size_t>(kind)] != nullptr) {
          m_dropped_[static_cast<size_t>(kind)]->Add(1);
        }
        return false;
      }
      int64_t extra = faults_->EvaluateDelay(NetDelayPoint(kind));
      if (extra > 0) {
        if (m_injected_delay_us_ != nullptr) {
          m_injected_delay_us_->Add(static_cast<uint64_t>(extra));
        }
        PreciseSleepUs(extra);
      }
    }
    PreciseSleepUs(latency_us_);
    return true;
  }

  /// Tallies tuple-stream payload (called by MotionExchange per row sent;
  /// independent of the per-64-row kTupleData message charge).
  void CountTupleRows(uint64_t rows, uint64_t bytes) {
    if (m_tuple_rows_ != nullptr) m_tuple_rows_->Add(rows);
    if (m_tuple_bytes_ != nullptr) m_tuple_bytes_->Add(bytes);
  }

  /// Tallies one ColumnBatch shipped over a motion (vectorized transport).
  void CountTupleBatch() {
    if (m_tuple_batches_ != nullptr) m_tuple_batches_->Add(1);
  }

  /// Attaches the cluster's fault injector; null disables drop/delay hooks.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Registers per-kind sent/dropped counters plus tuple-traffic and
  /// injected-delay totals; null is a no-op (standalone use).
  void set_metrics(MetricsRegistry* metrics) {
    if (metrics == nullptr) return;
    for (size_t i = 0; i < static_cast<size_t>(MsgKind::kNumKinds); ++i) {
      const char* name = MsgKindName(static_cast<MsgKind>(i));
      m_sent_[i] = metrics->counter(std::string("net.sent.") + name);
      m_dropped_[i] = metrics->counter(std::string("net.dropped.") + name);
    }
    m_injected_delay_us_ = metrics->counter("net.injected_delay_us");
    m_tuple_rows_ = metrics->counter("net.tuple_rows");
    m_tuple_bytes_ = metrics->counter("net.tuple_bytes");
    m_tuple_batches_ = metrics->counter("net.tuple_batches");
  }

  uint64_t count(MsgKind kind) const {
    return counts_[static_cast<size_t>(kind)].load(std::memory_order_relaxed);
  }

  uint64_t dropped(MsgKind kind) const {
    return drops_[static_cast<size_t>(kind)].load(std::memory_order_relaxed);
  }

  uint64_t TotalMessages() const {
    uint64_t total = 0;
    for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
    return total;
  }

  int64_t latency_us() const { return latency_us_; }

 private:
  const int64_t latency_us_;
  FaultInjector* faults_ = nullptr;
  std::array<std::atomic<uint64_t>, static_cast<size_t>(MsgKind::kNumKinds)> counts_{};
  std::array<std::atomic<uint64_t>, static_cast<size_t>(MsgKind::kNumKinds)> drops_{};
  std::array<Counter*, static_cast<size_t>(MsgKind::kNumKinds)> m_sent_{};
  std::array<Counter*, static_cast<size_t>(MsgKind::kNumKinds)> m_dropped_{};
  Counter* m_injected_delay_us_ = nullptr;
  Counter* m_tuple_rows_ = nullptr;
  Counter* m_tuple_bytes_ = nullptr;
  Counter* m_tuple_batches_ = nullptr;
};

}  // namespace gphtap

#endif  // GPHTAP_NET_SIM_NET_H_
