// Simulated interconnect cost model. The cluster is in-process, so "sending a
// message" is a function call; this injects the per-message wire latency and
// counts messages by kind so protocol costs (dispatch, 2PC vs 1PC round trips —
// Figure 10) are measurable and tunable.
#ifndef GPHTAP_NET_SIM_NET_H_
#define GPHTAP_NET_SIM_NET_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "common/clock.h"

namespace gphtap {

enum class MsgKind : uint8_t {
  kDispatch = 0,       // plan/statement dispatch to a segment
  kResult = 1,         // result/ack back to coordinator
  kPrepare = 2,        // 2PC phase one
  kPrepareAck = 3,
  kCommit = 4,         // commit / commit-prepared / 1PC commit
  kCommitAck = 5,
  kAbort = 6,
  kAbortAck = 7,
  kGddCollect = 8,     // GDD daemon pulling wait-for graphs
  kTupleData = 9,      // motion traffic
  kNumKinds = 10,
};

class SimNet {
 public:
  explicit SimNet(int64_t latency_us = 0) : latency_us_(latency_us) {}

  /// Charges one message of `kind`: counts it and sleeps the wire latency.
  void Deliver(MsgKind kind) {
    counts_[static_cast<size_t>(kind)].fetch_add(1, std::memory_order_relaxed);
    PreciseSleepUs(latency_us_);
  }

  uint64_t count(MsgKind kind) const {
    return counts_[static_cast<size_t>(kind)].load(std::memory_order_relaxed);
  }

  uint64_t TotalMessages() const {
    uint64_t total = 0;
    for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
    return total;
  }

  int64_t latency_us() const { return latency_us_; }

 private:
  const int64_t latency_us_;
  std::array<std::atomic<uint64_t>, static_cast<size_t>(MsgKind::kNumKinds)> counts_{};
};

}  // namespace gphtap

#endif  // GPHTAP_NET_SIM_NET_H_
