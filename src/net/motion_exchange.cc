#include "net/motion_exchange.h"

#include "common/clock.h"
#include "common/wait_event.h"

namespace gphtap {

MotionExchange::MotionExchange(int num_senders, int num_receivers, size_t buffer_rows,
                               SimNet* net)
    : num_senders_(num_senders), num_receivers_(num_receivers), net_(net) {
  queues_.reserve(static_cast<size_t>(num_receivers));
  eos_seen_.reserve(static_cast<size_t>(num_receivers));
  pending_rows_.reserve(static_cast<size_t>(num_receivers));
  for (int i = 0; i < num_receivers; ++i) {
    queues_.push_back(std::make_unique<BoundedQueue<Item>>(buffer_rows));
    eos_seen_.push_back(std::make_unique<std::atomic<int>>(0));
    pending_rows_.push_back(std::make_unique<std::deque<Row>>());
  }
}

void MotionExchange::ChargeRows(uint64_t n, uint64_t bytes) {
  if (n == 0) return;
  bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
  if (net_ == nullptr) return;
  uint64_t old = rows_sent_.fetch_add(n, std::memory_order_relaxed);
  // Messages = kRowsPerMessage boundaries in [old, old + n). For n == 1 this
  // reduces to the historical "charge when old % kRowsPerMessage == 0".
  uint64_t msgs = (old + n + kRowsPerMessage - 1) / kRowsPerMessage -
                  (old + kRowsPerMessage - 1) / kRowsPerMessage;
  for (uint64_t i = 0; i < msgs; ++i) net_->Deliver(MsgKind::kTupleData);
  net_->CountTupleRows(n, bytes);
}

bool MotionExchange::PushItem(int receiver, Item item) {
  auto& queue = *queues_[static_cast<size_t>(receiver)];
  if (queue.TryPush(std::move(item))) return true;
  // Receiver buffer full (or closed): this is a real interconnect stall. Park
  // in poll-sized chunks so a GDD kill, user cancel, or statement-deadline
  // expiry on the ambient owner unblocks the sender within one chunk even if
  // the receiver never drains.
  WaitEventScope wait(WaitEvent::kMotionSend);
  Stopwatch sw;
  bool ok = false;
  while (true) {
    auto res = queue.PushFor(item, kInterruptPollUs);
    if (res == BoundedQueue<Item>::PushResult::kPushed) {
      ok = true;
      break;
    }
    if (res == BoundedQueue<Item>::PushResult::kClosed) break;
    if (!CheckAmbientInterrupt().ok()) break;
  }
  send_wait_us_.fetch_add(sw.ElapsedMicros(), std::memory_order_relaxed);
  return ok;
}

std::optional<MotionExchange::Item> MotionExchange::PopItem(int receiver) {
  auto& queue = *queues_[static_cast<size_t>(receiver)];
  auto fast = queue.TryPop();
  if (fast.has_value()) return fast;
  // Empty buffer: the consumer stalls waiting for producers (or end of stream).
  // Same chunked wait as PushItem: a receiver parked on an idle sender wakes
  // on cancellation/timeout instead of waiting for the next row.
  WaitEventScope wait(WaitEvent::kMotionRecv);
  Stopwatch sw;
  std::optional<Item> item;
  while (true) {
    item = queue.PopFor(kInterruptPollUs);
    if (item.has_value() || queue.closed()) break;
    if (!CheckAmbientInterrupt().ok()) break;
  }
  recv_wait_us_.fetch_add(sw.ElapsedMicros(), std::memory_order_relaxed);
  return item;
}

bool MotionExchange::Send(int receiver, Row row) {
  if (aborted_.load(std::memory_order_acquire)) return false;
  uint64_t bytes = sizeof(Row);
  for (const Datum& d : row) bytes += d.FootprintBytes();
  ChargeRows(1, bytes);
  return PushItem(receiver, Item(std::move(row)));
}

bool MotionExchange::SendToAll(const Row& row) {
  for (int r = 0; r < num_receivers_; ++r) {
    if (!Send(r, row)) return false;
  }
  return true;
}

bool MotionExchange::SendBatch(int receiver, BatchPtr batch) {
  if (aborted_.load(std::memory_order_acquire)) return false;
  if (batch == nullptr || batch->ActiveRows() == 0) return true;  // nothing to ship
  ChargeRows(static_cast<uint64_t>(batch->ActiveRows()),
             static_cast<uint64_t>(batch->FootprintBytes()));
  if (net_ != nullptr) net_->CountTupleBatch();
  return PushItem(receiver, Item(std::move(batch)));
}

bool MotionExchange::SendBatchToAll(const BatchPtr& batch) {
  for (int r = 0; r < num_receivers_; ++r) {
    if (!SendBatch(r, batch)) return false;
  }
  return true;
}

void MotionExchange::CloseSender() {
  int count = closed_senders_.fetch_add(1) + 1;
  (void)count;
  for (int r = 0; r < num_receivers_; ++r) {
    queues_[static_cast<size_t>(r)]->Push(Item(Eos{}));
  }
}

std::optional<Row> MotionExchange::Recv(int receiver) {
  auto& eos = *eos_seen_[static_cast<size_t>(receiver)];
  auto& pending = *pending_rows_[static_cast<size_t>(receiver)];
  while (true) {
    if (!pending.empty()) {
      Row row = std::move(pending.front());
      pending.pop_front();
      return row;
    }
    if (aborted_.load(std::memory_order_acquire)) return std::nullopt;
    auto item = PopItem(receiver);
    if (!item.has_value()) return std::nullopt;  // queue closed (abort)
    if (std::holds_alternative<Eos>(*item)) {
      if (eos.fetch_add(1) + 1 >= num_senders_) return std::nullopt;
      continue;
    }
    if (std::holds_alternative<BatchPtr>(*item)) {
      const BatchPtr& b = std::get<BatchPtr>(*item);
      for (int32_t r : b->sel) pending.push_back(b->MaterializeRow(r));
      continue;
    }
    return std::get<Row>(std::move(*item));
  }
}

std::optional<ColumnBatch> MotionExchange::RecvBatch(int receiver) {
  auto& eos = *eos_seen_[static_cast<size_t>(receiver)];
  auto& pending = *pending_rows_[static_cast<size_t>(receiver)];
  if (!pending.empty()) {
    // Mixed usage on one receiver: drain previously exploded rows first.
    ColumnBatch b;
    b.Reset(pending.front().size(), pending.size());
    while (!pending.empty()) {
      b.AppendRow(std::move(pending.front()));
      pending.pop_front();
    }
    return b;
  }
  while (true) {
    if (aborted_.load(std::memory_order_acquire)) return std::nullopt;
    auto item = PopItem(receiver);
    if (!item.has_value()) return std::nullopt;  // queue closed (abort)
    if (std::holds_alternative<Eos>(*item)) {
      if (eos.fetch_add(1) + 1 >= num_senders_) return std::nullopt;
      continue;
    }
    if (std::holds_alternative<BatchPtr>(*item)) {
      BatchPtr b = std::get<BatchPtr>(std::move(*item));
      // Sole owner (gather/redistribute): move the batch out. Broadcast
      // receivers share ownership and must copy.
      if (b.use_count() == 1) return std::move(*b);
      return *b;
    }
    ColumnBatch b;
    Row row = std::get<Row>(std::move(*item));
    b.Reset(row.size(), 1);
    b.AppendRow(std::move(row));
    return b;
  }
}

void MotionExchange::Abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& q : queues_) q->Close();
}

size_t MotionExchange::BufferedRows(int receiver) const {
  return queues_[static_cast<size_t>(receiver)]->size() +
         pending_rows_[static_cast<size_t>(receiver)]->size();
}

}  // namespace gphtap
