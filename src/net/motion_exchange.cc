#include "net/motion_exchange.h"

namespace gphtap {

MotionExchange::MotionExchange(int num_senders, int num_receivers, size_t buffer_rows,
                               SimNet* net)
    : num_senders_(num_senders), num_receivers_(num_receivers), net_(net) {
  queues_.reserve(static_cast<size_t>(num_receivers));
  eos_seen_.reserve(static_cast<size_t>(num_receivers));
  for (int i = 0; i < num_receivers; ++i) {
    queues_.push_back(std::make_unique<BoundedQueue<Item>>(buffer_rows));
    eos_seen_.push_back(std::make_unique<std::atomic<int>>(0));
  }
}

bool MotionExchange::Send(int receiver, Row row) {
  if (aborted_.load(std::memory_order_acquire)) return false;
  if (net_ != nullptr) {
    if (rows_sent_.fetch_add(1, std::memory_order_relaxed) % kRowsPerMessage == 0) {
      net_->Deliver(MsgKind::kTupleData);
    }
    uint64_t bytes = sizeof(Row);
    for (const Datum& d : row) bytes += d.FootprintBytes();
    net_->CountTupleRows(1, bytes);
  }
  return queues_[static_cast<size_t>(receiver)]->Push(Item(std::move(row)));
}

bool MotionExchange::SendToAll(const Row& row) {
  for (int r = 0; r < num_receivers_; ++r) {
    if (!Send(r, row)) return false;
  }
  return true;
}

void MotionExchange::CloseSender() {
  int count = closed_senders_.fetch_add(1) + 1;
  (void)count;
  for (int r = 0; r < num_receivers_; ++r) {
    queues_[static_cast<size_t>(r)]->Push(Item(Eos{}));
  }
}

std::optional<Row> MotionExchange::Recv(int receiver) {
  auto& queue = *queues_[static_cast<size_t>(receiver)];
  auto& eos = *eos_seen_[static_cast<size_t>(receiver)];
  while (true) {
    if (aborted_.load(std::memory_order_acquire)) return std::nullopt;
    auto item = queue.Pop();
    if (!item.has_value()) return std::nullopt;  // queue closed (abort)
    if (std::holds_alternative<Eos>(*item)) {
      if (eos.fetch_add(1) + 1 >= num_senders_) return std::nullopt;
      continue;
    }
    return std::get<Row>(std::move(*item));
  }
}

void MotionExchange::Abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& q : queues_) q->Close();
}

size_t MotionExchange::BufferedRows(int receiver) const {
  return queues_[static_cast<size_t>(receiver)]->size();
}

}  // namespace gphtap
