// Tuple transport between plan slices (the Motion node's wire, Section 3.2).
// Bounded per-receiver buffers give the same flow-control semantics as the real
// UDP-with-ACK interconnect: a sender blocks when the receiver's buffer is full,
// which is exactly what makes the Appendix-B network deadlock possible when a
// join consumes its inputs in the wrong order.
//
// Two payload shapes travel the same queues: single Rows (the row engine) and
// shared ColumnBatch chunks (the vectorized engine). Either side of a motion
// may be row- or batch-oriented — Recv explodes batch items into rows, and
// RecvBatch wraps stray rows into one-row batches — so mixed-engine plans
// compose without renegotiation.
#ifndef GPHTAP_NET_MOTION_EXCHANGE_H_
#define GPHTAP_NET_MOTION_EXCHANGE_H_

#include <atomic>
#include <deque>
#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "catalog/datum.h"
#include "common/bounded_queue.h"
#include "net/sim_net.h"
#include "vec/column_batch.h"

namespace gphtap {

/// Batches ship by shared_ptr so Broadcast enqueues one copy for N receivers.
using BatchPtr = std::shared_ptr<ColumnBatch>;

/// One motion's data plane: `num_senders` producers feeding `num_receivers`
/// consumers, one bounded queue per receiver. Senders are thread-safe against
/// each other; each receiver index must be drained by a single consumer
/// thread (the executor's contract — one slice instance per gang member).
class MotionExchange {
 public:
  /// `net` (optional) charges kTupleData once per kRowsPerMessage rows.
  MotionExchange(int num_senders, int num_receivers, size_t buffer_rows,
                 SimNet* net = nullptr);

  static constexpr uint64_t kRowsPerMessage = 64;

  /// Sends a row to one receiver. Blocks while that receiver's buffer is full.
  /// Returns false if the exchange was aborted (query cancelled).
  bool Send(int receiver, Row row);

  /// Broadcast to every receiver.
  bool SendToAll(const Row& row);

  /// Sends one batch. SimNet is charged by the batch's ACTUAL live row count
  /// (ceil over kRowsPerMessage message windows), not one fixed window per
  /// call — a 256-row batch costs 4 kTupleData messages, a 3-row batch 1.
  bool SendBatch(int receiver, BatchPtr batch);

  /// Broadcast one batch; receivers share the same immutable ColumnBatch.
  bool SendBatchToAll(const BatchPtr& batch);

  /// Declares one sender finished; when all senders finish, receivers drain and
  /// then see end-of-stream.
  void CloseSender();

  /// Receives the next row for `receiver`; nullopt = end of stream (all senders
  /// closed and buffer drained) or abort. Batch items are exploded into rows.
  std::optional<Row> Recv(int receiver);

  /// Receives the next batch for `receiver`; row items arrive as one-row
  /// batches. nullopt = end of stream or abort.
  std::optional<ColumnBatch> RecvBatch(int receiver);

  /// Unblocks everyone and poisons the exchange (error/cancel path).
  void Abort();

  int num_senders() const { return num_senders_; }
  int num_receivers() const { return num_receivers_; }
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Items currently buffered for `receiver` plus locally pending exploded
  /// rows (observability/tests). A buffered batch counts as one item.
  size_t BufferedRows(int receiver) const;

  /// Cumulative blocked time across all senders / receivers of this exchange
  /// (EXPLAIN ANALYZE reports these separately from operator wall time).
  int64_t send_wait_us() const { return send_wait_us_.load(std::memory_order_relaxed); }
  int64_t recv_wait_us() const { return recv_wait_us_.load(std::memory_order_relaxed); }

  /// Cumulative payload bytes sent through this exchange (the same byte tally
  /// SimNet is charged with); per-statement network attribution sums this
  /// across the plan's exchanges after the gang joins.
  uint64_t bytes_sent() const { return bytes_sent_.load(std::memory_order_relaxed); }

 private:
  struct Eos {};
  using Item = std::variant<Row, BatchPtr, Eos>;

  /// Push with wait attribution: non-blocking fast path first, then a blocking
  /// Push under a kMotionSend wait scope so only real stalls are counted.
  bool PushItem(int receiver, Item item);
  /// Pop with wait attribution (kMotionRecv), same fast-path structure.
  std::optional<Item> PopItem(int receiver);

  // Charges SimNet for `n` payload rows: kTupleData once per kRowsPerMessage
  // boundary crossed by [rows_sent_, rows_sent_ + n), plus the byte tally.
  // The single accounting path for rows AND batches.
  void ChargeRows(uint64_t n, uint64_t bytes);

  const int num_senders_;
  const int num_receivers_;
  SimNet* const net_;
  std::vector<std::unique_ptr<BoundedQueue<Item>>> queues_;  // one per receiver
  std::vector<std::unique_ptr<std::atomic<int>>> eos_seen_;  // per receiver
  // Rows exploded from a batch item, awaiting Recv. Only the receiver's own
  // consumer thread touches its deque, so no lock is needed.
  std::vector<std::unique_ptr<std::deque<Row>>> pending_rows_;
  std::atomic<int> closed_senders_{0};
  std::atomic<bool> aborted_{false};
  std::atomic<uint64_t> rows_sent_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<int64_t> send_wait_us_{0};
  std::atomic<int64_t> recv_wait_us_{0};
};

}  // namespace gphtap

#endif  // GPHTAP_NET_MOTION_EXCHANGE_H_
