// Tuple transport between plan slices (the Motion node's wire, Section 3.2).
// Bounded per-receiver buffers give the same flow-control semantics as the real
// UDP-with-ACK interconnect: a sender blocks when the receiver's buffer is full,
// which is exactly what makes the Appendix-B network deadlock possible when a
// join consumes its inputs in the wrong order.
#ifndef GPHTAP_NET_MOTION_EXCHANGE_H_
#define GPHTAP_NET_MOTION_EXCHANGE_H_

#include <atomic>
#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "catalog/datum.h"
#include "common/bounded_queue.h"
#include "net/sim_net.h"

namespace gphtap {

/// One motion's data plane: `num_senders` producers feeding `num_receivers`
/// consumers, one bounded queue per receiver. Thread-safe.
class MotionExchange {
 public:
  /// `net` (optional) charges kTupleData once per kRowsPerMessage rows.
  MotionExchange(int num_senders, int num_receivers, size_t buffer_rows,
                 SimNet* net = nullptr);

  static constexpr uint64_t kRowsPerMessage = 64;

  /// Sends a row to one receiver. Blocks while that receiver's buffer is full.
  /// Returns false if the exchange was aborted (query cancelled).
  bool Send(int receiver, Row row);

  /// Broadcast to every receiver.
  bool SendToAll(const Row& row);

  /// Declares one sender finished; when all senders finish, receivers drain and
  /// then see end-of-stream.
  void CloseSender();

  /// Receives the next row for `receiver`; nullopt = end of stream (all senders
  /// closed and buffer drained) or abort.
  std::optional<Row> Recv(int receiver);

  /// Unblocks everyone and poisons the exchange (error/cancel path).
  void Abort();

  int num_senders() const { return num_senders_; }
  int num_receivers() const { return num_receivers_; }
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// Rows currently buffered for `receiver` (observability/tests).
  size_t BufferedRows(int receiver) const;

 private:
  struct Eos {};
  using Item = std::variant<Row, Eos>;

  const int num_senders_;
  const int num_receivers_;
  SimNet* const net_;
  std::vector<std::unique_ptr<BoundedQueue<Item>>> queues_;  // one per receiver
  std::vector<std::unique_ptr<std::atomic<int>>> eos_seen_;  // per receiver
  std::atomic<int> closed_senders_{0};
  std::atomic<bool> aborted_{false};
  std::atomic<uint64_t> rows_sent_{0};
};

}  // namespace gphtap

#endif  // GPHTAP_NET_MOTION_EXCHANGE_H_
