#include "lock/lock_defs.h"

namespace gphtap {

// Conflict masks transcribed from Table 1 of the paper. Bit i (1-based lock level)
// set means "conflicts with level i".
//
//   AccessShare(1)           conflicts with {8}
//   RowShare(2)              conflicts with {7,8}
//   RowExclusive(3)          conflicts with {5,6,7,8}
//   ShareUpdateExclusive(4)  conflicts with {4,5,6,7,8}
//   Share(5)                 conflicts with {3,4,6,7,8}
//   ShareRowExclusive(6)     conflicts with {3,4,5,6,7,8}
//   Exclusive(7)             conflicts with {2,3,4,5,6,7,8}
//   AccessExclusive(8)       conflicts with {1,2,3,4,5,6,7,8}
namespace {
constexpr uint16_t Bit(int level) { return static_cast<uint16_t>(1u << level); }

constexpr uint16_t kConflictMask[9] = {
    /*None*/ 0,
    /*AccessShare*/ Bit(8),
    /*RowShare*/ Bit(7) | Bit(8),
    /*RowExclusive*/ Bit(5) | Bit(6) | Bit(7) | Bit(8),
    /*ShareUpdateExclusive*/ Bit(4) | Bit(5) | Bit(6) | Bit(7) | Bit(8),
    /*Share*/ Bit(3) | Bit(4) | Bit(6) | Bit(7) | Bit(8),
    /*ShareRowExclusive*/ Bit(3) | Bit(4) | Bit(5) | Bit(6) | Bit(7) | Bit(8),
    /*Exclusive*/ Bit(2) | Bit(3) | Bit(4) | Bit(5) | Bit(6) | Bit(7) | Bit(8),
    /*AccessExclusive*/
    Bit(1) | Bit(2) | Bit(3) | Bit(4) | Bit(5) | Bit(6) | Bit(7) | Bit(8),
};
}  // namespace

uint16_t LockConflictMask(LockMode mode) { return kConflictMask[static_cast<int>(mode)]; }

bool LockConflicts(LockMode held, LockMode requested) {
  return (kConflictMask[static_cast<int>(held)] &
          Bit(static_cast<int>(requested))) != 0;
}

const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kNone:
      return "None";
    case LockMode::kAccessShare:
      return "AccessShareLock";
    case LockMode::kRowShare:
      return "RowShareLock";
    case LockMode::kRowExclusive:
      return "RowExclusiveLock";
    case LockMode::kShareUpdateExclusive:
      return "ShareUpdateExclusiveLock";
    case LockMode::kShare:
      return "ShareLock";
    case LockMode::kShareRowExclusive:
      return "ShareRowExclusiveLock";
    case LockMode::kExclusive:
      return "ExclusiveLock";
    case LockMode::kAccessExclusive:
      return "AccessExclusiveLock";
  }
  return "?";
}

const char* LockObjectTypeName(LockObjectType t) {
  switch (t) {
    case LockObjectType::kRelation:
      return "relation";
    case LockObjectType::kTuple:
      return "tuple";
    case LockObjectType::kTransaction:
      return "transaction";
  }
  return "?";
}

std::string LockTag::ToString() const {
  std::string s = LockObjectTypeName(type);
  s += "(";
  if (type == LockObjectType::kTransaction) {
    s += "xid=" + std::to_string(obj);
  } else {
    s += "rel=" + std::to_string(rel);
    if (type == LockObjectType::kTuple) s += ",tup=" + std::to_string(obj);
  }
  s += ")";
  return s;
}

}  // namespace gphtap
