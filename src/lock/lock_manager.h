// Per-node object lock table with blocking FIFO wait queues, PostgreSQL-style
// grant rules, cancellation (used by the GDD to kill victims), local deadlock
// detection after a timeout, and wait-for graph export.
#ifndef GPHTAP_LOCK_LOCK_MANAGER_H_
#define GPHTAP_LOCK_LOCK_MANAGER_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "lock/lock_defs.h"
#include "lock/lock_owner.h"
#include "lock/wait_graph.h"

namespace gphtap {

/// One lock table, as owned by a segment or by the coordinator.
///
/// Thread-safe. All waiting is done on condition variables inside Acquire(); a
/// waiting transaction is woken either by a grant, by LockOwner cancellation
/// (GDD victim / user cancel), or periodically to re-check both.
class LockManager {
 public:
  struct Options {
    /// After this long waiting, run PostgreSQL-style *local* deadlock detection
    /// once. Local cycles abort the checker; global cycles are left for the GDD.
    int64_t local_deadlock_timeout_us = 100'000;
  };

  struct Stats {
    uint64_t acquires = 0;       // total Acquire calls
    uint64_t waits = 0;          // Acquire calls that blocked
    uint64_t local_deadlocks = 0;
    uint64_t timeouts = 0;       // waits abandoned on lock/statement timeout
    int64_t total_wait_us = 0;   // cumulative blocked time
  };

  explicit LockManager(int node_id);
  LockManager(int node_id, Options options);
  ~LockManager();

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Blocks until granted. Returns a non-OK status if the owner was cancelled
  /// (kDeadlockDetected / kAborted) or a local deadlock was found.
  /// Re-entrant: an owner already holding the tag (any mode) may upgrade and
  /// jumps the wait queue, as in PostgreSQL.
  Status Acquire(const std::shared_ptr<LockOwner>& owner, const LockTag& tag,
                 LockMode mode);

  /// Non-blocking variant; returns false instead of waiting.
  bool TryAcquire(const std::shared_ptr<LockOwner>& owner, const LockTag& tag,
                  LockMode mode);

  /// Releases one reference of (tag, mode) held by the owner. No-op if not held.
  void Release(const LockOwner& owner, const LockTag& tag, LockMode mode);

  /// Releases everything the owner holds on this node (transaction end).
  void ReleaseAll(const LockOwner& owner);

  /// True if the owner currently holds the tag in a mode >= `mode` semantics
  /// (exact-mode check; used by tests).
  bool Holds(const LockOwner& owner, const LockTag& tag, LockMode mode) const;

  /// Snapshot of all wait-for edges on this node, labeled solid/dotted.
  LocalWaitGraph CollectWaitGraph() const;

  /// One granted or queued lock entry (gp_locks system view).
  struct LockInfo {
    int node = -1;
    LockTag tag;
    LockMode mode = LockMode::kNone;
    uint64_t gxid = 0;
    bool granted = false;
  };
  /// Every grant (one entry per held mode) and every queued waiter.
  std::vector<LockInfo> SnapshotLocks() const;

  /// Wakes any thread of `gxid` waiting in this lock table so that it observes
  /// its owner's cancel flag. Returns true if such a waiter existed.
  bool WakeWaitersOf(uint64_t gxid);

  /// True if `gxid` is currently parked in this lock table.
  bool IsWaiting(uint64_t gxid) const;

  /// Segment crash: cancels every ungranted waiter with `reason` and wakes it so
  /// that its Acquire() returns promptly, then poisons the table so acquisitions
  /// that race in after the crash fail with `reason` instead of waiting (waits
  /// on a dead node could never be granted and would block recovery). Granted
  /// locks are left alone (they are discarded wholesale by Reset() during
  /// recovery). Returns waiters cancelled.
  size_t CancelAllWaiters(const Status& reason);

  /// Crash recovery: discards the entire lock table. Only safe once every
  /// session thread has drained out of this node (waiters must have been
  /// cancelled via CancelAllWaiters and returned).
  void Reset();

  Stats stats() const;
  int node_id() const { return node_id_; }

  /// Registers cluster-wide lock metrics (lock.acquires / lock.waits /
  /// lock.wait_us / lock.local_deadlocks counters, lock.queue_depth gauge).
  /// All segments share the same names; null is a no-op.
  void set_metrics(MetricsRegistry* metrics);

 private:
  struct Waiter {
    std::shared_ptr<LockOwner> owner;
    LockMode mode = LockMode::kNone;
    bool granted = false;
  };

  struct LockState {
    // gxid -> per-mode grant counts (index by lock level 1..8).
    std::unordered_map<uint64_t, std::array<uint32_t, 9>> granted;
    std::deque<std::shared_ptr<Waiter>> queue;
    std::condition_variable cv;
  };

  // All private helpers require mu_ held.
  bool ConflictsWithGranted(const LockState& st, uint64_t gxid, LockMode mode) const;
  uint16_t QueueWaitMask(const LockState& st) const;
  bool CanGrantNow(const LockState& st, uint64_t gxid, LockMode mode) const;
  void GrantTo(LockState& st, const std::shared_ptr<LockOwner>& owner, const LockTag& tag,
               LockMode mode);
  void ProcessQueue(LockState& st, const LockTag& tag);
  void RemoveWaiter(LockState& st, const Waiter* w);
  void EraseLockIfIdle(const LockTag& tag);
  void AppendEdgesLocked(std::vector<WaitEdge>* edges) const;
  bool LocalCycleFrom(uint64_t start) const;

  const int node_id_;
  const Options options_;

  mutable std::mutex mu_;
  std::unordered_map<LockTag, LockState, LockTagHash> locks_;
  // gxid -> tags it waits on (a txn has one waiting thread per slice; normally 1).
  std::unordered_map<uint64_t, std::vector<LockTag>> waiting_;
  // gxid -> owner handle + list of held (tag) entries for ReleaseAll.
  struct HolderInfo {
    std::shared_ptr<LockOwner> owner;
    std::vector<LockTag> tags;  // may contain duplicates (ref-counted grants)
  };
  std::unordered_map<uint64_t, HolderInfo> holders_;
  Status poison_ = Status::OK();  // non-OK between CancelAllWaiters and Reset
  Stats stats_;
  Counter* m_acquires_ = nullptr;
  Counter* m_waits_ = nullptr;
  Counter* m_wait_us_ = nullptr;
  Counter* m_local_deadlocks_ = nullptr;
  Counter* m_lock_timeouts_ = nullptr;
  Gauge* m_queue_depth_ = nullptr;
};

}  // namespace gphtap

#endif  // GPHTAP_LOCK_LOCK_MANAGER_H_
