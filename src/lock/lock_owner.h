// The lock-owner handle shared between a transaction and every lock manager it
// touches. Carries the cancellation flag the GDD daemon uses to kill victims.
#ifndef GPHTAP_LOCK_LOCK_OWNER_H_
#define GPHTAP_LOCK_LOCK_OWNER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace gphtap {

/// One per distributed transaction. Lock managers park waiting threads against
/// this handle; Cancel() wakes them with an abort status.
class LockOwner {
 public:
  explicit LockOwner(uint64_t gxid, int64_t start_time_us = 0)
      : gxid_(gxid), start_time_us_(start_time_us) {}

  LockOwner(const LockOwner&) = delete;
  LockOwner& operator=(const LockOwner&) = delete;

  uint64_t gxid() const { return gxid_; }
  int64_t start_time_us() const { return start_time_us_; }

  /// Marks the transaction for abort. Idempotent; first reason wins.
  void Cancel(Status reason) {
    std::lock_guard<std::mutex> g(mu_);
    if (!cancelled_.load(std::memory_order_relaxed)) {
      reason_ = std::move(reason);
      cancelled_.store(true, std::memory_order_release);
    }
  }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  Status cancel_reason() const {
    std::lock_guard<std::mutex> g(mu_);
    return reason_;
  }

  /// Absolute statement deadline (MonotonicMicros clock); 0 = none. Every
  /// blocking point (lock waits, motion, admission, fsync, Tick) bounds its
  /// wait by this and fails with kTimedOut once it passes.
  void set_deadline_us(int64_t us) { deadline_us_.store(us, std::memory_order_release); }
  int64_t deadline_us() const { return deadline_us_.load(std::memory_order_acquire); }

  /// Relative per-wait lock timeout (lock_timeout GUC); 0 = none. Applies to
  /// each individual lock acquisition, not the whole statement.
  void set_lock_timeout_us(int64_t us) {
    lock_timeout_us_.store(us, std::memory_order_release);
  }
  int64_t lock_timeout_us() const {
    return lock_timeout_us_.load(std::memory_order_acquire);
  }

  bool DeadlineExpired(int64_t now_us) const {
    int64_t d = deadline_us();
    return d != 0 && now_us >= d;
  }

 private:
  const uint64_t gxid_;
  const int64_t start_time_us_;
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_us_{0};
  std::atomic<int64_t> lock_timeout_us_{0};
  mutable std::mutex mu_;
  Status reason_;
};

}  // namespace gphtap

#endif  // GPHTAP_LOCK_LOCK_OWNER_H_
