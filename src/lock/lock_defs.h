// Lock modes, the conflict matrix (Table 1 of the paper), and lock tags.
#ifndef GPHTAP_LOCK_LOCK_DEFS_H_
#define GPHTAP_LOCK_LOCK_DEFS_H_

#include <cstdint>
#include <functional>
#include <string>

namespace gphtap {

/// The eight PostgreSQL/Greenplum object-lock modes, ordered by level (Table 1).
enum class LockMode : uint8_t {
  kNone = 0,
  kAccessShare = 1,           // pure SELECT
  kRowShare = 2,              // SELECT FOR UPDATE
  kRowExclusive = 3,          // INSERT / (UPDATE & DELETE with GDD enabled)
  kShareUpdateExclusive = 4,  // VACUUM (not full)
  kShare = 5,                 // CREATE INDEX
  kShareRowExclusive = 6,     // collation create
  kExclusive = 7,             // (UPDATE & DELETE without GDD, pre-GPDB6 behaviour)
  kAccessExclusive = 8,       // ALTER TABLE
};

/// True when holding `held` blocks a request for `requested` (symmetric).
bool LockConflicts(LockMode held, LockMode requested);

/// Bitmask (bit i set = conflicts with level i) per Table 1.
uint16_t LockConflictMask(LockMode mode);

const char* LockModeName(LockMode mode);

/// What kind of object a lock protects. Determines the wait-for edge label:
/// waits on tuple locks are *dotted* (the holder can release mid-transaction);
/// waits on relation and transaction locks are *solid* (released at txn end).
enum class LockObjectType : uint8_t { kRelation = 0, kTuple = 1, kTransaction = 2 };

const char* LockObjectTypeName(LockObjectType t);

/// Identifies one lockable object within a node's lock table.
struct LockTag {
  LockObjectType type = LockObjectType::kRelation;
  uint32_t rel = 0;  // table id (relation and tuple locks)
  uint64_t obj = 0;  // tuple id, or transaction id for transaction locks

  static LockTag Relation(uint32_t table_id) {
    return {LockObjectType::kRelation, table_id, 0};
  }
  static LockTag Tuple(uint32_t table_id, uint64_t tuple_id) {
    return {LockObjectType::kTuple, table_id, tuple_id};
  }
  static LockTag Transaction(uint64_t txn_id) {
    return {LockObjectType::kTransaction, 0, txn_id};
  }

  bool operator==(const LockTag& o) const {
    return type == o.type && rel == o.rel && obj == o.obj;
  }

  std::string ToString() const;
};

struct LockTagHash {
  size_t operator()(const LockTag& t) const {
    uint64_t h = static_cast<uint64_t>(t.type) * 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<uint64_t>(t.rel) + 0x517cc1b727220a95ULL) * 0xff51afd7ed558ccdULL;
    h ^= (t.obj + 0x2545f4914f6cdd1dULL) * 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }
};

}  // namespace gphtap

#endif  // GPHTAP_LOCK_LOCK_DEFS_H_
