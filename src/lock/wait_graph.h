// Wait-for graph types exchanged between segment lock managers and the GDD.
#ifndef GPHTAP_LOCK_WAIT_GRAPH_H_
#define GPHTAP_LOCK_WAIT_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gphtap {

/// One waiting relationship: `waiter` cannot proceed until `holder` releases a lock.
/// `dotted` edges (tuple-lock waits) vanish when the holder merely stops waiting on
/// this segment; solid edges vanish only when the holder's transaction ends
/// (Section 4.3 of the paper).
struct WaitEdge {
  uint64_t waiter = 0;  // distributed transaction id
  uint64_t holder = 0;  // distributed transaction id
  bool dotted = false;

  bool operator==(const WaitEdge& o) const {
    return waiter == o.waiter && holder == o.holder && dotted == o.dotted;
  }
};

/// All wait edges observed on one node at collection time.
struct LocalWaitGraph {
  int node_id = -1;  // -1 = coordinator, 0..N-1 = segments
  std::vector<WaitEdge> edges;
};

std::string WaitEdgeToString(const WaitEdge& e);

}  // namespace gphtap

#endif  // GPHTAP_LOCK_WAIT_GRAPH_H_
