#include "lock/lock_manager.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"
#include "common/wait_event.h"

namespace gphtap {

LockManager::LockManager(int node_id) : LockManager(node_id, Options()) {}

LockManager::LockManager(int node_id, Options options)
    : node_id_(node_id), options_(options) {}

LockManager::~LockManager() = default;

bool LockManager::ConflictsWithGranted(const LockState& st, uint64_t gxid,
                                       LockMode mode) const {
  for (const auto& [holder, counts] : st.granted) {
    if (holder == gxid) continue;
    for (int m = 1; m <= 8; ++m) {
      if (counts[static_cast<size_t>(m)] > 0 &&
          LockConflicts(static_cast<LockMode>(m), mode)) {
        return true;
      }
    }
  }
  return false;
}

uint16_t LockManager::QueueWaitMask(const LockState& st) const {
  uint16_t mask = 0;
  for (const auto& w : st.queue) {
    if (!w->granted) mask |= static_cast<uint16_t>(1u << static_cast<int>(w->mode));
  }
  return mask;
}

bool LockManager::CanGrantNow(const LockState& st, uint64_t gxid, LockMode mode) const {
  if (ConflictsWithGranted(st, gxid, mode)) return false;
  // Holding the lock already (in any mode) allows jumping the queue — this is
  // the PostgreSQL lock-upgrade fast path and avoids trivial self-starvation.
  auto it = st.granted.find(gxid);
  bool holds_already = it != st.granted.end();
  if (holds_already) return true;
  // Do not jump ahead of waiters we conflict with (fairness / no starvation).
  return (LockConflictMask(mode) & QueueWaitMask(st)) == 0;
}

void LockManager::GrantTo(LockState& st, const std::shared_ptr<LockOwner>& owner,
                          const LockTag& tag, LockMode mode) {
  auto& counts = st.granted[owner->gxid()];
  ++counts[static_cast<size_t>(mode)];
  auto& info = holders_[owner->gxid()];
  if (!info.owner) info.owner = owner;
  info.tags.push_back(tag);
}

void LockManager::ProcessQueue(LockState& st, const LockTag& tag) {
  uint16_t ahead_mask = 0;
  bool granted_any = false;
  for (auto& w : st.queue) {
    if (w->granted) continue;
    uint16_t mode_bit = static_cast<uint16_t>(1u << static_cast<int>(w->mode));
    bool blocked_by_ahead = (LockConflictMask(w->mode) & ahead_mask) != 0;
    if (!blocked_by_ahead && !ConflictsWithGranted(st, w->owner->gxid(), w->mode)) {
      w->granted = true;
      GrantTo(st, w->owner, tag, w->mode);
      granted_any = true;
    } else {
      ahead_mask |= mode_bit;
    }
  }
  if (granted_any) st.cv.notify_all();
}

void LockManager::RemoveWaiter(LockState& st, const Waiter* w) {
  for (auto it = st.queue.begin(); it != st.queue.end(); ++it) {
    if (it->get() == w) {
      st.queue.erase(it);
      return;
    }
  }
}

void LockManager::EraseLockIfIdle(const LockTag& tag) {
  auto it = locks_.find(tag);
  if (it != locks_.end() && it->second.granted.empty() && it->second.queue.empty()) {
    locks_.erase(it);
  }
}

Status LockManager::Acquire(const std::shared_ptr<LockOwner>& owner, const LockTag& tag,
                            LockMode mode) {
  std::unique_lock<std::mutex> lk(mu_);
  ++stats_.acquires;
  if (m_acquires_ != nullptr) m_acquires_->Add(1);
  if (owner->cancelled()) return owner->cancel_reason();
  if (!poison_.ok()) return poison_;
  LockState& st = locks_[tag];
  if (CanGrantNow(st, owner->gxid(), mode)) {
    GrantTo(st, owner, tag, mode);
    return Status::OK();
  }

  ++stats_.waits;
  if (m_waits_ != nullptr) m_waits_->Add(1);
  if (m_queue_depth_ != nullptr) m_queue_depth_->Add(1);
  auto w = std::make_shared<Waiter>();
  w->owner = owner;
  w->mode = mode;
  st.queue.push_back(w);
  waiting_[owner->gxid()].push_back(tag);

  WaitEvent wait_event = WaitEvent::kLockRelation;
  if (tag.type == LockObjectType::kTuple) wait_event = WaitEvent::kLockTuple;
  if (tag.type == LockObjectType::kTransaction) wait_event = WaitEvent::kLockTransaction;
  WaitEventScope wait_scope(wait_event, node_id_);

  Stopwatch sw;
  bool checked_local = false;
  // The statement deadline (absolute) and the per-wait lock_timeout (relative
  // to this Acquire) combine into one effective deadline; the earlier fires.
  const int64_t stmt_deadline = owner->deadline_us();
  const int64_t lock_timeout = owner->lock_timeout_us();
  const int64_t lock_deadline =
      lock_timeout > 0 ? MonotonicMicros() + lock_timeout : 0;
  int64_t effective_deadline = stmt_deadline;
  if (lock_deadline != 0 &&
      (effective_deadline == 0 || lock_deadline < effective_deadline)) {
    effective_deadline = lock_deadline;
  }
  Status result = Status::OK();
  while (!w->granted) {
    if (owner->cancelled()) {
      result = owner->cancel_reason();
      break;
    }
    const int64_t now = MonotonicMicros();
    if (effective_deadline != 0 && now >= effective_deadline) {
      ++stats_.timeouts;
      if (m_lock_timeouts_ != nullptr) m_lock_timeouts_->Add(1);
      if (stmt_deadline != 0 && now >= stmt_deadline) {
        // Statement deadline: the whole transaction is over, not just this wait.
        result = Status::TimedOut("statement timeout while waiting for lock on node " +
                                  std::to_string(node_id_));
        owner->Cancel(result);
      } else {
        result = Status::TimedOut("lock timeout on node " + std::to_string(node_id_));
      }
      break;
    }
    // Steady-state poll is lost-wakeup insurance; before the first deadlock
    // check it equals the deadlock timeout. Clamp to the remaining deadline so
    // a timeout is observed within one poll of when it fires.
    int64_t poll_us =
        checked_local ? 100'000 : options_.local_deadlock_timeout_us;
    if (effective_deadline != 0) {
      int64_t remaining = effective_deadline - now;
      if (remaining < poll_us) poll_us = remaining > 0 ? remaining : 1;
    }
    st.cv.wait_for(lk, std::chrono::microseconds(poll_us));
    if (!checked_local && !w->granted &&
        sw.ElapsedMicros() >= options_.local_deadlock_timeout_us) {
      checked_local = true;
      if (LocalCycleFrom(owner->gxid())) {
        ++stats_.local_deadlocks;
        if (m_local_deadlocks_ != nullptr) m_local_deadlocks_->Add(1);
        result = Status::DeadlockDetected("local deadlock detected on node " +
                                          std::to_string(node_id_));
        break;
      }
    }
  }

  // Remove the waiting registration.
  auto wit = waiting_.find(owner->gxid());
  if (wit != waiting_.end()) {
    auto& tags = wit->second;
    for (auto it = tags.begin(); it != tags.end(); ++it) {
      if (*it == tag) {
        tags.erase(it);
        break;
      }
    }
    if (tags.empty()) waiting_.erase(wit);
  }
  const int64_t waited_us = sw.ElapsedMicros();
  stats_.total_wait_us += waited_us;
  if (m_wait_us_ != nullptr) m_wait_us_->Add(static_cast<uint64_t>(waited_us));
  if (m_queue_depth_ != nullptr) m_queue_depth_->Add(-1);

  if (!w->granted) {
    RemoveWaiter(st, w.get());
    // Our departure may unblock waiters that conflicted with our queued request.
    ProcessQueue(st, tag);
    EraseLockIfIdle(tag);
    return result.ok() ? Status::Internal("lock wait ended without grant") : result;
  }
  // Granted while (possibly) also cancelled: prefer the grant; the caller will
  // observe the cancel flag at its next cancellation point.
  RemoveWaiter(st, w.get());
  return Status::OK();
}

bool LockManager::TryAcquire(const std::shared_ptr<LockOwner>& owner, const LockTag& tag,
                             LockMode mode) {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.acquires;
  if (m_acquires_ != nullptr) m_acquires_->Add(1);
  if (!poison_.ok()) return false;
  LockState& st = locks_[tag];
  if (!CanGrantNow(st, owner->gxid(), mode)) {
    EraseLockIfIdle(tag);
    return false;
  }
  GrantTo(st, owner, tag, mode);
  return true;
}

void LockManager::Release(const LockOwner& owner, const LockTag& tag, LockMode mode) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = locks_.find(tag);
  if (it == locks_.end()) return;
  LockState& st = it->second;
  auto git = st.granted.find(owner.gxid());
  if (git == st.granted.end()) return;
  auto& counts = git->second;
  if (counts[static_cast<size_t>(mode)] == 0) return;
  --counts[static_cast<size_t>(mode)];
  bool any = false;
  for (int m = 1; m <= 8; ++m) any |= counts[static_cast<size_t>(m)] > 0;
  if (!any) st.granted.erase(git);

  // Drop one matching holder-tag entry.
  auto hit = holders_.find(owner.gxid());
  if (hit != holders_.end()) {
    auto& tags = hit->second.tags;
    for (auto t = tags.begin(); t != tags.end(); ++t) {
      if (*t == tag) {
        tags.erase(t);
        break;
      }
    }
    if (tags.empty()) holders_.erase(hit);
  }

  ProcessQueue(st, tag);
  EraseLockIfIdle(tag);
}

void LockManager::ReleaseAll(const LockOwner& owner) {
  std::lock_guard<std::mutex> lk(mu_);
  auto hit = holders_.find(owner.gxid());
  if (hit == holders_.end()) return;
  // Unique tags held by this owner.
  std::vector<LockTag> tags = std::move(hit->second.tags);
  holders_.erase(hit);
  std::sort(tags.begin(), tags.end(), [](const LockTag& a, const LockTag& b) {
    LockTagHash h;
    return h(a) < h(b);
  });
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  for (const LockTag& tag : tags) {
    auto it = locks_.find(tag);
    if (it == locks_.end()) continue;
    it->second.granted.erase(owner.gxid());
    ProcessQueue(it->second, tag);
    EraseLockIfIdle(tag);
  }
}

bool LockManager::Holds(const LockOwner& owner, const LockTag& tag, LockMode mode) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = locks_.find(tag);
  if (it == locks_.end()) return false;
  auto git = it->second.granted.find(owner.gxid());
  if (git == it->second.granted.end()) return false;
  return git->second[static_cast<size_t>(mode)] > 0;
}

void LockManager::AppendEdgesLocked(std::vector<WaitEdge>* edges) const {
  for (const auto& [tag, st] : locks_) {
    bool dotted = tag.type == LockObjectType::kTuple;
    uint16_t ahead_mask = 0;
    for (const auto& w : st.queue) {
      if (w->granted) continue;
      uint16_t mode_bit = static_cast<uint16_t>(1u << static_cast<int>(w->mode));
      // Edges to conflicting holders.
      for (const auto& [holder, counts] : st.granted) {
        if (holder == w->owner->gxid()) continue;
        for (int m = 1; m <= 8; ++m) {
          if (counts[static_cast<size_t>(m)] > 0 &&
              LockConflicts(static_cast<LockMode>(m), w->mode)) {
            edges->push_back(WaitEdge{w->owner->gxid(), holder, dotted});
            break;
          }
        }
      }
      // Edges to conflicting waiters ahead in the queue (they will be granted
      // before us). These carry the same label as the lock type.
      for (const auto& ahead : st.queue) {
        if (ahead.get() == w.get()) break;
        if (ahead->granted) continue;
        if (ahead->owner->gxid() == w->owner->gxid()) continue;
        if (LockConflicts(ahead->mode, w->mode) || LockConflicts(w->mode, ahead->mode)) {
          edges->push_back(WaitEdge{w->owner->gxid(), ahead->owner->gxid(), dotted});
        }
      }
      ahead_mask |= mode_bit;
    }
  }
}

std::vector<LockManager::LockInfo> LockManager::SnapshotLocks() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<LockInfo> out;
  for (const auto& [tag, st] : locks_) {
    for (const auto& [gxid, counts] : st.granted) {
      for (int m = 1; m <= 8; ++m) {
        if (counts[static_cast<size_t>(m)] > 0) {
          out.push_back(LockInfo{node_id_, tag, static_cast<LockMode>(m), gxid, true});
        }
      }
    }
    for (const auto& w : st.queue) {
      if (w->granted) continue;
      out.push_back(LockInfo{node_id_, tag, w->mode, w->owner->gxid(), false});
    }
  }
  return out;
}

LocalWaitGraph LockManager::CollectWaitGraph() const {
  std::lock_guard<std::mutex> lk(mu_);
  LocalWaitGraph g;
  g.node_id = node_id_;
  AppendEdgesLocked(&g.edges);
  return g;
}

bool LockManager::LocalCycleFrom(uint64_t start) const {
  std::vector<WaitEdge> edges;
  AppendEdgesLocked(&edges);
  // DFS over adjacency looking for a path from `start` back to `start`.
  std::unordered_map<uint64_t, std::vector<uint64_t>> adj;
  for (const auto& e : edges) adj[e.waiter].push_back(e.holder);
  std::vector<uint64_t> stack = {start};
  std::unordered_map<uint64_t, bool> visited;
  while (!stack.empty()) {
    uint64_t v = stack.back();
    stack.pop_back();
    for (uint64_t next : adj[v]) {
      if (next == start) return true;
      if (!visited[next]) {
        visited[next] = true;
        stack.push_back(next);
      }
    }
  }
  return false;
}

bool LockManager::WakeWaitersOf(uint64_t gxid) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = waiting_.find(gxid);
  if (it == waiting_.end()) return false;
  for (const LockTag& tag : it->second) {
    auto lit = locks_.find(tag);
    if (lit != locks_.end()) lit->second.cv.notify_all();
  }
  return true;
}

bool LockManager::IsWaiting(uint64_t gxid) const {
  std::lock_guard<std::mutex> lk(mu_);
  return waiting_.count(gxid) > 0;
}

size_t LockManager::CancelAllWaiters(const Status& reason) {
  std::lock_guard<std::mutex> lk(mu_);
  size_t cancelled = 0;
  for (auto& [tag, st] : locks_) {
    bool any = false;
    for (auto& w : st.queue) {
      if (w->granted) continue;
      w->owner->Cancel(reason);
      ++cancelled;
      any = true;
    }
    if (any) st.cv.notify_all();
  }
  poison_ = reason;
  return cancelled;
}

void LockManager::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  locks_.clear();
  waiting_.clear();
  holders_.clear();
  poison_ = Status::OK();
}

LockManager::Stats LockManager::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void LockManager::set_metrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  std::lock_guard<std::mutex> lk(mu_);
  m_acquires_ = metrics->counter("lock.acquires");
  m_waits_ = metrics->counter("lock.waits");
  m_wait_us_ = metrics->counter("lock.wait_us");
  m_local_deadlocks_ = metrics->counter("lock.local_deadlocks");
  m_lock_timeouts_ = metrics->counter("resilience.lock_timeouts");
  m_queue_depth_ = metrics->gauge("lock.queue_depth");
}

std::string WaitEdgeToString(const WaitEdge& e) {
  std::string s = std::to_string(e.waiter);
  s += e.dotted ? " -.-> " : " ---> ";
  s += std::to_string(e.holder);
  return s;
}

}  // namespace gphtap
