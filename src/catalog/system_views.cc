#include "catalog/system_views.h"

namespace gphtap {

namespace {

TableDef MakeView(SystemViewId id, std::string name, std::vector<Column> cols) {
  TableDef def;
  def.id = static_cast<TableId>(id);
  def.name = std::move(name);
  def.schema = Schema(std::move(cols));
  def.distribution = DistributionPolicy::Replicated();
  def.is_system_view = true;
  return def;
}

std::vector<TableDef> BuildDefs() {
  std::vector<TableDef> defs;

  // One row per connected session, with its live wait state.
  defs.push_back(MakeView(
      SystemViewId::kStatActivity, "gp_stat_activity",
      {{"sess_id", TypeId::kInt64},
       {"role", TypeId::kString},
       {"resgroup", TypeId::kString},
       {"gxid", TypeId::kInt64},
       {"state", TypeId::kString},  // idle | active | idle in transaction
       {"wait_event_class", TypeId::kString},
       {"wait_event", TypeId::kString},
       {"wait_us", TypeId::kInt64},  // how long the current wait has lasted
       {"query", TypeId::kString},
       // Resilience: time left before the statement deadline fires (-1 = no
       // deadline armed) and transparent retry count of the current statement.
       {"deadline_remaining_us", TypeId::kInt64},
       {"retries", TypeId::kInt64},
       // Front door: dispatch-queue depth this session's statement joined
       // behind (0 unless state = queued, wait frontend:dispatch).
       {"queue_depth", TypeId::kInt64}}));

  // Every grant and every queued waiter in every lock table (coordinator = -1).
  defs.push_back(MakeView(SystemViewId::kLocks, "gp_locks",
                          {{"node", TypeId::kInt64},
                           {"locktype", TypeId::kString},  // relation|tuple|transactionid
                           {"relation", TypeId::kInt64},
                           {"objid", TypeId::kInt64},
                           {"mode", TypeId::kString},
                           {"gxid", TypeId::kInt64},
                           {"granted", TypeId::kInt64}}));  // 1 granted, 0 waiting

  defs.push_back(MakeView(SystemViewId::kResgroupStatus, "gp_resgroup_status",
                          {{"name", TypeId::kString},
                           {"concurrency", TypeId::kInt64},
                           {"active", TypeId::kInt64},
                           {"cpu_rate_limit", TypeId::kDouble},
                           {"memory_limit_mb", TypeId::kInt64},
                           // Overload protection (admission queue) counters.
                           {"queued", TypeId::kInt64},
                           {"queued_total", TypeId::kInt64},
                           {"shed", TypeId::kInt64},
                           {"admission_timeouts", TypeId::kInt64}}));

  defs.push_back(MakeView(SystemViewId::kSegmentStatus, "gp_segment_status",
                          {{"segment", TypeId::kInt64},
                           {"up", TypeId::kInt64},
                           {"has_mirror", TypeId::kInt64},
                           {"mirror_promoted", TypeId::kInt64},
                           {"mirror_applied", TypeId::kInt64},
                           {"change_log_size", TypeId::kInt64},
                           {"ao_live_rows", TypeId::kInt64},
                           {"ao_dead_rows", TypeId::kInt64},
                           {"ao_reclaimed_groups", TypeId::kInt64}}));

  // Accumulated wait-event durations per (event, node, resource group).
  defs.push_back(MakeView(SystemViewId::kWaitEvents, "gp_wait_events",
                          {{"wait_event_class", TypeId::kString},
                           {"wait_event", TypeId::kString},
                           {"node", TypeId::kInt64},
                           {"resgroup", TypeId::kString},
                           {"count", TypeId::kInt64},
                           {"total_us", TypeId::kInt64},
                           {"max_us", TypeId::kInt64},
                           {"p95_us", TypeId::kInt64}}));

  // One row per surviving wait-for edge of each confirmed global deadlock.
  defs.push_back(MakeView(SystemViewId::kDistDeadlocks, "gp_dist_deadlocks",
                          {{"seq", TypeId::kInt64},
                           {"detected_at_us", TypeId::kInt64},
                           {"victim", TypeId::kInt64},
                           {"waiter", TypeId::kInt64},
                           {"holder", TypeId::kInt64},
                           {"node", TypeId::kInt64},
                           {"edge", TypeId::kString},      // solid | dotted
                           {"on_cycle", TypeId::kInt64},
                           {"iterations", TypeId::kInt64},
                           {"reason", TypeId::kString}}));

  // One row per (segment, delta-tracked heap table): change-log feed position
  // and the columnar delta store's shape on that segment.
  defs.push_back(MakeView(SystemViewId::kDeltaStatus, "gp_delta_status",
                          {{"segment", TypeId::kInt64},
                           {"table_name", TypeId::kString},
                           {"log_size", TypeId::kInt64},
                           {"applied", TypeId::kInt64},
                           {"lag", TypeId::kInt64},  // log records not yet applied
                           {"open_rows", TypeId::kInt64},
                           {"sealed_groups", TypeId::kInt64},
                           {"sealed_rows", TypeId::kInt64},
                           {"freed_groups", TypeId::kInt64},
                           {"deletes", TypeId::kInt64},
                           {"pending_frees", TypeId::kInt64}}));

  // Cumulative per-fingerprint statement statistics (pg_stat_statements
  // analogue): latency distribution plus gang-aggregated resource usage.
  defs.push_back(MakeView(SystemViewId::kStatStatements, "gp_stat_statements",
                          {{"fingerprint", TypeId::kString},
                           {"calls", TypeId::kInt64},
                           {"rows", TypeId::kInt64},
                           {"errors", TypeId::kInt64},
                           {"timeouts", TypeId::kInt64},
                           {"retries", TypeId::kInt64},
                           {"plan_cache_hits", TypeId::kInt64},
                           {"total_us", TypeId::kInt64},
                           {"min_us", TypeId::kInt64},
                           {"max_us", TypeId::kInt64},
                           {"p95_us", TypeId::kInt64},
                           // p95 of per-slice (gang member) wall time, merged
                           // across every gang the fingerprint ever ran.
                           {"gang_p95_us", TypeId::kInt64},
                           {"vec_batches", TypeId::kInt64},
                           {"vec_fallbacks", TypeId::kInt64},
                           {"exec_cpu_ns", TypeId::kInt64},
                           {"net_bytes", TypeId::kInt64},
                           {"buffer_hits", TypeId::kInt64},
                           {"buffer_misses", TypeId::kInt64},
                           {"top_wait", TypeId::kString},
                           {"top_wait_us", TypeId::kInt64}}));

  // Periodic snapshots of the metrics registry: one row per (tick, metric)
  // whose value or delta was nonzero at capture time.
  defs.push_back(MakeView(SystemViewId::kStatHistory, "gp_stat_history",
                          {{"tick", TypeId::kInt64},
                           {"at_us", TypeId::kInt64},
                           {"metric", TypeId::kString},
                           {"value", TypeId::kInt64},
                           {"delta", TypeId::kInt64}}));

  // Live + recently finished maintenance commands (VACUUM / CLUSTER /
  // REBALANCE TABLE / delta seal daemon) with phase and unit counters.
  defs.push_back(MakeView(SystemViewId::kStatProgress, "gp_stat_progress",
                          {{"op_id", TypeId::kInt64},
                           {"kind", TypeId::kString},
                           {"target", TypeId::kString},
                           {"node", TypeId::kInt64},
                           {"phase", TypeId::kString},
                           {"units_done", TypeId::kInt64},
                           {"units_total", TypeId::kInt64},
                           {"elapsed_us", TypeId::kInt64},
                           {"finished", TypeId::kInt64}}));

  // Raw dump of every counter and gauge in the metrics registry.
  defs.push_back(MakeView(SystemViewId::kMetrics, "gp_metrics",
                          {{"name", TypeId::kString},
                           {"kind", TypeId::kString},  // counter | gauge
                           {"value", TypeId::kInt64}}));

  return defs;
}

}  // namespace

const std::vector<TableDef>& SystemViewDefs() {
  static const std::vector<TableDef>* defs = new std::vector<TableDef>(BuildDefs());
  return *defs;
}

const TableDef* FindSystemView(const std::string& name) {
  for (const TableDef& def : SystemViewDefs()) {
    if (def.name == name) return &def;
  }
  return nullptr;
}

const TableDef* FindSystemViewById(TableId id) {
  if (id < kSystemViewIdBase) return nullptr;
  for (const TableDef& def : SystemViewDefs()) {
    if (def.id == id) return &def;
  }
  return nullptr;
}

}  // namespace gphtap
