#include "catalog/schema.h"

#include <algorithm>
#include <cctype>

namespace gphtap {

namespace {
bool IEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}
}  // namespace

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (IEquals(cols_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::CheckRow(const Row& row) const {
  if (row.size() != cols_.size()) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " != schema arity " + std::to_string(cols_.size()));
  }
  for (size_t i = 0; i < cols_.size(); ++i) {
    const Datum& d = row[i];
    if (d.is_null()) continue;
    switch (cols_[i].type) {
      case TypeId::kInt64:
        if (!d.is_int()) {
          return Status::InvalidArgument("column " + cols_[i].name + " expects INT");
        }
        break;
      case TypeId::kDouble:
        if (!d.is_int() && !d.is_double()) {
          return Status::InvalidArgument("column " + cols_[i].name + " expects DOUBLE");
        }
        break;
      case TypeId::kString:
        if (!d.is_string()) {
          return Status::InvalidArgument("column " + cols_[i].name + " expects TEXT");
        }
        break;
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (i) out += ", ";
    out += cols_[i].name;
    out += " ";
    out += TypeIdName(cols_[i].type);
  }
  out += ")";
  return out;
}

const char* StorageKindName(StorageKind k) {
  switch (k) {
    case StorageKind::kHeap:
      return "heap";
    case StorageKind::kAoRow:
      return "ao_row";
    case StorageKind::kAoColumn:
      return "ao_column";
    case StorageKind::kExternal:
      return "external";
  }
  return "?";
}

const char* CompressionKindName(CompressionKind k) {
  switch (k) {
    case CompressionKind::kNone:
      return "none";
    case CompressionKind::kRle:
      return "rle";
    case CompressionKind::kDelta:
      return "delta";
    case CompressionKind::kDict:
      return "dict";
    case CompressionKind::kLz:
      return "lz";
  }
  return "?";
}

int PartitionSpec::RouteValue(const Datum& v) const {
  if (v.is_null()) return -1;  // NULL belongs to no range partition
  for (size_t i = 0; i < ranges.size(); ++i) {
    const auto& r = ranges[i];
    if (!r.lower.is_null() && v.Compare(r.lower) < 0) continue;
    if (!r.upper.is_null() && v.Compare(r.upper) >= 0) continue;
    return static_cast<int>(i);
  }
  return -1;
}

}  // namespace gphtap
