#include "catalog/datum.h"

#include <cmath>
#include <cstdio>

namespace gphtap {

const char* TypeIdName(TypeId t) {
  switch (t) {
    case TypeId::kInt64:
      return "INT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "TEXT";
  }
  return "?";
}

namespace {

uint64_t Fmix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

uint64_t HashBytes(const void* data, size_t n, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed ^ (n * 0x9e3779b97f4a7c15ULL);
  while (n >= 8) {
    uint64_t k;
    __builtin_memcpy(&k, p, 8);
    h = Fmix64(h ^ k);
    p += 8;
    n -= 8;
  }
  uint64_t k = 0;
  for (size_t i = 0; i < n; ++i) k |= static_cast<uint64_t>(p[i]) << (8 * i);
  return Fmix64(h ^ k);
}

}  // namespace

uint64_t Datum::Hash() const {
  if (is_null()) return 0x5bd1e995;
  if (is_int()) {
    int64_t v = int_val();
    return Fmix64(static_cast<uint64_t>(v));
  }
  if (is_double()) {
    double d = double_val();
    // Hash integral doubles the same as the equal int64 so cross-type equality
    // keys co-hash.
    if (std::floor(d) == d && std::abs(d) < 9.2e18) {
      return Fmix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
    }
    uint64_t bits;
    __builtin_memcpy(&bits, &d, 8);
    return Fmix64(bits);
  }
  const std::string& s = string_val();
  return HashBytes(s.data(), s.size(), 0xc2b2ae3d27d4eb4fULL);
}

int Datum::Compare(const Datum& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return 1;   // NULLs last
  if (other.is_null()) return -1;
  if (is_string() || other.is_string()) {
    // String vs non-string: compare type tags; string vs string: lexicographic.
    if (is_string() && other.is_string()) {
      int c = string_val().compare(other.string_val());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    return is_string() ? 1 : -1;
  }
  if (is_int() && other.is_int()) {
    int64_t a = int_val(), b = other.int_val();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  double a = AsDouble(), b = other.AsDouble();
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::string Datum::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(int_val());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", double_val());
    return buf;
  }
  return string_val();
}

uint64_t HashRowKey(const Row& row, const std::vector<int>& key_cols) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int c : key_cols) {
    h = h * 1099511628211ULL ^ row[static_cast<size_t>(c)].Hash();
  }
  return h;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace gphtap
