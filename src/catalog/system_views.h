// The system-view catalog: fixed virtual TableDefs (modeled on PostgreSQL /
// Greenplum's pg_stat_activity, pg_locks, gp_resgroup_status, ...) that the
// normal SQL path can bind, plan (PlanKind::kVirtualScan), and execute on the
// coordinator. The defs here are pure schema; row production lives in
// Cluster::SystemViewRows, which snapshots live cluster state at scan time.
#ifndef GPHTAP_CATALOG_SYSTEM_VIEWS_H_
#define GPHTAP_CATALOG_SYSTEM_VIEWS_H_

#include <string>
#include <vector>

#include "catalog/schema.h"

namespace gphtap {

/// System-view table ids live far above anything the user catalog assigns, so
/// id-space collisions are impossible and executors can recognize them.
constexpr TableId kSystemViewIdBase = 1'000'000'000u;

enum class SystemViewId : TableId {
  kStatActivity = kSystemViewIdBase + 0,   // gp_stat_activity
  kLocks = kSystemViewIdBase + 1,          // gp_locks
  kResgroupStatus = kSystemViewIdBase + 2, // gp_resgroup_status
  kSegmentStatus = kSystemViewIdBase + 3,  // gp_segment_status
  kWaitEvents = kSystemViewIdBase + 4,     // gp_wait_events
  kDistDeadlocks = kSystemViewIdBase + 5,  // gp_dist_deadlocks
  kDeltaStatus = kSystemViewIdBase + 6,    // gp_delta_status
  kStatStatements = kSystemViewIdBase + 7, // gp_stat_statements
  kStatHistory = kSystemViewIdBase + 8,    // gp_stat_history
  kStatProgress = kSystemViewIdBase + 9,   // gp_stat_progress
  kMetrics = kSystemViewIdBase + 10,       // gp_metrics
};

/// All system-view defs (is_system_view set, Replicated distribution — they
/// exist only on the coordinator and never move).
const std::vector<TableDef>& SystemViewDefs();

/// Lookup by view name (exact, lowercase). nullptr when not a system view.
const TableDef* FindSystemView(const std::string& name);

/// Lookup by reserved table id. nullptr when not a system view id.
const TableDef* FindSystemViewById(TableId id);

}  // namespace gphtap

#endif  // GPHTAP_CATALOG_SYSTEM_VIEWS_H_
