// Table schemas, distribution policies, storage kinds, and partition specs.
#ifndef GPHTAP_CATALOG_SCHEMA_H_
#define GPHTAP_CATALOG_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "catalog/datum.h"
#include "common/status.h"

namespace gphtap {

struct Column {
  std::string name;
  TypeId type = TypeId::kInt64;
};

/// Ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> cols) : cols_(std::move(cols)) {}

  size_t num_columns() const { return cols_.size(); }
  const Column& column(size_t i) const { return cols_[i]; }
  const std::vector<Column>& columns() const { return cols_; }

  /// Index of a column by case-insensitive name, or -1.
  int FindColumn(const std::string& name) const;

  /// Validates that `row` matches arity and types (ints may widen to double).
  Status CheckRow(const Row& row) const;

  std::string ToString() const;

 private:
  std::vector<Column> cols_;
};

/// How a table's rows are spread across segments (Section 3.1 of the paper).
enum class DistributionKind : uint8_t {
  kHash = 0,        // DISTRIBUTED BY (cols...)
  kReplicated = 1,  // full copy on every segment
  kRandom = 2,      // DISTRIBUTED RANDOMLY (round robin)
};

struct DistributionPolicy {
  DistributionKind kind = DistributionKind::kHash;
  std::vector<int> key_cols;  // valid when kind == kHash

  static DistributionPolicy Hash(std::vector<int> cols) {
    return {DistributionKind::kHash, std::move(cols)};
  }
  static DistributionPolicy Replicated() { return {DistributionKind::kReplicated, {}}; }
  static DistributionPolicy Random() { return {DistributionKind::kRandom, {}}; }
};

/// Physical storage of a table or partition (Section 3.4).
enum class StorageKind : uint8_t {
  kHeap = 0,      // row-oriented, page-based, buffer-cached, MVCC in place
  kAoRow = 1,     // append-optimized row-oriented
  kAoColumn = 2,  // append-optimized column-oriented (one file per column)
  kExternal = 3,  // CSV file outside the database
};

const char* StorageKindName(StorageKind k);

enum class CompressionKind : uint8_t { kNone = 0, kRle = 1, kDelta = 2, kDict = 3, kLz = 4 };

const char* CompressionKindName(CompressionKind k);

/// One range partition: [lower, upper). A null bound is open.
struct RangePartitionSpec {
  std::string name;
  Datum lower;  // inclusive; null = unbounded
  Datum upper;  // exclusive; null = unbounded
  StorageKind storage = StorageKind::kHeap;
  std::string external_path;  // when storage == kExternal
};

/// Partitioning declaration for a root table (range partitioning on one column).
struct PartitionSpec {
  int partition_col = -1;
  std::vector<RangePartitionSpec> ranges;

  /// Index of the range containing `v`, or -1 if none.
  int RouteValue(const Datum& v) const;
};

using TableId = uint32_t;

/// Catalog entry describing one table (or one leaf partition).
struct TableDef {
  TableId id = 0;
  std::string name;
  Schema schema;
  DistributionPolicy distribution;
  StorageKind storage = StorageKind::kHeap;
  CompressionKind compression = CompressionKind::kNone;
  std::optional<PartitionSpec> partitions;  // set on root tables only
  std::string external_path;                // when storage == kExternal
  // Hash indexes: each entry is a column index with a per-segment hash index.
  std::vector<int> indexed_cols;
  // System views (gp_stat_activity & co) are virtual: no storage anywhere,
  // rows are produced on the coordinator from live cluster state at scan time.
  bool is_system_view = false;
  // Elastic expansion: how many segments this table's data actually spans.
  // Hash tables route INSERTs modulo this (not the live segment count) until a
  // rebalance migrates them; replicated tables have complete copies on
  // [0, dist_segments). 0 means "all segments" (legacy defs and unit tests
  // that build TableDefs by hand).
  int dist_segments = 0;
  // True while a rebalance is migrating this table to a new span: direct
  // dispatch is off (any snapshot, pre- or post-cutover, stays correct under
  // full fan-out) and replicated writes fan to every serving segment.
  bool rebalancing = false;
};

}  // namespace gphtap

#endif  // GPHTAP_CATALOG_SCHEMA_H_
