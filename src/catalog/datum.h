// Runtime value representation. A Datum is NULL, an int64, a double, or a string.
#ifndef GPHTAP_CATALOG_DATUM_H_
#define GPHTAP_CATALOG_DATUM_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace gphtap {

enum class TypeId : uint8_t { kInt64 = 0, kDouble = 1, kString = 2 };

const char* TypeIdName(TypeId t);

/// A single SQL value. Monostate encodes NULL.
class Datum {
 public:
  Datum() : v_(std::monostate{}) {}
  explicit Datum(int64_t v) : v_(v) {}
  explicit Datum(double v) : v_(v) {}
  explicit Datum(std::string v) : v_(std::move(v)) {}

  static Datum Null() { return Datum(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int64_t int_val() const { return std::get<int64_t>(v_); }
  double double_val() const { return std::get<double>(v_); }
  const std::string& string_val() const { return std::get<std::string>(v_); }

  /// Numeric coercion: int or double as double. Callers must check !is_null().
  double AsDouble() const { return is_int() ? static_cast<double>(int_val()) : double_val(); }

  /// Hash for distribution-key routing (matches across equal values of the same type).
  uint64_t Hash() const;

  /// Three-way comparison for ORDER BY / predicates. NULLs sort last and equal to
  /// each other. Numeric types compare cross-type; strings compare lexicographically.
  int Compare(const Datum& other) const;

  bool operator==(const Datum& other) const { return Compare(other) == 0; }

  std::string ToString() const;

  /// Approximate in-memory footprint in bytes (for vmem accounting).
  size_t FootprintBytes() const {
    return is_string() ? 24 + string_val().size() : 16;
  }

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

using Row = std::vector<Datum>;

/// Hash of a distribution key (one or more columns).
uint64_t HashRowKey(const Row& row, const std::vector<int>& key_cols);

std::string RowToString(const Row& row);

}  // namespace gphtap

#endif  // GPHTAP_CATALOG_DATUM_H_
