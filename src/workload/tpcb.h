// TPC-B (pgbench-style) workload: schema, loader, and the transaction mixes
// used by the paper's OLTP experiments (Figures 12-15).
#ifndef GPHTAP_WORKLOAD_TPCB_H_
#define GPHTAP_WORKLOAD_TPCB_H_

#include "cluster/cluster.h"
#include "cluster/session.h"
#include "common/rng.h"

namespace gphtap {

struct TpcbConfig {
  int scale = 1;                    // branches
  int tellers_per_branch = 10;
  int accounts_per_branch = 10000;  // pgbench uses 100'000; scaled down
  bool create_indexes = true;

  int64_t num_accounts() const {
    return static_cast<int64_t>(scale) * accounts_per_branch;
  }
  int64_t num_tellers() const { return static_cast<int64_t>(scale) * tellers_per_branch; }
};

/// Creates and populates pgbench_accounts / _branches / _tellers / _history.
Status LoadTpcb(Cluster* cluster, const TpcbConfig& config);

/// The full TPC-B transaction: update account, read it back, update teller and
/// branch, insert history — in one explicit transaction (five statements).
Status RunTpcbTransaction(Session* session, Rng& rng, const TpcbConfig& config);

/// Figure 14's microworkload: a single-row account update (implicit txn).
Status RunUpdateOnlyTransaction(Session* session, Rng& rng, const TpcbConfig& config);

/// Figure 15's microworkload: a single-row insert whose values all map to one
/// segment — the 1PC candidate.
Status RunInsertOnlyTransaction(Session* session, Rng& rng, const TpcbConfig& config);

/// A single-row point SELECT on an account.
Status RunSelectOnlyTransaction(Session* session, Rng& rng, const TpcbConfig& config);

/// TPC-B consistency: sum(abalance) == sum(bbalance) == sum(tbalance), and the
/// history row count matches the number of committed full transactions.
Status CheckTpcbInvariant(Cluster* cluster);

/// The five PREPARE statements of the TPC-B mix, as texts — the session_init
/// script for front-door (logical-session) drivers, which run statements
/// through callbacks instead of a TxnFn.
std::vector<std::string> TpcbPrepareScript();

/// The full TPC-B transaction as a statement script (BEGIN + five EXECUTEs +
/// COMMIT), sampling with the same RNG order as RunTpcbTransaction so the two
/// drivers are apples-to-apples.
std::vector<std::string> TpcbTransactionScript(Rng& rng, const TpcbConfig& config);

}  // namespace gphtap

#endif  // GPHTAP_WORKLOAD_TPCB_H_
