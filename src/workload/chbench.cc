#include "workload/chbench.h"

namespace gphtap {

Status LoadChBench(Cluster* cluster, const ChBenchConfig& config) {
  auto session = cluster->Connect();
  auto ddl = [&](const std::string& sql) { return session->Execute(sql).status(); };

  GPHTAP_RETURN_IF_ERROR(ddl(
      "CREATE TABLE warehouse (w_id int, w_name text, w_ytd double) DISTRIBUTED BY (w_id)"));
  GPHTAP_RETURN_IF_ERROR(
      ddl("CREATE TABLE district (d_w_id int, d_id int, d_ytd double, d_next_o_id int) "
          "DISTRIBUTED BY (d_w_id)"));
  GPHTAP_RETURN_IF_ERROR(
      ddl("CREATE TABLE customer (c_w_id int, c_d_id int, c_id int, c_balance double, "
          "c_ytd_payment double) DISTRIBUTED BY (c_w_id)"));
  // The fact tables take the configured storage; insert-heavy TPC-C traffic
  // (NewOrder appends) suits append-optimized column groups.
  const std::string fact_opts =
      config.column_storage ? std::string(" WITH (storage=ao_column)") : std::string();
  GPHTAP_RETURN_IF_ERROR(
      ddl("CREATE TABLE orders (o_w_id int, o_d_id int, o_id int, o_c_id int, "
          "o_ol_cnt int, o_entry_d int)" +
          fact_opts + " DISTRIBUTED BY (o_w_id)"));
  GPHTAP_RETURN_IF_ERROR(
      ddl("CREATE TABLE order_line (ol_w_id int, ol_d_id int, ol_o_id int, "
          "ol_number int, ol_i_id int, ol_qty int, ol_amount double)" +
          fact_opts + " DISTRIBUTED BY (ol_w_id)"));
  GPHTAP_RETURN_IF_ERROR(
      ddl("CREATE TABLE item (i_id int, i_name text, i_price double, i_category int) "
          "DISTRIBUTED REPLICATED"));
  GPHTAP_RETURN_IF_ERROR(
      ddl("CREATE TABLE stock (s_w_id int, s_i_id int, s_quantity int, s_ytd int) "
          "DISTRIBUTED BY (s_w_id)"));

  auto insert_rows = [&](const char* table, std::vector<Row> rows) -> Status {
    if (rows.empty()) return Status::OK();
    GPHTAP_ASSIGN_OR_RETURN(TableDef def, cluster->LookupTable(table));
    return session->ExecuteInsert(def, rows).status();
  };

  Rng rng(7);
  std::vector<Row> rows;
  for (int64_t w = 1; w <= config.warehouses; ++w) {
    rows.push_back(Row{Datum(w), Datum("warehouse_" + std::to_string(w)), Datum(0.0)});
  }
  GPHTAP_RETURN_IF_ERROR(insert_rows("warehouse", std::move(rows)));

  rows.clear();
  for (int64_t w = 1; w <= config.warehouses; ++w) {
    for (int64_t d = 1; d <= config.districts_per_warehouse; ++d) {
      rows.push_back(Row{Datum(w), Datum(d), Datum(0.0),
                         Datum(static_cast<int64_t>(config.initial_orders_per_district + 1))});
    }
  }
  GPHTAP_RETURN_IF_ERROR(insert_rows("district", std::move(rows)));

  rows.clear();
  for (int64_t w = 1; w <= config.warehouses; ++w) {
    for (int64_t d = 1; d <= config.districts_per_warehouse; ++d) {
      for (int64_t c = 1; c <= config.customers_per_district; ++c) {
        rows.push_back(Row{Datum(w), Datum(d), Datum(c), Datum(0.0), Datum(0.0)});
      }
    }
  }
  GPHTAP_RETURN_IF_ERROR(insert_rows("customer", std::move(rows)));

  rows.clear();
  for (int64_t i = 1; i <= config.items; ++i) {
    rows.push_back(Row{Datum(i), Datum("item_" + std::to_string(i)),
                       Datum(1.0 + static_cast<double>(i % 100)),
                       Datum(static_cast<int64_t>(i % 10))});
  }
  GPHTAP_RETURN_IF_ERROR(insert_rows("item", std::move(rows)));

  rows.clear();
  for (int64_t w = 1; w <= config.warehouses; ++w) {
    for (int64_t i = 1; i <= config.items; ++i) {
      rows.push_back(Row{Datum(w), Datum(i),
                         Datum(static_cast<int64_t>(50 + i % 50)), Datum(int64_t{0})});
    }
  }
  GPHTAP_RETURN_IF_ERROR(insert_rows("stock", std::move(rows)));

  // Initial orders with lines.
  std::vector<Row> orders, lines;
  for (int64_t w = 1; w <= config.warehouses; ++w) {
    for (int64_t d = 1; d <= config.districts_per_warehouse; ++d) {
      for (int64_t o = 1; o <= config.initial_orders_per_district; ++o) {
        int64_t c = rng.UniformRange(1, config.customers_per_district);
        orders.push_back(Row{Datum(w), Datum(d), Datum(o), Datum(c),
                             Datum(static_cast<int64_t>(config.lines_per_order)),
                             Datum(o)});
        for (int64_t l = 1; l <= config.lines_per_order; ++l) {
          int64_t item = rng.UniformRange(1, config.items);
          int64_t qty = rng.UniformRange(1, 10);
          lines.push_back(Row{Datum(w), Datum(d), Datum(o), Datum(l), Datum(item),
                              Datum(qty),
                              Datum(static_cast<double>(qty) *
                                    (1.0 + static_cast<double>(item % 100)))});
        }
      }
    }
  }
  GPHTAP_RETURN_IF_ERROR(insert_rows("orders", std::move(orders)));
  GPHTAP_RETURN_IF_ERROR(insert_rows("order_line", std::move(lines)));
  return Status::OK();
}

Status RunNewOrderTransaction(Session* session, Rng& rng, const ChBenchConfig& config) {
  int64_t w = rng.UniformRange(1, config.warehouses);
  int64_t d = rng.UniformRange(1, config.districts_per_warehouse);
  int64_t c = rng.UniformRange(1, config.customers_per_district);
  std::string ws = std::to_string(w), ds = std::to_string(d);

  GPHTAP_RETURN_IF_ERROR(session->Execute("BEGIN").status());
  auto run = [&](const std::string& sql) -> StatusOr<QueryResult> {
    auto r = session->Execute(sql);
    if (!r.ok()) session->Rollback();
    return r;
  };
  // Allocate the order id: the UPDATE serializes concurrent NewOrders on this
  // district; the SELECT then reads our own (uncommitted) increment.
  GPHTAP_RETURN_IF_ERROR(run("UPDATE district SET d_next_o_id = d_next_o_id + 1 "
                             "WHERE d_w_id = " + ws + " AND d_id = " + ds)
                             .status());
  GPHTAP_ASSIGN_OR_RETURN(
      QueryResult next,
      run("SELECT d_next_o_id FROM district WHERE d_w_id = " + ws + " AND d_id = " + ds));
  if (next.rows.empty()) {
    session->Rollback();
    return Status::Internal("district row missing");
  }
  int64_t o_id = next.rows[0][0].int_val() - 1;
  std::string os = std::to_string(o_id);

  GPHTAP_RETURN_IF_ERROR(
      run("INSERT INTO orders (o_w_id, o_d_id, o_id, o_c_id, o_ol_cnt, o_entry_d) "
          "VALUES (" + ws + ", " + ds + ", " + os + ", " + std::to_string(c) + ", " +
          std::to_string(config.lines_per_order) + ", " + os + ")")
          .status());
  for (int64_t l = 1; l <= config.lines_per_order; ++l) {
    int64_t item = rng.UniformRange(1, config.items);
    int64_t qty = rng.UniformRange(1, 10);
    double amount = static_cast<double>(qty) * (1.0 + static_cast<double>(item % 100));
    GPHTAP_RETURN_IF_ERROR(
        run("INSERT INTO order_line (ol_w_id, ol_d_id, ol_o_id, ol_number, ol_i_id, "
            "ol_qty, ol_amount) VALUES (" + ws + ", " + ds + ", " + os + ", " +
            std::to_string(l) + ", " + std::to_string(item) + ", " +
            std::to_string(qty) + ", " + std::to_string(amount) + ")")
            .status());
    GPHTAP_RETURN_IF_ERROR(run("UPDATE stock SET s_quantity = s_quantity - " +
                               std::to_string(qty) + ", s_ytd = s_ytd + " +
                               std::to_string(qty) + " WHERE s_w_id = " + ws +
                               " AND s_i_id = " + std::to_string(item))
                               .status());
  }
  return session->Execute("COMMIT").status();
}

Status RunPaymentTransaction(Session* session, Rng& rng, const ChBenchConfig& config) {
  int64_t w = rng.UniformRange(1, config.warehouses);
  int64_t d = rng.UniformRange(1, config.districts_per_warehouse);
  int64_t c = rng.UniformRange(1, config.customers_per_district);
  double amount = static_cast<double>(rng.UniformRange(1, 5000));
  std::string ws = std::to_string(w), ds = std::to_string(d), cs = std::to_string(c);
  std::string as = std::to_string(amount);

  GPHTAP_RETURN_IF_ERROR(session->Execute("BEGIN").status());
  auto run = [&](const std::string& sql) -> Status {
    Status s = session->Execute(sql).status();
    if (!s.ok()) session->Rollback();
    return s;
  };
  GPHTAP_RETURN_IF_ERROR(
      run("UPDATE warehouse SET w_ytd = w_ytd + " + as + " WHERE w_id = " + ws));
  GPHTAP_RETURN_IF_ERROR(run("UPDATE district SET d_ytd = d_ytd + " + as +
                             " WHERE d_w_id = " + ws + " AND d_id = " + ds));
  GPHTAP_RETURN_IF_ERROR(run("UPDATE customer SET c_balance = c_balance - " + as +
                             ", c_ytd_payment = c_ytd_payment + " + as +
                             " WHERE c_w_id = " + ws + " AND c_d_id = " + ds +
                             " AND c_id = " + cs));
  return session->Execute("COMMIT").status();
}

Status RunChOltpTransaction(Session* session, Rng& rng, const ChBenchConfig& config) {
  if (rng.Chance(0.5)) return RunNewOrderTransaction(session, rng, config);
  return RunPaymentTransaction(session, rng, config);
}

const std::vector<std::string>& ChAnalyticalQueries() {
  static const std::vector<std::string>* queries = new std::vector<std::string>{
      // Q1-style: pricing summary by line number.
      "SELECT ol_number, sum(ol_qty) AS sum_qty, sum(ol_amount) AS sum_amount, "
      "avg(ol_qty) AS avg_qty, avg(ol_amount) AS avg_amount, count(*) AS count_order "
      "FROM order_line GROUP BY ol_number ORDER BY ol_number",
      // Q6-style: revenue from mid-size quantities.
      "SELECT sum(ol_amount) AS revenue FROM order_line WHERE ol_qty >= 2 AND ol_qty <= 8",
      // Q3-style: top orders by value.
      "SELECT o.o_id, sum(l.ol_amount) AS revenue FROM orders o "
      "JOIN order_line l ON o.o_id = l.ol_o_id "
      "WHERE o.o_w_id = l.ol_w_id AND o.o_d_id = l.ol_d_id "
      "GROUP BY o.o_id ORDER BY revenue DESC LIMIT 10",
      // Q12-style: order-count profile.
      "SELECT o_ol_cnt, count(*) AS order_count FROM orders GROUP BY o_ol_cnt "
      "ORDER BY o_ol_cnt",
      // Q14-style: revenue by item category (join against the replicated dim).
      "SELECT i.i_category, sum(l.ol_amount) AS revenue FROM order_line l "
      "JOIN item i ON l.ol_i_id = i.i_id GROUP BY i.i_category ORDER BY i.i_category",
      // Stock-pressure: lines touching low-stock items.
      "SELECT count(*) AS low_stock_lines FROM order_line l "
      "JOIN stock s ON l.ol_i_id = s.s_i_id "
      "WHERE l.ol_w_id = s.s_w_id AND s.s_quantity < 60",
      // Customer balance distribution per district.
      "SELECT c_d_id, avg(c_balance) AS avg_balance, min(c_balance), max(c_balance) "
      "FROM customer GROUP BY c_d_id ORDER BY c_d_id",
      // Recent-order revenue (filter on entry stamp).
      "SELECT o_d_id, count(*) AS n FROM orders WHERE o_entry_d > 10 GROUP BY o_d_id "
      "ORDER BY o_d_id",
      // Q11-style: significant stock positions (HAVING over an aggregate).
      "SELECT s_i_id, sum(s_quantity) AS total_qty FROM stock GROUP BY s_i_id "
      "HAVING sum(s_quantity) > 100 ORDER BY total_qty DESC LIMIT 20",
      // Q16-ish: distinct items actually ordered per district.
      "SELECT DISTINCT ol_d_id, ol_i_id FROM order_line ORDER BY ol_d_id, ol_i_id "
      "LIMIT 50",
      // Big-spender customers (HAVING referencing an alias).
      "SELECT c_d_id, avg(c_ytd_payment) AS avg_paid FROM customer GROUP BY c_d_id "
      "HAVING avg_paid >= 0 ORDER BY c_d_id",
  };
  return *queries;
}

Status RunChAnalyticalQuery(Session* session, size_t index) {
  const auto& queries = ChAnalyticalQueries();
  return session->Execute(queries[index % queries.size()]).status();
}

}  // namespace gphtap
