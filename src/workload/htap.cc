#include "workload/htap.h"

#include <thread>

namespace gphtap {

HtapResult RunHtapWorkload(Cluster* cluster, const HtapConfig& config) {
  HtapResult result;
  std::atomic<bool> stop{false};

  std::thread olap_thread([&] {
    if (config.olap_clients == 0) return;
    DriverOptions opts;
    opts.num_clients = config.olap_clients;
    opts.duration_ms = config.duration_ms;
    opts.role = config.olap_role;
    opts.seed = config.seed;
    opts.stop = &stop;
    std::atomic<size_t> next_query{0};
    result.olap = RunWorkload(cluster, opts, [&](Session* s, Rng&) {
      return RunChAnalyticalQuery(s, next_query.fetch_add(1));
    });
  });

  std::thread oltp_thread([&] {
    if (config.oltp_clients == 0) return;
    DriverOptions opts;
    opts.num_clients = config.oltp_clients;
    opts.duration_ms = config.duration_ms;
    opts.role = config.oltp_role;
    opts.seed = config.seed + 1;
    opts.stop = &stop;
    result.oltp = RunWorkload(cluster, opts, [&](Session* s, Rng& rng) {
      return RunChOltpTransaction(s, rng, config.chbench);
    });
  });

  olap_thread.join();
  oltp_thread.join();
  return result;
}

}  // namespace gphtap
