// CH-benCHmark: TPC-C-style transactional tables and transactions plus
// TPC-H-style analytical queries over the same data (the paper's HTAP
// benchmark, Figures 16-18).
#ifndef GPHTAP_WORKLOAD_CHBENCH_H_
#define GPHTAP_WORKLOAD_CHBENCH_H_

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/session.h"
#include "common/rng.h"

namespace gphtap {

struct ChBenchConfig {
  int warehouses = 2;
  int districts_per_warehouse = 10;
  int customers_per_district = 100;
  int items = 1000;
  int initial_orders_per_district = 30;
  int lines_per_order = 3;
  /// Store the fact tables (orders, order_line) as AO-column instead of heap,
  /// enabling vectorized batch scans for the analytical queries.
  bool column_storage = false;
};

/// Creates and populates warehouse/district/customer/orders/order_line/item/
/// stock. Items are replicated (dimension table); everything else is
/// distributed by warehouse id.
Status LoadChBench(Cluster* cluster, const ChBenchConfig& config);

/// TPC-C NewOrder (simplified): allocate an order id from the district, insert
/// the order and its lines, update stock.
Status RunNewOrderTransaction(Session* session, Rng& rng, const ChBenchConfig& config);

/// TPC-C Payment (simplified): update warehouse, district, and customer sums.
Status RunPaymentTransaction(Session* session, Rng& rng, const ChBenchConfig& config);

/// The OLTP mix used in the HTAP experiments: ~50% NewOrder, ~50% Payment.
Status RunChOltpTransaction(Session* session, Rng& rng, const ChBenchConfig& config);

/// The analytical query set (CH-benCHmark style, adapted to the SQL subset).
const std::vector<std::string>& ChAnalyticalQueries();

/// Runs one analytical query (round-robin by `index`).
Status RunChAnalyticalQuery(Session* session, size_t index);

}  // namespace gphtap

#endif  // GPHTAP_WORKLOAD_CHBENCH_H_
