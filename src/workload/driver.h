// Multi-client benchmark driver: N sessions on N threads hammering a
// transaction function for a fixed duration, reporting throughput and latency.
#ifndef GPHTAP_WORKLOAD_DRIVER_H_
#define GPHTAP_WORKLOAD_DRIVER_H_

#include <atomic>
#include <functional>
#include <string>

#include "cluster/cluster.h"
#include "cluster/session.h"
#include "common/histogram.h"
#include "common/rng.h"

namespace gphtap {

struct DriverResult {
  double seconds = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;   // deadlock victims, cancellations, resource kills
  uint64_t retryable = 0; // segment-down / timeout errors (crash + failover)
  Histogram latency_us;   // per committed transaction

  double Tps() const { return seconds > 0 ? static_cast<double>(committed) / seconds : 0; }
  std::string Summary() const;
};

/// Executes one transaction (or one query); abort-like failures are counted,
/// any other error stops the run.
using TxnFn = std::function<Status(Session*, Rng&)>;

struct DriverOptions {
  int num_clients = 1;
  int64_t duration_ms = 1000;
  std::string role;            // resource-group role for the sessions
  uint64_t seed = 42;
  /// Optional external stop signal (mixed workloads stop all classes together).
  std::atomic<bool>* stop = nullptr;
};

DriverResult RunWorkload(Cluster* cluster, const DriverOptions& options, const TxnFn& fn);

}  // namespace gphtap

#endif  // GPHTAP_WORKLOAD_DRIVER_H_
