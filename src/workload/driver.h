// Multi-client benchmark drivers.
//
// RunWorkload: the classic shape — N sessions on N OS threads hammering a
// transaction function for a fixed duration.
//
// RunFrontendWorkload: the million-session shape — N *logical* sessions
// connected through the front door (src/frontend/), driven as callback-
// chained state machines with zero client threads per session: a statement's
// completion callback submits the next one, sheds are retried through a
// single pacer thread with capped backoff honoring retry-after hints, and a
// session closed under it (idle timeout, storm) reconnects. This is what
// lets a connection-storm bench ramp to 50k clients without thread explosion.
#ifndef GPHTAP_WORKLOAD_DRIVER_H_
#define GPHTAP_WORKLOAD_DRIVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/session.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "frontend/frontend.h"

namespace gphtap {

struct DriverResult {
  double seconds = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;   // deadlock victims, cancellations, resource kills
  uint64_t retryable = 0; // segment-down / timeout errors (crash + failover)
  Histogram latency_us;   // per committed transaction

  double Tps() const { return seconds > 0 ? static_cast<double>(committed) / seconds : 0; }
  std::string Summary() const;
};

/// Executes one transaction (or one query); abort-like failures are counted,
/// any other error stops the run.
using TxnFn = std::function<Status(Session*, Rng&)>;

struct DriverOptions {
  int num_clients = 1;
  int64_t duration_ms = 1000;
  std::string role;            // resource-group role for the sessions
  uint64_t seed = 42;
  /// Optional external stop signal (mixed workloads stop all classes together).
  std::atomic<bool>* stop = nullptr;
};

DriverResult RunWorkload(Cluster* cluster, const DriverOptions& options, const TxnFn& fn);

// ---------------------------------------------------------------------------
// Front-door (logical-session) driver
// ---------------------------------------------------------------------------

/// One transaction as a statement script ("BEGIN" ... "COMMIT", or a single
/// implicit statement). Regenerated per transaction from the client's RNG.
using ScriptFn = std::function<std::vector<std::string>(Rng&)>;

struct FrontendWorkloadOptions {
  int logical_sessions = 1000;
  int64_t duration_ms = 1000;
  std::string role;
  uint64_t seed = 42;
  /// Statements run once per logical session before its first transaction
  /// (PREPAREs); re-run after a reconnect (a fresh Session has no prepared
  /// statements).
  std::vector<std::string> session_init;
  /// Connect-retry policy (capped exponential backoff; retry-after hints from
  /// shed responses stretch the sleep further).
  int connect_max_attempts = 200;
  int64_t connect_backoff_initial_us = 1'000;
  int64_t connect_backoff_max_us = 100'000;
  /// Driver threads used to ramp the connect storm (not per-session threads).
  int ramp_threads = 8;
  /// Steady-state boundary (ms from run start): commits before it are
  /// excluded from steady_committed / steady_seconds, so ramp + session_init
  /// cost does not dilute SteadyTps(). 0 measures the whole run.
  int64_t warmup_ms = 0;
  /// Optional external stop signal.
  std::atomic<bool>* stop = nullptr;
};

struct FrontendWorkloadResult {
  double seconds = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;     // deadlock victims / cancels, rolled back + restarted
  uint64_t shed = 0;        // submits shed by the front door (retried after hint)
  uint64_t retryable = 0;   // segment-down / timeout failures, restarted
  uint64_t reconnects = 0;  // sessions found closed under the client (re-dialed)
  uint64_t connect_ok = 0;
  uint64_t connect_sheds = 0;   // shed connect attempts (retried)
  uint64_t connect_failed = 0;  // clients that never got a session
  uint64_t steady_committed = 0;  // commits after the warmup boundary
  double steady_seconds = 0;      // wall time past the warmup boundary
  Histogram latency_us;          // per committed transaction
  Histogram connect_latency_us;  // per admitted session, retries included
  Status fatal;  // first non-retryable infrastructure error (OK when none)

  double Tps() const { return seconds > 0 ? static_cast<double>(committed) / seconds : 0; }
  /// Post-warmup throughput; the whole-run Tps() when no warmup was set (or
  /// the run ended inside it).
  double SteadyTps() const {
    return steady_seconds > 1e-3 ? static_cast<double>(steady_committed) / steady_seconds
                                 : Tps();
  }
  std::string Summary() const;
};

/// Connects through the front door with capped-backoff retry, sleeping the
/// larger of the backoff and the shed's retry-after hint between attempts.
/// `sheds` (optional) accumulates the shed attempts observed. Gives up at
/// `deadline_us` (monotonic; 0 = none) — a storm past capacity must not keep
/// a ramp thread retrying long after the run ended.
StatusOr<std::shared_ptr<FrontendSession>> ConnectWithRetry(
    Cluster* cluster, const std::string& role, int max_attempts,
    int64_t initial_backoff_us, int64_t max_backoff_us, uint64_t* sheds = nullptr,
    const std::atomic<bool>* stop = nullptr, int64_t deadline_us = 0);

/// Drives `options.logical_sessions` callback-chained clients through the
/// front door for the duration. Requires ClusterOptions::frontend.enabled.
FrontendWorkloadResult RunFrontendWorkload(Cluster* cluster,
                                           const FrontendWorkloadOptions& options,
                                           const ScriptFn& script);

}  // namespace gphtap

#endif  // GPHTAP_WORKLOAD_DRIVER_H_
