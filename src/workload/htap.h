// Mixed OLTP+OLAP execution (the paper's HTAP experiments): two client pools —
// an analytical one and a transactional one — run concurrently against the
// same cluster, optionally in different resource groups.
#ifndef GPHTAP_WORKLOAD_HTAP_H_
#define GPHTAP_WORKLOAD_HTAP_H_

#include "workload/chbench.h"
#include "workload/driver.h"

namespace gphtap {

struct HtapConfig {
  int olap_clients = 0;
  int oltp_clients = 0;
  int64_t duration_ms = 2000;
  std::string olap_role;  // resource-group roles (empty = default group)
  std::string oltp_role;
  ChBenchConfig chbench;
  uint64_t seed = 42;
};

struct HtapResult {
  DriverResult olap;
  DriverResult oltp;

  double OlapQph() const { return olap.Tps() * 3600.0; }
  double OltpQpm() const { return oltp.Tps() * 60.0; }
};

/// Runs both pools for the configured duration and reports per-class results.
HtapResult RunHtapWorkload(Cluster* cluster, const HtapConfig& config);

}  // namespace gphtap

#endif  // GPHTAP_WORKLOAD_HTAP_H_
