#include "workload/driver.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "common/clock.h"

namespace gphtap {

std::string DriverResult::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "tps=%.1f committed=%llu aborted=%llu retryable=%llu p50=%lldus p95=%lldus",
                Tps(), static_cast<unsigned long long>(committed),
                static_cast<unsigned long long>(aborted),
                static_cast<unsigned long long>(retryable),
                static_cast<long long>(latency_us.Percentile(50)),
                static_cast<long long>(latency_us.Percentile(95)));
  return buf;
}

DriverResult RunWorkload(Cluster* cluster, const DriverOptions& options, const TxnFn& fn) {
  struct PerClient {
    uint64_t committed = 0;
    uint64_t aborted = 0;
    uint64_t retryable = 0;
    Histogram latency;
    Status fatal;
  };
  std::vector<PerClient> results(static_cast<size_t>(options.num_clients));
  std::atomic<bool> local_stop{false};
  std::atomic<bool>* stop = options.stop != nullptr ? options.stop : &local_stop;

  Stopwatch run_clock;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(options.num_clients));
  for (int c = 0; c < options.num_clients; ++c) {
    clients.emplace_back([&, c] {
      PerClient& out = results[static_cast<size_t>(c)];
      auto session = cluster->Connect(options.role);
      Rng rng(options.seed * 1099511628211ULL + static_cast<uint64_t>(c));
      int64_t deadline = MonotonicMicros() + options.duration_ms * 1000;
      while (!stop->load(std::memory_order_relaxed) && MonotonicMicros() < deadline) {
        Stopwatch txn_clock;
        Status s = fn(session.get(), rng);
        if (s.ok()) {
          ++out.committed;
          out.latency.Record(txn_clock.ElapsedMicros());
        } else if (s.IsAbortLike() || s.code() == StatusCode::kDeadlockDetected) {
          ++out.aborted;
          // The session may sit in a failed block; clear it.
          session->Rollback();
        } else if (s.code() == StatusCode::kUnavailable ||
                   s.code() == StatusCode::kTimedOut) {
          // Segment down / failover in progress: a clean retryable error, not
          // a run-stopping failure. The client rolls back and tries again.
          ++out.retryable;
          session->Rollback();
        } else {
          out.fatal = s;
          break;
        }
      }
      if (session->in_txn()) session->Rollback();
    });
  }
  for (auto& t : clients) t.join();
  double elapsed = run_clock.ElapsedSeconds();

  DriverResult merged;
  merged.seconds = elapsed;  // wall time of the run
  for (auto& r : results) {
    if (!r.fatal.ok()) {
      std::fprintf(stderr, "workload client failed: %s\n", r.fatal.ToString().c_str());
    }
    merged.committed += r.committed;
    merged.aborted += r.aborted;
    merged.retryable += r.retryable;
    merged.latency_us.Merge(r.latency);
  }
  return merged;
}

std::string FrontendWorkloadResult::Summary() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "tps=%.1f committed=%llu aborted=%llu shed=%llu retryable=%llu "
      "reconnects=%llu connect_ok=%llu connect_sheds=%llu connect_failed=%llu "
      "p95=%lldus connect_p99=%lldus",
      Tps(), static_cast<unsigned long long>(committed),
      static_cast<unsigned long long>(aborted), static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(retryable),
      static_cast<unsigned long long>(reconnects),
      static_cast<unsigned long long>(connect_ok),
      static_cast<unsigned long long>(connect_sheds),
      static_cast<unsigned long long>(connect_failed),
      static_cast<long long>(latency_us.Percentile(95)),
      static_cast<long long>(connect_latency_us.Percentile(99)));
  return buf;
}

StatusOr<std::shared_ptr<FrontendSession>> ConnectWithRetry(
    Cluster* cluster, const std::string& role, int max_attempts,
    int64_t initial_backoff_us, int64_t max_backoff_us, uint64_t* sheds,
    const std::atomic<bool>* stop, int64_t deadline_us) {
  int64_t backoff = std::max<int64_t>(1, initial_backoff_us);
  Status last = Status::Unavailable("connect: no attempts made");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return Status::Unavailable("connect aborted: stop requested");
    }
    if (deadline_us > 0 && MonotonicMicros() >= deadline_us) return last;
    auto r = cluster->ConnectLogical(role);
    if (r.ok()) return r;
    last = r.status();
    // Only shed responses are worth retrying here: they are guaranteed
    // no-effect and carry the producer's own backoff estimate.
    if (!IsShedFailure(last)) return last;
    if (sheds != nullptr) ++*sheds;
    int64_t wait = std::max(backoff, last.retry_after_us());
    if (deadline_us > 0) {
      wait = std::min(wait, std::max<int64_t>(0, deadline_us - MonotonicMicros()));
    }
    PreciseSleepUs(wait);
    backoff = std::min(max_backoff_us, backoff * 2);
  }
  return last;
}

namespace {

// The front-door workload engine: each logical session is a callback-chained
// state machine, not a thread. A statement's completion callback (running on
// a front-door pool worker) submits the next statement directly; anything
// that must wait — a shed retry-after, a reconnect backoff — is handed to a
// single pacer thread so pool workers never sleep on the driver's behalf.
class FrontendEngine {
 public:
  FrontendEngine(Cluster* cluster, const FrontendWorkloadOptions& opts,
                 const ScriptFn& script)
      : cluster_(cluster), opts_(opts), script_(script) {}

  FrontendWorkloadResult Run() {
    if (cluster_->frontend() == nullptr) {
      result_.fatal = Status::NotSupported(
          "RunFrontendWorkload requires ClusterOptions::frontend.enabled");
      return std::move(result_);
    }
    std::atomic<bool> local_stop{false};
    stop_ = opts_.stop != nullptr ? opts_.stop : &local_stop;
    deadline_us_ = MonotonicMicros() + opts_.duration_ms * 1000;

    clients_.reserve(static_cast<size_t>(opts_.logical_sessions));
    for (int i = 0; i < opts_.logical_sessions; ++i) {
      auto c = std::make_shared<Client>();
      c->index = i;
      c->rng = Rng(opts_.seed * 1099511628211ULL + static_cast<uint64_t>(i));
      c->backoff_us = opts_.connect_backoff_initial_us;
      clients_.push_back(std::move(c));
    }

    Stopwatch run_clock;
    pacer_ = std::thread([this] { PacerLoop(); });

    // Ramp: a bounded set of driver threads dials the sessions in; once a
    // session is connected its client runs entirely on callbacks.
    int ramp = std::max(1, opts_.ramp_threads);
    std::vector<std::thread> rampers;
    rampers.reserve(static_cast<size_t>(ramp));
    for (int t = 0; t < ramp; ++t) {
      rampers.emplace_back([this, t, ramp] {
        for (size_t i = static_cast<size_t>(t); i < clients_.size();
             i += static_cast<size_t>(ramp)) {
          RampOne(clients_[i]);
        }
      });
    }
    for (auto& t : rampers) t.join();

    // Clients finish themselves at the deadline (checked at txn boundaries
    // and before every pacer retry). The warmup boundary snapshots the live
    // commit counter so steady-state tps excludes ramp + session_init cost.
    uint64_t warm_commits = 0;
    double warm_seconds = 0;
    {
      std::unique_lock<std::mutex> l(mu_);
      if (opts_.warmup_ms > 0) {
        done_cv_.wait_for(l, std::chrono::milliseconds(opts_.warmup_ms),
                          [this] { return active_ == 0; });
        warm_commits = commits_.load(std::memory_order_relaxed);
        warm_seconds = run_clock.ElapsedSeconds();
      }
      done_cv_.wait(l, [this] { return active_ == 0; });
    }
    result_.seconds = run_clock.ElapsedSeconds();
    result_.steady_committed = commits_.load(std::memory_order_relaxed) - warm_commits;
    result_.steady_seconds = result_.seconds - warm_seconds;

    {
      std::lock_guard<std::mutex> g(pacer_mu_);
      pacer_stop_ = true;
    }
    pacer_cv_.notify_all();
    pacer_.join();

    // Close every session (rolls back whatever a deadline-abandoned client
    // left open) before handing the result back.
    for (auto& c : clients_) {
      if (c->fs != nullptr) c->fs->Close();
    }
    return std::move(result_);
  }

 private:
  struct Client {
    int index = 0;
    Rng rng{0};
    std::shared_ptr<FrontendSession> fs;
    std::vector<std::string> txn;  // current transaction script
    size_t stmt = 0;               // next statement in txn
    int64_t txn_start_us = 0;
    int64_t backoff_us = 0;        // current shed/reconnect backoff
    int retry_attempts = 0;
    bool active = false;           // counted in active_ (FinishClient once)
    // Per-client tallies, merged under mu_ when the client finishes.
    uint64_t committed = 0, aborted = 0, shed = 0, retryable = 0, reconnects = 0;
    Histogram latency;
  };
  using ClientPtr = std::shared_ptr<Client>;

  bool Expired() const {
    return stop_->load(std::memory_order_relaxed) || MonotonicMicros() >= deadline_us_;
  }

  void RampOne(const ClientPtr& c) {
    Stopwatch connect_clock;
    uint64_t sheds = 0;
    auto r = ConnectWithRetry(cluster_, opts_.role, opts_.connect_max_attempts,
                              opts_.connect_backoff_initial_us,
                              opts_.connect_backoff_max_us, &sheds, stop_,
                              deadline_us_);
    int64_t connect_us = connect_clock.ElapsedMicros();
    {
      std::lock_guard<std::mutex> g(mu_);
      result_.connect_sheds += sheds;
      if (!r.ok()) {
        ++result_.connect_failed;
        if (!IsShedFailure(r.status()) &&
            r.status().code() != StatusCode::kUnavailable && result_.fatal.ok()) {
          result_.fatal = r.status();
        }
        return;
      }
      ++result_.connect_ok;
      result_.connect_latency_us.Record(connect_us);
      ++active_;
    }
    c->fs = std::move(r).value();
    c->active = true;
    RunInit(c, 0);
  }

  // Session-init statements (PREPAREs), chained like everything else. A
  // retryable failure retries the same statement — skipping a PREPARE would
  // turn every later EXECUTE into a hard error.
  void RunInit(const ClientPtr& c, size_t i) {
    if (Expired()) return FinishClient(c);
    if (i >= opts_.session_init.size()) return StartNextTxn(c);
    SubmitStmt(c, opts_.session_init[i],
               [this, c, i](StatusOr<QueryResult> r) {
                 if (!r.ok()) {
                   if (!Count(c, r.status())) return;
                   return Cleanup(c, [this, c, i] { RunInit(c, i); });
                 }
                 RunInit(c, i + 1);
               },
               [this, c, i] { RunInit(c, i); });
  }

  void StartNextTxn(const ClientPtr& c) {
    if (Expired()) return FinishClient(c);
    c->txn = script_(c->rng);
    c->stmt = 0;
    c->txn_start_us = MonotonicMicros();
    c->backoff_us = opts_.connect_backoff_initial_us;
    c->retry_attempts = 0;
    SubmitCurrent(c);
  }

  void SubmitCurrent(const ClientPtr& c) {
    SubmitStmt(c, c->txn[c->stmt],
               [this, c](StatusOr<QueryResult> r) { OnDone(c, std::move(r)); },
               [this, c] { SubmitCurrent(c); });
  }

  // Submits `sql`; `done` runs on completion, `retry` re-runs the submit
  // after a shed (via the pacer) or a reconnect (session closed under us).
  void SubmitStmt(const ClientPtr& c, const std::string& sql,
                  StatementCallback done, std::function<void()> retry) {
    Status s = c->fs->Submit(sql, std::move(done));
    if (s.ok()) return;
    if (c->fs->closed()) return Reconnect(c, std::move(retry));
    if (IsShedFailure(s)) {
      ++c->shed;
      SchedulePaced(c, std::max(c->backoff_us, s.retry_after_us()), std::move(retry));
      return;
    }
    Fatal(c, s);
  }

  // Completion of a workload statement: advance the chain or classify.
  void OnDone(const ClientPtr& c, StatusOr<QueryResult> r) {
    if (r.ok()) {
      c->backoff_us = opts_.connect_backoff_initial_us;
      ++c->stmt;
      if (c->stmt < c->txn.size()) return SubmitCurrent(c);
      ++c->committed;
      commits_.fetch_add(1, std::memory_order_relaxed);
      c->latency.Record(MonotonicMicros() - c->txn_start_us);
      return StartNextTxn(c);
    }
    if (!Count(c, r.status())) return;
    Cleanup(c, [this, c] { StartNextTxn(c); });
  }

  // Tallies a statement failure. Returns false (and finishes the client) on
  // a non-retryable infrastructure error.
  bool Count(const ClientPtr& c, const Status& s) {
    if (s.IsAbortLike() || s.code() == StatusCode::kDeadlockDetected) {
      ++c->aborted;
      return true;
    }
    if (s.code() == StatusCode::kUnavailable || s.code() == StatusCode::kTimedOut) {
      // Segment down / failover / front-door teardown mid-statement: clean
      // retryable failure; roll back and start over.
      ++c->retryable;
      return true;
    }
    Fatal(c, s);
    return false;
  }

  // Rolls the session out of a failed transaction block, then runs `next`.
  // ROLLBACK outside a transaction is a no-op, so this is safe even when the
  // failure already aborted the transaction remotely.
  void Cleanup(const ClientPtr& c, std::function<void()> next) {
    auto retry = [this, c, next] { Cleanup(c, next); };
    SubmitStmt(c, "ROLLBACK",
               [this, c, next, retry](StatusOr<QueryResult> r) {
                 if (!r.ok()) {
                   if (!Count(c, r.status())) return;
                   // ROLLBACK itself failed (teardown, crash window): pace the
                   // retry so a dying cluster doesn't become a hot loop.
                   return SchedulePaced(c, c->backoff_us, retry);
                 }
                 next();
               },
               retry);
  }

  // The session was closed under the client (idle/login sweep, storm chaos):
  // re-dial through the pacer — never blocking a pool worker — re-run the
  // init script (a fresh Session has no prepared statements), then `resume`.
  void Reconnect(const ClientPtr& c, std::function<void()> resume) {
    ++c->reconnects;
    c->fs = nullptr;
    ReconnectStep(c, std::move(resume));
  }

  void ReconnectStep(const ClientPtr& c, std::function<void()> resume) {
    if (Expired()) return FinishClient(c);
    auto r = cluster_->ConnectLogical(opts_.role);
    if (r.ok()) {
      c->fs = std::move(r).value();
      c->backoff_us = opts_.connect_backoff_initial_us;
      // The old transaction died with the old session; restart from init.
      // `resume` is dropped on purpose: its statement belonged to the dead
      // session's transaction.
      (void)resume;
      return RunInit(c, 0);
    }
    if (r.status().code() != StatusCode::kUnavailable) return Fatal(c, r.status());
    if (IsShedFailure(r.status())) {
      std::lock_guard<std::mutex> g(mu_);
      ++result_.connect_sheds;
    }
    int64_t wait = std::max(c->backoff_us, r.status().retry_after_us());
    c->backoff_us = std::min(opts_.connect_backoff_max_us, c->backoff_us * 2);
    auto again = [this, c, resume = std::move(resume)]() mutable {
      ReconnectStep(c, std::move(resume));
    };
    Pace(wait, std::move(again));
  }

  // Shed-retry with capped exponential backoff stretched by the hint.
  void SchedulePaced(const ClientPtr& c, int64_t wait_us, std::function<void()> fn) {
    c->backoff_us = std::min(opts_.connect_backoff_max_us, c->backoff_us * 2);
    ++c->retry_attempts;
    auto guarded = [this, c, fn = std::move(fn)] {
      if (Expired()) return FinishClient(c);
      fn();
    };
    Pace(wait_us, std::move(guarded));
  }

  void Fatal(const ClientPtr& c, const Status& s) {
    {
      std::lock_guard<std::mutex> g(mu_);
      if (result_.fatal.ok()) result_.fatal = s;
    }
    stop_->store(true, std::memory_order_relaxed);
    FinishClient(c);
  }

  void FinishClient(const ClientPtr& c) {
    if (!c->active) return;
    c->active = false;
    std::lock_guard<std::mutex> g(mu_);
    result_.committed += c->committed;
    result_.aborted += c->aborted;
    result_.shed += c->shed;
    result_.retryable += c->retryable;
    result_.reconnects += c->reconnects;
    result_.latency_us.Merge(c->latency);
    if (--active_ == 0) done_cv_.notify_all();
  }

  // --- Pacer: one thread, a time-ordered multimap of deferred actions. ---
  void Pace(int64_t delay_us, std::function<void()> fn) {
    int64_t due = MonotonicMicros() + std::max<int64_t>(0, delay_us);
    {
      std::lock_guard<std::mutex> g(pacer_mu_);
      paced_.emplace(due, std::move(fn));
    }
    pacer_cv_.notify_one();
  }

  void PacerLoop() {
    std::unique_lock<std::mutex> l(pacer_mu_);
    while (true) {
      if (pacer_stop_) {
        // Remaining actions belong to clients already finished (active_ hit
        // zero before stop) — run them anyway so FinishClient's idempotence
        // is the only invariant; they no-op.
        while (!paced_.empty()) {
          auto fn = std::move(paced_.begin()->second);
          paced_.erase(paced_.begin());
          l.unlock();
          fn();
          l.lock();
        }
        return;
      }
      if (paced_.empty()) {
        pacer_cv_.wait(l);
        continue;
      }
      int64_t due = paced_.begin()->first;
      int64_t now = MonotonicMicros();
      if (now < due) {
        pacer_cv_.wait_for(l, std::chrono::microseconds(due - now));
        continue;
      }
      auto fn = std::move(paced_.begin()->second);
      paced_.erase(paced_.begin());
      l.unlock();
      fn();
      l.lock();
    }
  }

  Cluster* const cluster_;
  const FrontendWorkloadOptions& opts_;
  const ScriptFn& script_;
  std::atomic<bool>* stop_ = nullptr;
  int64_t deadline_us_ = 0;
  std::vector<ClientPtr> clients_;

  std::mutex mu_;  // result_ + active_
  std::condition_variable done_cv_;
  int active_ = 0;
  std::atomic<uint64_t> commits_{0};  // live total (per-client tallies merge late)
  FrontendWorkloadResult result_;

  std::mutex pacer_mu_;
  std::condition_variable pacer_cv_;
  bool pacer_stop_ = false;
  std::multimap<int64_t, std::function<void()>> paced_;
  std::thread pacer_;
};

}  // namespace

FrontendWorkloadResult RunFrontendWorkload(Cluster* cluster,
                                           const FrontendWorkloadOptions& options,
                                           const ScriptFn& script) {
  FrontendEngine engine(cluster, options, script);
  return engine.Run();
}

}  // namespace gphtap
