#include "workload/driver.h"

#include <cstdio>
#include <thread>
#include <vector>

#include "common/clock.h"

namespace gphtap {

std::string DriverResult::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "tps=%.1f committed=%llu aborted=%llu retryable=%llu p50=%lldus p95=%lldus",
                Tps(), static_cast<unsigned long long>(committed),
                static_cast<unsigned long long>(aborted),
                static_cast<unsigned long long>(retryable),
                static_cast<long long>(latency_us.Percentile(50)),
                static_cast<long long>(latency_us.Percentile(95)));
  return buf;
}

DriverResult RunWorkload(Cluster* cluster, const DriverOptions& options, const TxnFn& fn) {
  struct PerClient {
    uint64_t committed = 0;
    uint64_t aborted = 0;
    uint64_t retryable = 0;
    Histogram latency;
    Status fatal;
  };
  std::vector<PerClient> results(static_cast<size_t>(options.num_clients));
  std::atomic<bool> local_stop{false};
  std::atomic<bool>* stop = options.stop != nullptr ? options.stop : &local_stop;

  Stopwatch run_clock;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(options.num_clients));
  for (int c = 0; c < options.num_clients; ++c) {
    clients.emplace_back([&, c] {
      PerClient& out = results[static_cast<size_t>(c)];
      auto session = cluster->Connect(options.role);
      Rng rng(options.seed * 1099511628211ULL + static_cast<uint64_t>(c));
      int64_t deadline = MonotonicMicros() + options.duration_ms * 1000;
      while (!stop->load(std::memory_order_relaxed) && MonotonicMicros() < deadline) {
        Stopwatch txn_clock;
        Status s = fn(session.get(), rng);
        if (s.ok()) {
          ++out.committed;
          out.latency.Record(txn_clock.ElapsedMicros());
        } else if (s.IsAbortLike() || s.code() == StatusCode::kDeadlockDetected) {
          ++out.aborted;
          // The session may sit in a failed block; clear it.
          session->Rollback();
        } else if (s.code() == StatusCode::kUnavailable ||
                   s.code() == StatusCode::kTimedOut) {
          // Segment down / failover in progress: a clean retryable error, not
          // a run-stopping failure. The client rolls back and tries again.
          ++out.retryable;
          session->Rollback();
        } else {
          out.fatal = s;
          break;
        }
      }
      if (session->in_txn()) session->Rollback();
    });
  }
  for (auto& t : clients) t.join();
  double elapsed = run_clock.ElapsedSeconds();

  DriverResult merged;
  merged.seconds = elapsed;  // wall time of the run
  for (auto& r : results) {
    if (!r.fatal.ok()) {
      std::fprintf(stderr, "workload client failed: %s\n", r.fatal.ToString().c_str());
    }
    merged.committed += r.committed;
    merged.aborted += r.aborted;
    merged.retryable += r.retryable;
    merged.latency_us.Merge(r.latency);
  }
  return merged;
}

}  // namespace gphtap
