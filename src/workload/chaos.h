// Chaos-invariant harness (robustness): a seeded RandomFaultScheduler drives
// crash / recover / mirror-promote / net-delay / net-drop faults over the
// existing FaultInjector + SimNet hooks while concurrent TPC-B-style transfer
// sessions and analytical scan sessions hammer the cluster. At the end the
// harness checks the safety invariants no fault schedule may break:
//
//   1. Balance conservation — every transfer moves `delta` between two
//      accounts, so sum(balance) over chaos_accounts is always 0: in every
//      concurrent scan's distributed snapshot AND in the final state.
//   2. No lost writes — every transfer whose COMMIT returned OK has its
//      unique marker row in chaos_history after all segments recover.
//   3. No ghost writes — every marker present in chaos_history belongs to a
//      transfer that was either acknowledged or ended ambiguously (commit
//      verdict unknown at the client); a cleanly-aborted transfer never
//      leaves a trace.
//   4. Classified termination — every session finishes every attempt with a
//      classified outcome (success, retried-success, deadlock victim,
//      timeout, shed, unavailable/aborted) within its deadline budget; no
//      outcome is ever unclassified and no worker outlives the run by more
//      than the statement-timeout slack.
//
// The fault schedule is a pure function of the seed, so a failing run is
// replayable by seed (thread interleaving still varies, but the invariants
// must hold under every interleaving).
#ifndef GPHTAP_WORKLOAD_CHAOS_H_
#define GPHTAP_WORKLOAD_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"

namespace gphtap {

struct ChaosConfig {
  uint64_t seed = 42;
  int64_t duration_ms = 2000;

  int transfer_sessions = 6;  // TPC-B-style two-account transfers
  int scan_sessions = 2;      // analytical sum(balance) scans
  int num_accounts = 64;

  // Per-session statement timeout; also bounds how long a worker may outlive
  // the run end (the classified-termination invariant's slack).
  int64_t statement_timeout_ms = 2000;

  // Fault schedule: one action every [min,max] ms, drawn from the seeded RNG.
  int64_t fault_min_gap_ms = 60;
  int64_t fault_max_gap_ms = 200;
  // Action mix (remaining probability mass clears armed net faults).
  double p_crash = 0.30;
  double p_delay = 0.25;
  double p_drop = 0.25;
  // A crashed primary is recovered (or its mirror promoted by FTS) after this.
  int64_t crash_recover_after_ms = 150;
  // At most this many primaries down at once (keeps the cluster availble
  // enough that retries can eventually succeed).
  int max_down = 1;

  // --- Online reorg / expansion events (ride the same seeded schedule) ---
  // A maintenance session issues VACUUM and CLUSTER against the chaos tables
  // while transfers flow, including deliberate BEGIN; CLUSTER; ABORT cycles
  // followed by a committed retry.
  bool reorg_enabled = false;
  int64_t reorg_min_gap_ms = 80;
  int64_t reorg_max_gap_ms = 250;
  // When > 0, the harness adds this many segments a third of the way into the
  // run and rebalances every chaos table onto them, retrying (crashes land on
  // sources mid-copy) until the cutover completes.
  int expand_segments = 0;

  // --- Delta-store seal-under-crash (requires delta_store_enabled on the
  // cluster) --- A seal worker drives Cluster::SealDeltaNow against random
  // segments throughout the run, so seal passes race crashes, recoveries, and
  // the write traffic; a seal pass landing on a crashed segment must fail
  // cleanly and never corrupt the merged-scan answer.
  bool delta_seal_enabled = false;
  int64_t seal_min_gap_ms = 15;
  int64_t seal_max_gap_ms = 60;

  // --- Observability-under-chaos --- A reader session cycles through the
  // stats system views (gp_stat_statements, gp_stat_history, gp_stat_progress,
  // gp_metrics, gp_stat_activity) while the fault schedule and the write
  // traffic run. View scans are coordinator-only, so they must keep answering
  // (never crash, never corrupt) no matter what the schedule does to segments.
  bool views_reader_enabled = false;

  // --- Connection storm (requires frontend.enabled on the cluster) ---
  // When > 0, this many logical sessions ramp in through the front door while
  // the fault schedule runs, each one looping markerless two-account
  // transfers once admitted (balance conservation covers them; no marker
  // bookkeeping so the storm scales to tens of thousands of sessions). Every
  // rejected connect must be a shed — a retryable kUnavailable carrying a
  // retry-after hint; any other rejection shape is a violation.
  int storm_sessions = 0;
  int storm_ramp_threads = 4;
};

struct ChaosReport {
  // Transfer outcomes (every attempt lands in exactly one bucket).
  uint64_t transfers_attempted = 0;
  uint64_t transfers_committed = 0;  // COMMIT acknowledged OK
  uint64_t transfers_ambiguous = 0;  // COMMIT returned an error: verdict unknown
  uint64_t deadlock_victims = 0;
  uint64_t timeouts = 0;
  uint64_t shed = 0;
  uint64_t unavailable = 0;
  uint64_t aborted_other = 0;

  // Scan outcomes.
  uint64_t scans_attempted = 0;
  uint64_t scans_ok = 0;
  uint64_t scans_retried_ok = 0;  // succeeded after transparent statement retry
  uint64_t scan_failures = 0;     // classified failures (also bucketed above)

  // Online reorg / expansion events (when the config enables them).
  uint64_t reorg_ops = 0;       // VACUUM / CLUSTER statements that ran OK
  uint64_t reorg_aborts = 0;    // deliberate BEGIN; CLUSTER; ABORT cycles
  uint64_t reorg_failures = 0;  // reorg statements that failed under chaos
  uint64_t rebalance_attempts = 0;
  bool expanded = false;        // AddSegments took effect mid-run
  bool rebalanced = false;      // every chaos table completed its cutover

  // Delta-store seal passes (when the config enables them). Failures are
  // expected — a seal pass racing a crashed segment fails cleanly — but they
  // must stay failures, never corruption.
  uint64_t seal_passes = 0;
  uint64_t seal_failures = 0;

  // Stats-view reads under chaos (when the config enables the reader).
  uint64_t view_reads = 0;
  uint64_t view_read_failures = 0;

  // Connection-storm outcomes (when storm_sessions > 0). Sheds and statement
  // failures are expected under the schedule — what is checked is that every
  // one of them is classified and that the invariants above still hold.
  uint64_t storm_connect_ok = 0;
  uint64_t storm_connect_shed = 0;    // shed connects (classified, retried)
  uint64_t storm_connect_failed = 0;  // clients whose retry budget ran out
  uint64_t storm_committed = 0;       // storm transfers acknowledged
  uint64_t storm_failures = 0;        // classified statement failures
  uint64_t storm_reconnects = 0;      // sessions re-dialed after a close

  // Fault schedule actually executed.
  uint64_t faults_injected = 0;
  uint64_t crashes = 0;
  uint64_t recoveries = 0;
  uint64_t mirror_promotions = 0;
  std::vector<int64_t> recovery_latencies_us;  // crash -> back-up, per crash

  // Empty when every invariant held; otherwise one message per violation.
  std::vector<std::string> violations;
  bool invariants_ok() const { return violations.empty(); }

  std::string ToString() const;
};

/// Creates + loads chaos_accounts / chaos_history (idempotent per cluster).
Status SetupChaosTables(Cluster* cluster, const ChaosConfig& config);

/// Runs the full chaos schedule against an already-set-up cluster and returns
/// the classified outcomes + invariant verdicts. Never throws; infrastructure
/// errors land in `violations`.
ChaosReport RunChaosWorkload(Cluster* cluster, const ChaosConfig& config);

}  // namespace gphtap

#endif  // GPHTAP_WORKLOAD_CHAOS_H_
