#include "workload/chaos.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "cluster/session.h"
#include "common/clock.h"
#include "common/rng.h"
#include "net/sim_net.h"
#include "workload/driver.h"

namespace gphtap {

namespace {

// Shared, mutex-guarded accumulation of outcomes + marker sets. Workers only
// touch it between transactions, so contention is negligible.
struct ChaosState {
  std::mutex mu;
  ChaosReport report;
  std::unordered_set<int64_t> committed;  // markers with an acknowledged COMMIT
  std::unordered_set<int64_t> ambiguous;  // markers whose COMMIT verdict is unknown

  void Violation(std::string msg) {
    std::lock_guard<std::mutex> g(mu);
    report.violations.push_back(std::move(msg));
  }
};

// Buckets a failed statement/transaction status. Caller holds state->mu.
void ClassifyLocked(const Status& s, ChaosReport* r) {
  switch (s.code()) {
    case StatusCode::kDeadlockDetected:
      ++r->deadlock_victims;
      break;
    case StatusCode::kTimedOut:
      ++r->timeouts;
      break;
    case StatusCode::kResourceExhausted:
      ++r->shed;
      break;
    case StatusCode::kUnavailable:
      ++r->unavailable;
      break;
    default:
      ++r->aborted_other;
      break;
  }
}

// Sleeps until `target_us` (or `hard_stop_us`, whichever is earlier) in small
// chunks so the scheduler reacts to the end of the run promptly.
void SleepUntil(int64_t target_us, int64_t hard_stop_us) {
  while (true) {
    int64_t now = MonotonicMicros();
    int64_t stop = std::min(target_us, hard_stop_us);
    if (now >= stop) return;
    PreciseSleepUs(std::min<int64_t>(stop - now, 20'000));
  }
}

void TransferWorker(Cluster* cluster, const ChaosConfig& cfg, int worker_id,
                    int64_t end_us, std::atomic<int64_t>* next_marker,
                    ChaosState* state) {
  auto session = cluster->Connect();
  session->set_statement_timeout_us(cfg.statement_timeout_ms * 1000);
  Rng rng(cfg.seed * 7919 + static_cast<uint64_t>(worker_id));
  while (MonotonicMicros() < end_us) {
    int64_t marker = next_marker->fetch_add(1, std::memory_order_relaxed);
    int64_t from = rng.UniformRange(1, cfg.num_accounts);
    int64_t to = rng.UniformRange(1, cfg.num_accounts);
    if (to == from) to = to % cfg.num_accounts + 1;
    int64_t delta = rng.UniformRange(1, 1000);
    {
      std::lock_guard<std::mutex> g(state->mu);
      ++state->report.transfers_attempted;
    }
    Status s = session->Execute("BEGIN").status();
    if (s.ok()) {
      s = session
              ->Execute("UPDATE chaos_accounts SET balance = balance + " +
                        std::to_string(delta) + " WHERE aid = " + std::to_string(from))
              .status();
    }
    if (s.ok()) {
      s = session
              ->Execute("UPDATE chaos_accounts SET balance = balance - " +
                        std::to_string(delta) + " WHERE aid = " + std::to_string(to))
              .status();
    }
    if (s.ok()) {
      s = session
              ->Execute("INSERT INTO chaos_history (marker, aid_from, aid_to, delta) "
                        "VALUES (" +
                        std::to_string(marker) + ", " + std::to_string(from) + ", " +
                        std::to_string(to) + ", " + std::to_string(delta) + ")")
              .status();
    }
    if (!s.ok()) {
      // A failed statement already aborted the transaction; Rollback just
      // clears the failed block. The transfer left no trace (checked later).
      session->Rollback();
      std::lock_guard<std::mutex> g(state->mu);
      ClassifyLocked(s, &state->report);
      continue;
    }
    Status commit = session->Execute("COMMIT").status();
    std::lock_guard<std::mutex> g(state->mu);
    if (commit.ok()) {
      ++state->report.transfers_committed;
      state->committed.insert(marker);
    } else {
      // The commit verdict is unknown at the client (e.g. the ack was lost
      // past the commit point, or the retry horizon expired): the marker may
      // or may not be durable, and both are legal.
      ++state->report.transfers_ambiguous;
      state->ambiguous.insert(marker);
    }
  }
}

void ScanWorker(Cluster* cluster, const ChaosConfig& cfg, int worker_id,
                int64_t end_us, ChaosState* state) {
  auto session = cluster->Connect();
  session->set_statement_timeout_us(cfg.statement_timeout_ms * 1000);
  Rng rng(cfg.seed * 104729 + static_cast<uint64_t>(worker_id));
  while (MonotonicMicros() < end_us) {
    {
      std::lock_guard<std::mutex> g(state->mu);
      ++state->report.scans_attempted;
    }
    uint64_t retries_before = session->stats().statement_retries;
    auto r = session->Execute("SELECT sum(balance) FROM chaos_accounts");
    if (r.ok()) {
      int64_t sum = 0;
      if (!r->rows.empty() && !r->rows[0][0].is_null()) sum = r->rows[0][0].int_val();
      if (sum != 0) {
        // Every transfer moves delta between two accounts atomically, so any
        // distributed-snapshot-consistent scan must see a zero sum.
        state->Violation("snapshot inconsistency: concurrent scan saw sum(balance)=" +
                         std::to_string(sum));
      }
      std::lock_guard<std::mutex> g(state->mu);
      ++state->report.scans_ok;
      if (session->stats().statement_retries > retries_before) {
        ++state->report.scans_retried_ok;
      }
    } else {
      std::lock_guard<std::mutex> g(state->mu);
      ++state->report.scan_failures;
      ClassifyLocked(r.status(), &state->report);
    }
    PreciseSleepUs(rng.UniformRange(1000, 5000));
  }
}

// Online-reorg chaos: a maintenance session interleaves VACUUM and CLUSTER
// (including deliberate BEGIN; CLUSTER; ABORT; retry cycles) with the
// transfer/scan traffic. Reorg statements may fail under the fault schedule
// (timeouts, deadlock victims, crashed segments) — that is the point; the
// safety invariants must hold regardless.
void MaintenanceWorker(Cluster* cluster, const ChaosConfig& cfg, int64_t end_us,
                       ChaosState* state) {
  auto session = cluster->Connect();
  session->set_statement_timeout_us(cfg.statement_timeout_ms * 1000);
  Rng rng(cfg.seed * 15485863 + 11);
  const std::string tables[] = {"chaos_accounts", "chaos_history"};
  while (MonotonicMicros() < end_us) {
    SleepUntil(MonotonicMicros() +
                   rng.UniformRange(cfg.reorg_min_gap_ms, cfg.reorg_max_gap_ms) * 1000,
               end_us);
    if (MonotonicMicros() >= end_us) break;
    const std::string& table = tables[rng.Uniform(2)];
    Status s;
    double pick = rng.NextDouble();
    if (pick < 0.4) {
      s = session->Execute("VACUUM " + table).status();
    } else if (pick < 0.7) {
      s = session->Execute("CLUSTER " + table + " USING aid").status();
      if (!s.ok() && table == "chaos_history") {
        s = session->Execute("CLUSTER " + table).status();
      }
    } else {
      // Abort mid-CLUSTER, then retry committed: the rewrite must roll back
      // cleanly every time and the retry must start from an intact table.
      if (session->Execute("BEGIN").ok()) {
        Status cl = session->Execute("CLUSTER " + table).status();
        session->Rollback();
        if (cl.ok()) {
          std::lock_guard<std::mutex> g(state->mu);
          ++state->report.reorg_aborts;
        }
      }
      s = session->Execute("CLUSTER " + table).status();
    }
    std::lock_guard<std::mutex> g(state->mu);
    if (s.ok()) {
      ++state->report.reorg_ops;
    } else {
      ++state->report.reorg_failures;
    }
  }
}

// Expansion chaos: a third of the way into the run, grow the cluster and
// rebalance every chaos table onto the new width while transfers, scans,
// reorg, and the fault schedule all keep running. Rebalance attempts that die
// under chaos (a source crashes mid-copy, the cutover times out, a deadlock
// picks us as victim) leave the table consistent and are simply retried; the
// scheduler heals its crashes at run end, so the retry loop converges shortly
// after even on hostile schedules.
void ExpandWorker(Cluster* cluster, const ChaosConfig& cfg, int64_t end_us,
                  ChaosState* state) {
  const int64_t start_us = end_us - cfg.duration_ms * 1000;
  SleepUntil(start_us + cfg.duration_ms * 1000 / 3, end_us);

  auto grown = cluster->AddSegments(cfg.expand_segments);
  if (!grown.ok()) {
    state->Violation("AddSegments failed: " + grown.status().message());
    return;
  }
  {
    std::lock_guard<std::mutex> g(state->mu);
    state->report.expanded = true;
  }

  auto session = cluster->Connect();
  session->set_statement_timeout_us(cfg.statement_timeout_ms * 1000);
  // Retry budget past run end: the fault scheduler force-heals its crashes at
  // end_us, so a handful of statement timeouts of slack is enough to converge.
  const int64_t deadline_us = end_us + 8 * cfg.statement_timeout_ms * 1000;
  Rng rng(cfg.seed * 32452843 + 13);
  for (const char* table : {"chaos_accounts", "chaos_history"}) {
    bool done = false;
    while (!done && MonotonicMicros() < deadline_us) {
      {
        std::lock_guard<std::mutex> g(state->mu);
        ++state->report.rebalance_attempts;
      }
      auto report = session->RebalanceTable(table);
      if (report.ok() && report->cutover_complete) {
        done = true;
        break;
      }
      PreciseSleepUs(rng.UniformRange(20, 120) * 1000);
    }
    if (!done) {
      state->Violation(std::string("rebalance of ") + table +
                       " never completed within the retry budget");
      return;
    }
  }
  std::lock_guard<std::mutex> g(state->mu);
  state->report.rebalanced = true;
}

// Seal-under-crash chaos: force delta-store seal passes on random segments
// while the fault schedule crashes and recovers them. A pass hitting a downed
// segment fails cleanly (counted, tolerated); a pass that succeeds must leave
// the merged scan's answer untouched — the invariant scans running alongside
// catch any corruption.
void SealWorker(Cluster* cluster, const ChaosConfig& cfg, int64_t end_us,
                ChaosState* state) {
  Rng rng(cfg.seed * 982451653 + 17);
  while (MonotonicMicros() < end_us) {
    SleepUntil(MonotonicMicros() +
                   rng.UniformRange(cfg.seal_min_gap_ms, cfg.seal_max_gap_ms) * 1000,
               end_us);
    if (MonotonicMicros() >= end_us) break;
    int idx =
        static_cast<int>(rng.Uniform(static_cast<uint64_t>(cluster->num_segments())));
    Status s = cluster->SealDeltaNow(idx);
    std::lock_guard<std::mutex> g(state->mu);
    if (s.ok()) {
      ++state->report.seal_passes;
    } else {
      ++state->report.seal_failures;
    }
  }
}

// Observability-under-chaos: hammer the stats system views while segments
// crash, recover, and rebalance underneath. The views snapshot coordinator
// state, so every read should answer; failures are counted (a statement
// timeout under heavy fault load is tolerable) but must stay clean failures.
void ViewsReaderWorker(Cluster* cluster, const ChaosConfig& cfg, int worker_id,
                       int64_t end_us, ChaosState* state) {
  auto session = cluster->Connect();
  session->set_statement_timeout_us(cfg.statement_timeout_ms * 1000);
  Rng rng(cfg.seed * 179424673 + static_cast<uint64_t>(worker_id) + 19);
  const std::string views[] = {"gp_stat_statements", "gp_stat_history",
                               "gp_stat_progress", "gp_metrics",
                               "gp_stat_activity"};
  while (MonotonicMicros() < end_us) {
    const std::string& view = views[rng.Uniform(5)];
    auto r = session->Execute("SELECT * FROM " + view);
    std::lock_guard<std::mutex> g(state->mu);
    ++state->report.view_reads;
    if (!r.ok()) ++state->report.view_read_failures;
  }
}

// Connection-storm chaos: ramp storm_sessions logical sessions through the
// front door while the fault schedule crashes segments underneath, each one
// looping markerless two-account transfers once admitted. The front-door
// workload engine already embodies the client contract under test — sheds are
// retried after the retry-after hint, closed sessions are re-dialed — so the
// storm reuses it and converts anything the engine could NOT classify
// (result.fatal) into an invariant violation. Balance conservation over
// chaos_accounts covers the storm's writes: the concurrent scans and the
// final sum see every storm transfer or none of it.
void ConnectionStormWorker(Cluster* cluster, const ChaosConfig& cfg, int64_t end_us,
                           ChaosState* state) {
  if (cluster->frontend() == nullptr) {
    state->Violation("connection storm requires ClusterOptions::frontend.enabled");
    return;
  }
  FrontendWorkloadOptions opts;
  opts.logical_sessions = cfg.storm_sessions;
  opts.duration_ms = std::max<int64_t>(1, (end_us - MonotonicMicros()) / 1000);
  opts.seed = cfg.seed * 6700417 + 23;
  opts.ramp_threads = cfg.storm_ramp_threads;
  // Bound every storm statement the same way direct chaos sessions are
  // bounded, so the classified-termination slack applies to the storm too.
  opts.session_init = {"SET statement_timeout = " +
                       std::to_string(cfg.statement_timeout_ms)};
  const int64_t num = cfg.num_accounts;
  FrontendWorkloadResult r = RunFrontendWorkload(
      cluster, opts, [num](Rng& rng) {
        int64_t from = rng.UniformRange(1, num);
        int64_t to = rng.UniformRange(1, num);
        if (to == from) to = to % num + 1;
        std::string d = std::to_string(rng.UniformRange(1, 1000));
        return std::vector<std::string>{
            "BEGIN",
            "UPDATE chaos_accounts SET balance = balance + " + d +
                " WHERE aid = " + std::to_string(from),
            "UPDATE chaos_accounts SET balance = balance - " + d +
                " WHERE aid = " + std::to_string(to),
            "COMMIT"};
      });
  std::lock_guard<std::mutex> g(state->mu);
  ChaosReport& rep = state->report;
  rep.storm_connect_ok += r.connect_ok;
  rep.storm_connect_shed += r.connect_sheds;
  rep.storm_connect_failed += r.connect_failed;
  rep.storm_committed += r.committed;
  rep.storm_failures += r.aborted + r.retryable + r.shed;
  rep.storm_reconnects += r.reconnects;
  if (!r.fatal.ok()) {
    rep.violations.push_back("connection storm: unclassified failure: " +
                             r.fatal.ToString());
  }
}

// The seeded fault scheduler: draws one action per gap from the run's RNG and
// heals its own damage (crashed primaries recover after a delay; armed net
// faults are cleared by the periodic "clear" action and at teardown).
void FaultScheduler(Cluster* cluster, const ChaosConfig& cfg, int64_t end_us,
                    ChaosState* state) {
  Rng rng(cfg.seed ^ 0x5eed5eed5eed5eedULL);
  FaultInjector& faults = cluster->faults();
  struct Crash {
    int segment;
    int64_t at_us;
  };
  std::vector<Crash> down;
  std::unordered_set<std::string> armed;

  const MsgKind delay_kinds[] = {MsgKind::kTupleData, MsgKind::kDispatch,
                                 MsgKind::kCommitAck, MsgKind::kPrepareAck};
  const MsgKind drop_kinds[] = {MsgKind::kCommit, MsgKind::kCommitAck,
                                MsgKind::kPrepare, MsgKind::kPrepareAck};

  auto recover_due = [&](bool force) {
    int64_t now = MonotonicMicros();
    for (auto it = down.begin(); it != down.end();) {
      if (!force && now - it->at_us < cfg.crash_recover_after_ms * 1000) {
        ++it;
        continue;
      }
      bool already_up = false;
      for (const SegmentHealthInfo& info : cluster->Health().segments) {
        if (info.index == it->segment && info.up) already_up = true;
      }
      Status rs = Status::OK();
      if (!already_up) {
        rs = cluster->RecoverSegment(it->segment);
        if (!rs.ok()) {
          // The health probe above races FTS: a promotion landing between it
          // and Recover() makes Recover() fail on an up segment. That is the
          // promotion case, not a failed recovery.
          for (const SegmentHealthInfo& info : cluster->Health().segments) {
            if (info.index == it->segment && info.up) {
              already_up = true;
              rs = Status::OK();
            }
          }
        }
      }
      std::lock_guard<std::mutex> g(state->mu);
      if (already_up) {
        // FTS promoted the mirror before our recovery was due.
        ++state->report.mirror_promotions;
      } else if (!rs.ok()) {
        state->report.violations.push_back("recovery of segment " +
                                           std::to_string(it->segment) +
                                           " failed: " + rs.message());
      }
      ++state->report.recoveries;
      state->report.recovery_latencies_us.push_back(MonotonicMicros() - it->at_us);
      it = down.erase(it);
    }
  };

  while (MonotonicMicros() < end_us) {
    int64_t gap_us = rng.UniformRange(cfg.fault_min_gap_ms, cfg.fault_max_gap_ms) * 1000;
    SleepUntil(MonotonicMicros() + gap_us, end_us);
    recover_due(/*force=*/false);
    if (MonotonicMicros() >= end_us) break;

    double pick = rng.NextDouble();
    if (pick < cfg.p_crash) {
      if (static_cast<int>(down.size()) < cfg.max_down) {
        int idx = static_cast<int>(rng.Uniform(static_cast<uint64_t>(cluster->num_segments())));
        if (cluster->CrashSegment(idx).ok()) {
          down.push_back({idx, MonotonicMicros()});
          std::lock_guard<std::mutex> g(state->mu);
          ++state->report.crashes;
          ++state->report.faults_injected;
        }
      }
    } else if (pick < cfg.p_crash + cfg.p_delay) {
      MsgKind kind = delay_kinds[rng.Uniform(4)];
      faults.ArmDelay(NetDelayPoint(kind), rng.UniformRange(300, 2500));
      armed.insert(NetDelayPoint(kind));
      std::lock_guard<std::mutex> g(state->mu);
      ++state->report.faults_injected;
    } else if (pick < cfg.p_crash + cfg.p_delay + cfg.p_drop) {
      MsgKind kind = drop_kinds[rng.Uniform(4)];
      faults.ArmProbability(NetDropPoint(kind), 0.02 + 0.10 * rng.NextDouble(),
                            rng.Next());
      armed.insert(NetDropPoint(kind));
      std::lock_guard<std::mutex> g(state->mu);
      ++state->report.faults_injected;
    } else {
      for (const std::string& point : armed) faults.Disarm(point);
      armed.clear();
    }
  }

  // Teardown: stop injecting, heal everything we broke.
  for (const std::string& point : armed) faults.Disarm(point);
  recover_due(/*force=*/true);
}

}  // namespace

std::string ChaosReport::ToString() const {
  std::string out;
  out += "transfers: attempted=" + std::to_string(transfers_attempted) +
         " committed=" + std::to_string(transfers_committed) +
         " ambiguous=" + std::to_string(transfers_ambiguous) + "\n";
  out += "failures: deadlock=" + std::to_string(deadlock_victims) +
         " timeout=" + std::to_string(timeouts) + " shed=" + std::to_string(shed) +
         " unavailable=" + std::to_string(unavailable) +
         " other=" + std::to_string(aborted_other) + "\n";
  out += "scans: attempted=" + std::to_string(scans_attempted) +
         " ok=" + std::to_string(scans_ok) +
         " retried_ok=" + std::to_string(scans_retried_ok) +
         " failed=" + std::to_string(scan_failures) + "\n";
  if (reorg_ops + reorg_failures + rebalance_attempts > 0) {
    out += "reorg: ok=" + std::to_string(reorg_ops) +
           " aborted_cycles=" + std::to_string(reorg_aborts) +
           " failed=" + std::to_string(reorg_failures) +
           " rebalance_attempts=" + std::to_string(rebalance_attempts) +
           " expanded=" + std::to_string(expanded) +
           " rebalanced=" + std::to_string(rebalanced) + "\n";
  }
  if (seal_passes + seal_failures > 0) {
    out += "delta seals: ok=" + std::to_string(seal_passes) +
           " failed=" + std::to_string(seal_failures) + "\n";
  }
  if (view_reads > 0) {
    out += "view reads: ok=" + std::to_string(view_reads - view_read_failures) +
           " failed=" + std::to_string(view_read_failures) + "\n";
  }
  if (storm_connect_ok + storm_connect_shed + storm_connect_failed > 0) {
    out += "storm: connected=" + std::to_string(storm_connect_ok) +
           " shed=" + std::to_string(storm_connect_shed) +
           " failed=" + std::to_string(storm_connect_failed) +
           " committed=" + std::to_string(storm_committed) +
           " failures=" + std::to_string(storm_failures) +
           " reconnects=" + std::to_string(storm_reconnects) + "\n";
  }
  out += "faults: injected=" + std::to_string(faults_injected) +
         " crashes=" + std::to_string(crashes) +
         " recoveries=" + std::to_string(recoveries) +
         " promotions=" + std::to_string(mirror_promotions) + "\n";
  out += "invariants: " +
         (violations.empty() ? std::string("OK")
                             : std::to_string(violations.size()) + " violation(s)") +
         "\n";
  for (const std::string& v : violations) out += "  VIOLATION: " + v + "\n";
  return out;
}

Status SetupChaosTables(Cluster* cluster, const ChaosConfig& config) {
  auto session = cluster->Connect();
  GPHTAP_RETURN_IF_ERROR(
      session
          ->Execute("CREATE TABLE chaos_accounts (aid int, balance int) "
                    "DISTRIBUTED BY (aid)")
          .status());
  GPHTAP_RETURN_IF_ERROR(
      session
          ->Execute("CREATE TABLE chaos_history (marker int, aid_from int, "
                    "aid_to int, delta int) DISTRIBUTED BY (marker)")
          .status());
  GPHTAP_ASSIGN_OR_RETURN(TableDef accounts, cluster->LookupTable("chaos_accounts"));
  std::vector<Row> rows;
  for (int64_t aid = 1; aid <= config.num_accounts; ++aid) {
    rows.push_back(Row{Datum(aid), Datum(int64_t{0})});
  }
  GPHTAP_RETURN_IF_ERROR(session->ExecuteInsert(accounts, rows).status());
  GPHTAP_RETURN_IF_ERROR(cluster->CreateIndex("chaos_accounts", "aid"));
  return Status::OK();
}

ChaosReport RunChaosWorkload(Cluster* cluster, const ChaosConfig& config) {
  ChaosState state;
  std::atomic<int64_t> next_marker{1};
  const int64_t start_us = MonotonicMicros();
  const int64_t end_us = start_us + config.duration_ms * 1000;

  std::vector<std::thread> threads;
  std::vector<int64_t> finished_at(
      static_cast<size_t>(config.transfer_sessions + config.scan_sessions), 0);
  for (int i = 0; i < config.transfer_sessions; ++i) {
    threads.emplace_back([&, i] {
      TransferWorker(cluster, config, i, end_us, &next_marker, &state);
      finished_at[static_cast<size_t>(i)] = MonotonicMicros();
    });
  }
  for (int i = 0; i < config.scan_sessions; ++i) {
    threads.emplace_back([&, i] {
      ScanWorker(cluster, config, i, end_us, &state);
      finished_at[static_cast<size_t>(config.transfer_sessions + i)] = MonotonicMicros();
    });
  }
  std::thread scheduler(
      [&] { FaultScheduler(cluster, config, end_us, &state); });
  std::vector<std::thread> maintenance;
  if (config.reorg_enabled) {
    maintenance.emplace_back(
        [&] { MaintenanceWorker(cluster, config, end_us, &state); });
  }
  if (config.expand_segments > 0) {
    maintenance.emplace_back(
        [&] { ExpandWorker(cluster, config, end_us, &state); });
  }
  if (config.delta_seal_enabled) {
    maintenance.emplace_back(
        [&] { SealWorker(cluster, config, end_us, &state); });
  }
  if (config.views_reader_enabled) {
    maintenance.emplace_back(
        [&] { ViewsReaderWorker(cluster, config, 0, end_us, &state); });
  }
  if (config.storm_sessions > 0) {
    maintenance.emplace_back(
        [&] { ConnectionStormWorker(cluster, config, end_us, &state); });
  }

  for (auto& t : threads) t.join();
  scheduler.join();
  for (auto& t : maintenance) t.join();

  // Invariant 4 (classified termination): every worker finished within the
  // statement-timeout slack of the run end. A transfer's last transaction is
  // at most five statement timeouts plus the commit-retry horizon.
  const int64_t slack_us = 5 * config.statement_timeout_ms * 1000 +
                           cluster->options().commit_retry_deadline_us + 1'000'000;
  for (size_t i = 0; i < finished_at.size(); ++i) {
    if (finished_at[i] > end_us + slack_us) {
      state.Violation("worker " + std::to_string(i) + " outlived its deadline by " +
                      std::to_string(finished_at[i] - end_us) + "us");
    }
  }

  // Heal any damage FTS / the scheduler left behind, then verify final state.
  for (const SegmentHealthInfo& info : cluster->Health().segments) {
    if (!info.up) {
      Status rs = cluster->RecoverSegment(info.index);
      if (!rs.ok()) {
        // FTS is still probing here and can promote the mirror between the
        // health read and Recover(); up-by-promotion is healed, not failed.
        bool now_up = false;
        for (const SegmentHealthInfo& after : cluster->Health().segments) {
          if (after.index == info.index && after.up) now_up = true;
        }
        if (!now_up) {
          state.Violation("final recovery of segment " + std::to_string(info.index) +
                          " failed: " + rs.message());
        }
      }
    }
  }
  cluster->faults().DisarmAll();

  auto session = cluster->Connect();  // no statement timeout: verification must finish
  auto get_rows = [&](const std::string& sql) -> StatusOr<QueryResult> {
    return session->Execute(sql);
  };

  // Invariant 1: balance conservation in the final (fully recovered) state.
  auto sum_r = get_rows("SELECT sum(balance) FROM chaos_accounts");
  if (!sum_r.ok()) {
    state.Violation("final balance scan failed: " + sum_r.status().message());
  } else {
    int64_t sum = 0;
    if (!sum_r->rows.empty() && !sum_r->rows[0][0].is_null()) {
      sum = sum_r->rows[0][0].int_val();
    }
    if (sum != 0) {
      state.Violation("balance conservation violated: final sum(balance)=" +
                      std::to_string(sum));
    }
  }

  // Invariants 2 + 3: the set of markers durable in chaos_history must contain
  // every acknowledged transfer (no lost writes) and nothing outside
  // acknowledged-or-ambiguous (no ghost writes).
  auto hist_r = get_rows("SELECT marker FROM chaos_history");
  if (!hist_r.ok()) {
    state.Violation("final history scan failed: " + hist_r.status().message());
  } else {
    std::unordered_set<int64_t> durable;
    for (const Row& row : hist_r->rows) {
      if (!row.empty() && !row[0].is_null()) durable.insert(row[0].int_val());
    }
    std::lock_guard<std::mutex> g(state.mu);
    for (int64_t marker : state.committed) {
      if (!durable.count(marker)) {
        state.report.violations.push_back(
            "lost write: committed transfer " + std::to_string(marker) +
            " missing from chaos_history after recovery");
      }
    }
    for (int64_t marker : durable) {
      if (!state.committed.count(marker) && !state.ambiguous.count(marker)) {
        state.report.violations.push_back(
            "ghost write: transfer " + std::to_string(marker) +
            " present in chaos_history but never acknowledged");
      }
    }
  }

  // Classified-termination bookkeeping: every attempt landed in a bucket.
  {
    std::lock_guard<std::mutex> g(state.mu);
    ChaosReport& r = state.report;
    uint64_t classified = r.transfers_committed + r.transfers_ambiguous + r.scans_ok +
                          r.deadlock_victims + r.timeouts + r.shed + r.unavailable +
                          r.aborted_other;
    if (classified != r.transfers_attempted + r.scans_attempted) {
      r.violations.push_back(
          "unclassified outcomes: attempted=" +
          std::to_string(r.transfers_attempted + r.scans_attempted) +
          " classified=" + std::to_string(classified));
    }
  }

  std::lock_guard<std::mutex> g(state.mu);
  return state.report;
}

}  // namespace gphtap
