#include "workload/tpcb.h"

namespace gphtap {

Status LoadTpcb(Cluster* cluster, const TpcbConfig& config) {
  auto session = cluster->Connect();
  GPHTAP_RETURN_IF_ERROR(
      session->Execute("CREATE TABLE pgbench_branches (bid int, bbalance int) "
                       "DISTRIBUTED BY (bid)")
          .status());
  GPHTAP_RETURN_IF_ERROR(
      session->Execute("CREATE TABLE pgbench_tellers (tid int, bid int, tbalance int) "
                       "DISTRIBUTED BY (tid)")
          .status());
  GPHTAP_RETURN_IF_ERROR(
      session
          ->Execute("CREATE TABLE pgbench_accounts (aid int, bid int, abalance int) "
                    "DISTRIBUTED BY (aid)")
          .status());
  GPHTAP_RETURN_IF_ERROR(
      session
          ->Execute("CREATE TABLE pgbench_history (tid int, bid int, aid int, delta int) "
                    "DISTRIBUTED BY (aid)")
          .status());

  // Bulk load through the programmatic API (no per-row SQL parse).
  auto insert_rows = [&](const char* table, std::vector<Row> rows) -> Status {
    GPHTAP_ASSIGN_OR_RETURN(TableDef def, cluster->LookupTable(table));
    return session->ExecuteInsert(def, rows).status();
  };

  std::vector<Row> rows;
  for (int64_t b = 1; b <= config.scale; ++b) {
    rows.push_back(Row{Datum(b), Datum(int64_t{0})});
  }
  GPHTAP_RETURN_IF_ERROR(insert_rows("pgbench_branches", std::move(rows)));

  rows.clear();
  for (int64_t t = 1; t <= config.num_tellers(); ++t) {
    int64_t bid = (t - 1) / config.tellers_per_branch + 1;
    rows.push_back(Row{Datum(t), Datum(bid), Datum(int64_t{0})});
  }
  GPHTAP_RETURN_IF_ERROR(insert_rows("pgbench_tellers", std::move(rows)));

  rows.clear();
  constexpr int64_t kBatch = 20000;
  for (int64_t a = 1; a <= config.num_accounts(); ++a) {
    int64_t bid = (a - 1) / config.accounts_per_branch + 1;
    rows.push_back(Row{Datum(a), Datum(bid), Datum(int64_t{0})});
    if (static_cast<int64_t>(rows.size()) >= kBatch) {
      GPHTAP_RETURN_IF_ERROR(insert_rows("pgbench_accounts", std::move(rows)));
      rows.clear();
    }
  }
  if (!rows.empty()) {
    GPHTAP_RETURN_IF_ERROR(insert_rows("pgbench_accounts", std::move(rows)));
  }

  if (config.create_indexes) {
    GPHTAP_RETURN_IF_ERROR(cluster->CreateIndex("pgbench_accounts", "aid"));
    GPHTAP_RETURN_IF_ERROR(cluster->CreateIndex("pgbench_tellers", "tid"));
    GPHTAP_RETURN_IF_ERROR(cluster->CreateIndex("pgbench_branches", "bid"));
  }
  return Status::OK();
}

namespace {

// Prepares the five TPC-B statements once per session (pgbench -M prepared):
// every transaction after the first skips parse/analyze/plan and just
// substitutes the argument values.
Status EnsureTpcbPrepared(Session* session) {
  if (session->GetPrepared("tpcb_update_account") != nullptr) return Status::OK();
  static const char* kStatements[] = {
      "PREPARE tpcb_update_account AS UPDATE pgbench_accounts "
      "SET abalance = abalance + $1 WHERE aid = $2",
      "PREPARE tpcb_select_account AS SELECT abalance FROM pgbench_accounts "
      "WHERE aid = $1",
      "PREPARE tpcb_update_teller AS UPDATE pgbench_tellers "
      "SET tbalance = tbalance + $1 WHERE tid = $2",
      "PREPARE tpcb_update_branch AS UPDATE pgbench_branches "
      "SET bbalance = bbalance + $1 WHERE bid = $2",
      "PREPARE tpcb_insert_history AS INSERT INTO pgbench_history "
      "(tid, bid, aid, delta) VALUES ($1, $2, $3, $4)",
  };
  for (const char* s : kStatements) {
    GPHTAP_RETURN_IF_ERROR(session->Execute(s).status());
  }
  return Status::OK();
}

}  // namespace

Status RunTpcbTransaction(Session* session, Rng& rng, const TpcbConfig& config) {
  int64_t aid = rng.UniformRange(1, config.num_accounts());
  int64_t tid = rng.UniformRange(1, config.num_tellers());
  int64_t bid = rng.UniformRange(1, config.scale);
  int64_t delta = rng.UniformRange(-5000, 5000);
  std::string d = std::to_string(delta);

  GPHTAP_RETURN_IF_ERROR(EnsureTpcbPrepared(session));
  GPHTAP_RETURN_IF_ERROR(session->Execute("BEGIN").status());
  auto run = [&](const std::string& sql) -> Status {
    Status s = session->Execute(sql).status();
    if (!s.ok()) session->Rollback();
    return s;
  };
  GPHTAP_RETURN_IF_ERROR(run("EXECUTE tpcb_update_account(" + d + ", " +
                             std::to_string(aid) + ")"));
  GPHTAP_RETURN_IF_ERROR(
      run("EXECUTE tpcb_select_account(" + std::to_string(aid) + ")"));
  GPHTAP_RETURN_IF_ERROR(run("EXECUTE tpcb_update_teller(" + d + ", " +
                             std::to_string(tid) + ")"));
  GPHTAP_RETURN_IF_ERROR(run("EXECUTE tpcb_update_branch(" + d + ", " +
                             std::to_string(bid) + ")"));
  GPHTAP_RETURN_IF_ERROR(run("EXECUTE tpcb_insert_history(" + std::to_string(tid) +
                             ", " + std::to_string(bid) + ", " +
                             std::to_string(aid) + ", " + d + ")"));
  return session->Execute("COMMIT").status();
}

Status RunUpdateOnlyTransaction(Session* session, Rng& rng, const TpcbConfig& config) {
  int64_t aid = rng.UniformRange(1, config.num_accounts());
  GPHTAP_RETURN_IF_ERROR(EnsureTpcbPrepared(session));
  return session
      ->Execute("EXECUTE tpcb_update_account(1, " + std::to_string(aid) + ")")
      .status();
}

Status RunInsertOnlyTransaction(Session* session, Rng& rng, const TpcbConfig& config) {
  int64_t aid = rng.UniformRange(1, config.num_accounts());
  GPHTAP_RETURN_IF_ERROR(EnsureTpcbPrepared(session));
  return session
      ->Execute("EXECUTE tpcb_insert_history(1, 1, " + std::to_string(aid) + ", 1)")
      .status();
}

Status RunSelectOnlyTransaction(Session* session, Rng& rng, const TpcbConfig& config) {
  int64_t aid = rng.UniformRange(1, config.num_accounts());
  GPHTAP_RETURN_IF_ERROR(EnsureTpcbPrepared(session));
  return session
      ->Execute("EXECUTE tpcb_select_account(" + std::to_string(aid) + ")")
      .status();
}

std::vector<std::string> TpcbPrepareScript() {
  return {
      "PREPARE tpcb_update_account AS UPDATE pgbench_accounts "
      "SET abalance = abalance + $1 WHERE aid = $2",
      "PREPARE tpcb_select_account AS SELECT abalance FROM pgbench_accounts "
      "WHERE aid = $1",
      "PREPARE tpcb_update_teller AS UPDATE pgbench_tellers "
      "SET tbalance = tbalance + $1 WHERE tid = $2",
      "PREPARE tpcb_update_branch AS UPDATE pgbench_branches "
      "SET bbalance = bbalance + $1 WHERE bid = $2",
      "PREPARE tpcb_insert_history AS INSERT INTO pgbench_history "
      "(tid, bid, aid, delta) VALUES ($1, $2, $3, $4)",
  };
}

std::vector<std::string> TpcbTransactionScript(Rng& rng, const TpcbConfig& config) {
  int64_t aid = rng.UniformRange(1, config.num_accounts());
  int64_t tid = rng.UniformRange(1, config.num_tellers());
  int64_t bid = rng.UniformRange(1, config.scale);
  int64_t delta = rng.UniformRange(-5000, 5000);
  std::string d = std::to_string(delta);
  return {
      "BEGIN",
      "EXECUTE tpcb_update_account(" + d + ", " + std::to_string(aid) + ")",
      "EXECUTE tpcb_select_account(" + std::to_string(aid) + ")",
      "EXECUTE tpcb_update_teller(" + d + ", " + std::to_string(tid) + ")",
      "EXECUTE tpcb_update_branch(" + d + ", " + std::to_string(bid) + ")",
      "EXECUTE tpcb_insert_history(" + std::to_string(tid) + ", " +
          std::to_string(bid) + ", " + std::to_string(aid) + ", " + d + ")",
      "COMMIT",
  };
}

Status CheckTpcbInvariant(Cluster* cluster) {
  auto session = cluster->Connect();
  auto get_sum = [&](const std::string& sql) -> StatusOr<int64_t> {
    GPHTAP_ASSIGN_OR_RETURN(QueryResult r, session->Execute(sql));
    if (r.rows.empty() || r.rows[0][0].is_null()) return int64_t{0};
    return r.rows[0][0].int_val();
  };
  GPHTAP_ASSIGN_OR_RETURN(int64_t accounts,
                          get_sum("SELECT sum(abalance) FROM pgbench_accounts"));
  GPHTAP_ASSIGN_OR_RETURN(int64_t tellers,
                          get_sum("SELECT sum(tbalance) FROM pgbench_tellers"));
  GPHTAP_ASSIGN_OR_RETURN(int64_t branches,
                          get_sum("SELECT sum(bbalance) FROM pgbench_branches"));
  GPHTAP_ASSIGN_OR_RETURN(int64_t history,
                          get_sum("SELECT sum(delta) FROM pgbench_history"));
  if (accounts != tellers || tellers != branches || branches != history) {
    return Status::Internal(
        "TPC-B invariant violated: accounts=" + std::to_string(accounts) +
        " tellers=" + std::to_string(tellers) + " branches=" + std::to_string(branches) +
        " history=" + std::to_string(history));
  }
  return Status::OK();
}

}  // namespace gphtap
