// Umbrella header: the public API of gphtap.
//
// Quickstart:
//   gphtap::ClusterOptions options;
//   options.num_segments = 4;
//   gphtap::Cluster cluster(options);
//   auto session = cluster.Connect();
//   session->Execute("CREATE TABLE t (c1 int, c2 int) DISTRIBUTED BY (c1)");
//   session->Execute("INSERT INTO t VALUES (1, 10), (2, 20)");
//   auto rows = session->Execute("SELECT c1, c2 FROM t ORDER BY 1");
//
// See README.md for the SQL dialect and ClusterOptions for the GPDB5/GPDB6
// mode switches (gdd_enabled, one_phase_commit_enabled, resource groups).
//
// Robustness surface (DESIGN.md "Crash recovery and failover"):
//   cluster.faults()            — arm named fault points (FaultInjector)
//   cluster.CrashSegment(i) / cluster.RecoverSegment(i)
//   cluster.FailoverToMirror(i) — promote a mirror (FTS does this automatically
//                                 when ClusterOptions::fts_enabled)
//   cluster.Health()            — per-segment up/down, mirror lag, FTS stats
//
// Front door (docs/RESILIENCE.md "Overload and the front door"): with
// ClusterOptions::frontend.enabled, cluster.ConnectLogical() returns a
// thread-decoupled logical session multiplexed over a bounded worker pool —
// tens of thousands of them coexist without per-session OS threads, and
// overload degrades gracefully into retryable sheds with retry-after hints:
//   auto fs = cluster.ConnectLogical();         // sheds instead of blocking
//   (*fs)->Execute("SELECT 1");                 // sync facade
//   (*fs)->Submit("SELECT 1", callback);        // async, callback-chained
#ifndef GPHTAP_API_GPHTAP_H_
#define GPHTAP_API_GPHTAP_H_

#include "cluster/cluster.h"     // IWYU pragma: export
#include "cluster/session.h"     // IWYU pragma: export
#include "common/status.h"       // IWYU pragma: export
#include "catalog/datum.h"       // IWYU pragma: export
#include "catalog/schema.h"      // IWYU pragma: export
#include "frontend/frontend.h"   // IWYU pragma: export

#endif  // GPHTAP_API_GPHTAP_H_
