// Umbrella header: the public API of gphtap.
//
// Quickstart:
//   gphtap::ClusterOptions options;
//   options.num_segments = 4;
//   gphtap::Cluster cluster(options);
//   auto session = cluster.Connect();
//   session->Execute("CREATE TABLE t (c1 int, c2 int) DISTRIBUTED BY (c1)");
//   session->Execute("INSERT INTO t VALUES (1, 10), (2, 20)");
//   auto rows = session->Execute("SELECT c1, c2 FROM t ORDER BY 1");
//
// See README.md for the SQL dialect and ClusterOptions for the GPDB5/GPDB6
// mode switches (gdd_enabled, one_phase_commit_enabled, resource groups).
//
// Robustness surface (DESIGN.md "Crash recovery and failover"):
//   cluster.faults()            — arm named fault points (FaultInjector)
//   cluster.CrashSegment(i) / cluster.RecoverSegment(i)
//   cluster.FailoverToMirror(i) — promote a mirror (FTS does this automatically
//                                 when ClusterOptions::fts_enabled)
//   cluster.Health()            — per-segment up/down, mirror lag, FTS stats
#ifndef GPHTAP_API_GPHTAP_H_
#define GPHTAP_API_GPHTAP_H_

#include "cluster/cluster.h"   // IWYU pragma: export
#include "cluster/session.h"   // IWYU pragma: export
#include "common/status.h"     // IWYU pragma: export
#include "catalog/datum.h"     // IWYU pragma: export
#include "catalog/schema.h"    // IWYU pragma: export

#endif  // GPHTAP_API_GPHTAP_H_
