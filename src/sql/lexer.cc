#include "sql/lexer.h"

#include <cctype>

namespace gphtap {

bool Token::IsWord(const char* word) const {
  if (type != TokenType::kIdent) return false;
  size_t n = text.size();
  for (size_t i = 0; i < n; ++i) {
    if (word[i] == '\0' ||
        std::tolower(static_cast<unsigned char>(text[i])) !=
            std::tolower(static_cast<unsigned char>(word[i]))) {
      return false;
    }
  }
  return word[n] == '\0';
}

StatusOr<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  auto peek = [&](size_t k) { return i + k < n ? sql[i + k] : '\0'; };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && peek(1) == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.pos = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      tok.type = TokenType::kIdent;
      tok.text = sql.substr(start, i - start);
      for (char& ch : tok.text) ch = static_cast<char>(std::tolower(
                                      static_cast<unsigned char>(ch)));
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(peek(1)))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t save = i;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) {
          is_float = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        } else {
          i = save;
        }
      }
      tok.type = is_float ? TokenType::kFloat : TokenType::kInt;
      tok.text = sql.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (peek(1) == '\'') {  // escaped quote
            value += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value += sql[i++];
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(tok.pos));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(value);
      tokens.push_back(std::move(tok));
      continue;
    }
    // $N positional parameters (PREPARE/EXECUTE).
    if (c == '$' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      size_t start = ++i;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      tok.type = TokenType::kParam;
      tok.text = sql.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Two-char symbols.
    if ((c == '<' && (peek(1) == '=' || peek(1) == '>')) ||
        (c == '>' && peek(1) == '=') || (c == '!' && peek(1) == '=')) {
      tok.type = TokenType::kSymbol;
      tok.text = sql.substr(i, 2);
      i += 2;
      tokens.push_back(std::move(tok));
      continue;
    }
    static const std::string kSingles = "(),;*=<>+-/%.";
    if (kSingles.find(c) != std::string::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::InvalidArgument("unexpected character '" + std::string(1, c) +
                                   "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.pos = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace gphtap
