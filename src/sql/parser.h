// Recursive-descent parser for the supported SQL dialect (see README).
#ifndef GPHTAP_SQL_PARSER_H_
#define GPHTAP_SQL_PARSER_H_

#include "common/status.h"
#include "sql/ast.h"

namespace gphtap {

/// Parses exactly one statement (a trailing ';' is allowed).
StatusOr<sql_ast::Statement> ParseStatement(const std::string& sql);

}  // namespace gphtap

#endif  // GPHTAP_SQL_PARSER_H_
