// Binds raw parse trees against the catalog, producing planner/session inputs.
#ifndef GPHTAP_SQL_ANALYZER_H_
#define GPHTAP_SQL_ANALYZER_H_

#include <vector>

#include "cluster/cluster.h"
#include "plan/select_query.h"
#include "sql/ast.h"

namespace gphtap {

struct BoundInsert {
  TableDef table;
  std::vector<Row> rows;  // empty when `select` drives the insert
  std::shared_ptr<sql_ast::SelectNode> select;
};

struct BoundUpdate {
  TableDef table;
  std::vector<std::pair<int, ExprPtr>> sets;
  ExprPtr where;
};

struct BoundDelete {
  TableDef table;
  ExprPtr where;
};

class Analyzer {
 public:
  explicit Analyzer(Cluster* cluster) : cluster_(cluster) {}

  StatusOr<SelectQuery> BindSelect(const sql_ast::SelectNode& node);
  StatusOr<BoundInsert> BindInsert(const sql_ast::InsertNode& node);
  StatusOr<BoundUpdate> BindUpdate(const sql_ast::UpdateNode& node);
  StatusOr<BoundDelete> BindDelete(const sql_ast::DeleteNode& node);

  /// Evaluates a constant expression (no column references).
  static StatusOr<Datum> EvalConst(const sql_ast::ExprNode& e);

  /// True when every FROM item is a set-returning function (generate_series);
  /// such queries bypass the distributed planner.
  static bool IsPureFunctionScan(const sql_ast::SelectNode& node);

 private:
  struct Scope {
    // (qualifier, column) -> combined index. Empty qualifier matches any table.
    std::vector<TableDef> tables;
    std::vector<std::string> aliases;
    std::vector<int> offsets;

    StatusOr<int> Resolve(const std::string& qualifier, const std::string& column) const;
  };

  StatusOr<ExprPtr> BindExpr(const sql_ast::ExprNode& e, const Scope& scope);
  StatusOr<AggSpec> BindAgg(const sql_ast::ExprNode& e, const Scope& scope);
  /// Binds a HAVING expression over the select-item layout, appending hidden
  /// items for aggregates/grouped columns that are not already projected.
  StatusOr<ExprPtr> BindHavingExpr(const sql_ast::ExprNode& e, const Scope& scope,
                                   SelectQuery* q);
  static bool IsAggName(const std::string& name);

  Cluster* const cluster_;
};

}  // namespace gphtap

#endif  // GPHTAP_SQL_ANALYZER_H_
