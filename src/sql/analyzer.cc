#include "sql/analyzer.h"

#include <algorithm>

namespace gphtap {

using sql_ast::ExprNode;
using sql_ast::ExprNodeKind;

namespace {

// Splits a bound predicate into top-level conjuncts.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->op == BinOp::kAnd) {
    SplitConjuncts(e->left, out);
    SplitConjuncts(e->right, out);
    return;
  }
  out->push_back(e);
}

StatusOr<BinOp> BindOp(const std::string& op) {
  if (op == "+") return BinOp::kAdd;
  if (op == "-") return BinOp::kSub;
  if (op == "*") return BinOp::kMul;
  if (op == "/") return BinOp::kDiv;
  if (op == "%") return BinOp::kMod;
  if (op == "=") return BinOp::kEq;
  if (op == "<>") return BinOp::kNe;
  if (op == "<") return BinOp::kLt;
  if (op == "<=") return BinOp::kLe;
  if (op == ">") return BinOp::kGt;
  if (op == ">=") return BinOp::kGe;
  if (op == "and") return BinOp::kAnd;
  if (op == "or") return BinOp::kOr;
  return Status::InvalidArgument("unknown operator " + op);
}

}  // namespace

StatusOr<int> Analyzer::Scope::Resolve(const std::string& qualifier,
                                       const std::string& column) const {
  int found = -1;
  for (size_t t = 0; t < tables.size(); ++t) {
    // An explicit alias hides the underlying table name (PostgreSQL rules).
    if (!qualifier.empty() && aliases[t] != qualifier) continue;
    int c = tables[t].schema.FindColumn(column);
    if (c < 0) continue;
    if (found >= 0) {
      return Status::InvalidArgument("ambiguous column reference: " + column);
    }
    found = offsets[t] + c;
  }
  if (found < 0) {
    return Status::NotFound("column " +
                            (qualifier.empty() ? column : qualifier + "." + column));
  }
  return found;
}

bool Analyzer::IsAggName(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" || name == "min" ||
         name == "max";
}

bool Analyzer::IsPureFunctionScan(const sql_ast::SelectNode& node) {
  if (node.from.empty()) return false;
  for (const auto& t : node.from) {
    if (!t.is_function) return false;
  }
  return true;
}

StatusOr<Datum> Analyzer::EvalConst(const ExprNode& e) {
  // Bind against an empty scope and evaluate with an empty row.
  Analyzer dummy(nullptr);
  Scope empty;
  GPHTAP_ASSIGN_OR_RETURN(ExprPtr bound, dummy.BindExpr(e, empty));
  return EvalExpr(*bound, Row{});
}

StatusOr<ExprPtr> Analyzer::BindExpr(const ExprNode& e, const Scope& scope) {
  switch (e.kind) {
    case ExprNodeKind::kLiteral:
      return Expr::Const(e.literal);
    case ExprNodeKind::kColumnRef: {
      GPHTAP_ASSIGN_OR_RETURN(int idx, scope.Resolve(e.table, e.column));
      return Expr::Column(idx);
    }
    case ExprNodeKind::kBinary: {
      GPHTAP_ASSIGN_OR_RETURN(BinOp op, BindOp(e.op));
      GPHTAP_ASSIGN_OR_RETURN(ExprPtr l, BindExpr(*e.args[0], scope));
      GPHTAP_ASSIGN_OR_RETURN(ExprPtr r, BindExpr(*e.args[1], scope));
      return Expr::Binary(op, l, r);
    }
    case ExprNodeKind::kNot: {
      GPHTAP_ASSIGN_OR_RETURN(ExprPtr inner, BindExpr(*e.args[0], scope));
      return Expr::Not(inner);
    }
    case ExprNodeKind::kIsNull: {
      GPHTAP_ASSIGN_OR_RETURN(ExprPtr inner, BindExpr(*e.args[0], scope));
      return Expr::IsNull(inner);
    }
    case ExprNodeKind::kIsNotNull: {
      GPHTAP_ASSIGN_OR_RETURN(ExprPtr inner, BindExpr(*e.args[0], scope));
      return Expr::Not(Expr::IsNull(inner));
    }
    case ExprNodeKind::kFuncCall:
      if (IsAggName(e.func)) {
        return Status::InvalidArgument("aggregate " + e.func +
                                       " not allowed in this context");
      }
      return Status::NotSupported("function " + e.func);
    case ExprNodeKind::kStar:
      return Status::InvalidArgument("'*' not allowed in this context");
    case ExprNodeKind::kParam:
      return Expr::Param(e.param - 1);  // SQL positions are 1-based
  }
  return Status::Internal("bad expr node");
}

StatusOr<AggSpec> Analyzer::BindAgg(const ExprNode& e, const Scope& scope) {
  AggSpec spec;
  if (e.func == "count") {
    if (e.args.size() == 1 && e.args[0]->kind == ExprNodeKind::kStar) {
      spec.fn = AggFunc::kCountStar;
      return spec;
    }
    if (e.args.size() != 1) return Status::InvalidArgument("count expects one argument");
    spec.fn = AggFunc::kCount;
  } else if (e.func == "sum") {
    spec.fn = AggFunc::kSum;
  } else if (e.func == "avg") {
    spec.fn = AggFunc::kAvg;
  } else if (e.func == "min") {
    spec.fn = AggFunc::kMin;
  } else if (e.func == "max") {
    spec.fn = AggFunc::kMax;
  } else {
    return Status::NotSupported("aggregate " + e.func);
  }
  if (e.args.size() != 1) {
    return Status::InvalidArgument(e.func + " expects one argument");
  }
  GPHTAP_ASSIGN_OR_RETURN(spec.arg, BindExpr(*e.args[0], scope));
  return spec;
}

StatusOr<ExprPtr> Analyzer::BindHavingExpr(const ExprNode& e, const Scope& scope,
                                           SelectQuery* q) {
  switch (e.kind) {
    case ExprNodeKind::kLiteral:
      return Expr::Const(e.literal);
    case ExprNodeKind::kFuncCall: {
      if (!IsAggName(e.func)) return Status::NotSupported("function " + e.func);
      GPHTAP_ASSIGN_OR_RETURN(AggSpec spec, BindAgg(e, scope));
      // Reuse an identical select-list aggregate if present, else hide one.
      SelectItem hidden;
      hidden.is_agg = true;
      hidden.agg = std::move(spec);
      hidden.name = "?having?";
      q->items.push_back(std::move(hidden));
      return Expr::Column(static_cast<int>(q->items.size()) - 1);
    }
    case ExprNodeKind::kColumnRef: {
      // Prefer a select-list output (alias or column name)...
      for (size_t i = 0; i < q->items.size(); ++i) {
        if (q->items[i].name == e.column && e.table.empty()) {
          return Expr::Column(static_cast<int>(i));
        }
      }
      // ... otherwise it must be a grouped input column; project it hidden.
      GPHTAP_ASSIGN_OR_RETURN(int input_col, scope.Resolve(e.table, e.column));
      if (std::find(q->group_by.begin(), q->group_by.end(), input_col) ==
          q->group_by.end()) {
        return Status::InvalidArgument("HAVING column " + e.column +
                                       " must appear in GROUP BY or be aggregated");
      }
      SelectItem hidden;
      hidden.expr = Expr::Column(input_col);
      hidden.name = "?having?";
      q->items.push_back(std::move(hidden));
      return Expr::Column(static_cast<int>(q->items.size()) - 1);
    }
    case ExprNodeKind::kBinary: {
      GPHTAP_ASSIGN_OR_RETURN(BinOp op, BindOp(e.op));
      GPHTAP_ASSIGN_OR_RETURN(ExprPtr l, BindHavingExpr(*e.args[0], scope, q));
      GPHTAP_ASSIGN_OR_RETURN(ExprPtr r, BindHavingExpr(*e.args[1], scope, q));
      return Expr::Binary(op, l, r);
    }
    case ExprNodeKind::kNot: {
      GPHTAP_ASSIGN_OR_RETURN(ExprPtr inner, BindHavingExpr(*e.args[0], scope, q));
      return Expr::Not(inner);
    }
    case ExprNodeKind::kIsNull: {
      GPHTAP_ASSIGN_OR_RETURN(ExprPtr inner, BindHavingExpr(*e.args[0], scope, q));
      return Expr::IsNull(inner);
    }
    case ExprNodeKind::kIsNotNull: {
      GPHTAP_ASSIGN_OR_RETURN(ExprPtr inner, BindHavingExpr(*e.args[0], scope, q));
      return Expr::Not(Expr::IsNull(inner));
    }
    case ExprNodeKind::kStar:
      return Status::InvalidArgument("'*' not allowed in HAVING");
    case ExprNodeKind::kParam:
      return Expr::Param(e.param - 1);
  }
  return Status::Internal("bad having expr");
}

StatusOr<SelectQuery> Analyzer::BindSelect(const sql_ast::SelectNode& node) {
  if (node.from.empty()) return Status::InvalidArgument("SELECT requires FROM");
  SelectQuery q;
  Scope scope;
  int offset = 0;
  for (const auto& t : node.from) {
    if (t.is_function) {
      return Status::NotSupported(
          "function table references are only supported alone in FROM");
    }
    GPHTAP_ASSIGN_OR_RETURN(TableDef def, cluster_->LookupTable(t.name));
    scope.tables.push_back(def);
    scope.aliases.push_back(t.alias.empty() ? def.name : t.alias);
    scope.offsets.push_back(offset);
    offset += static_cast<int>(def.schema.num_columns());
    q.tables.push_back(std::move(def));
  }

  // WHERE + JOIN ON quals, split into conjuncts.
  if (node.where != nullptr) {
    GPHTAP_ASSIGN_OR_RETURN(ExprPtr w, BindExpr(*node.where, scope));
    SplitConjuncts(w, &q.quals);
  }
  for (const auto& jq : node.join_quals) {
    GPHTAP_ASSIGN_OR_RETURN(ExprPtr w, BindExpr(*jq, scope));
    SplitConjuncts(w, &q.quals);
  }

  // Select items ('*' expands; aggregates split out).
  for (const auto& item : node.items) {
    if (item.expr->kind == ExprNodeKind::kStar) {
      for (size_t t = 0; t < scope.tables.size(); ++t) {
        const Schema& schema = scope.tables[t].schema;
        for (size_t c = 0; c < schema.num_columns(); ++c) {
          SelectItem si;
          si.expr = Expr::Column(scope.offsets[t] + static_cast<int>(c));
          si.name = schema.column(c).name;
          q.items.push_back(std::move(si));
        }
      }
      continue;
    }
    SelectItem si;
    if (item.expr->kind == ExprNodeKind::kFuncCall && IsAggName(item.expr->func)) {
      si.is_agg = true;
      GPHTAP_ASSIGN_OR_RETURN(si.agg, BindAgg(*item.expr, scope));
      si.name = item.alias.empty() ? item.expr->func : item.alias;
    } else {
      GPHTAP_ASSIGN_OR_RETURN(si.expr, BindExpr(*item.expr, scope));
      if (!item.alias.empty()) {
        si.name = item.alias;
      } else if (item.expr->kind == ExprNodeKind::kColumnRef) {
        si.name = item.expr->column;
      } else {
        si.name = "?column?";
      }
    }
    q.items.push_back(std::move(si));
  }

  // GROUP BY: bare columns only.
  for (const auto& g : node.group_by) {
    GPHTAP_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(*g, scope));
    if (bound->kind != ExprKind::kColumn) {
      return Status::NotSupported("GROUP BY expressions must be columns");
    }
    q.group_by.push_back(bound->column);
  }
  // Aggregate queries: every non-agg item must be a grouped column.
  if (q.HasAggregates()) {
    for (const auto& item : q.items) {
      if (item.is_agg) continue;
      if (item.expr->kind != ExprKind::kColumn ||
          std::find(q.group_by.begin(), q.group_by.end(), item.expr->column) ==
              q.group_by.end()) {
        return Status::InvalidArgument("column " + item.name +
                                       " must appear in GROUP BY");
      }
    }
  }

  q.distinct = node.distinct;
  // HAVING: bound over the item layout; may append hidden items.
  if (node.having != nullptr) {
    q.visible_items = static_cast<int>(q.items.size());
    if (!q.HasAggregates()) {
      return Status::NotSupported("HAVING requires GROUP BY or aggregates");
    }
    GPHTAP_ASSIGN_OR_RETURN(q.having, BindHavingExpr(*node.having, scope, &q));
    // Hidden non-agg items must be validated like visible ones.
    for (int i = q.visible_items; i < static_cast<int>(q.items.size()); ++i) {
      const SelectItem& item = q.items[static_cast<size_t>(i)];
      if (!item.is_agg && item.expr->kind == ExprKind::kColumn &&
          std::find(q.group_by.begin(), q.group_by.end(), item.expr->column) ==
              q.group_by.end()) {
        return Status::InvalidArgument("HAVING column must appear in GROUP BY");
      }
    }
  }

  // ORDER BY: select-list position (1-based int) or a name/column matching a
  // select item.
  for (const auto& o : node.order_by) {
    OrderItem oi;
    oi.ascending = o.ascending;
    if (o.expr->kind == ExprNodeKind::kLiteral && o.expr->literal.is_int()) {
      int64_t pos = o.expr->literal.int_val();
      if (pos < 1 || pos > static_cast<int64_t>(q.NumVisible())) {
        return Status::InvalidArgument("ORDER BY position out of range");
      }
      oi.select_index = static_cast<int>(pos - 1);
    } else if (o.expr->kind == ExprNodeKind::kColumnRef) {
      int found = -1;
      for (size_t i = 0; i < q.items.size(); ++i) {
        if (q.items[i].name == o.expr->column) {
          found = static_cast<int>(i);
          break;
        }
      }
      if (found < 0) {
        // Fall back to matching the underlying column.
        auto idx = scope.Resolve(o.expr->table, o.expr->column);
        if (idx.ok()) {
          for (size_t i = 0; i < q.items.size(); ++i) {
            if (!q.items[i].is_agg && q.items[i].expr->kind == ExprKind::kColumn &&
                q.items[i].expr->column == *idx) {
              found = static_cast<int>(i);
              break;
            }
          }
        }
      }
      if (found < 0) {
        return Status::InvalidArgument("ORDER BY column " + o.expr->column +
                                       " is not in the select list");
      }
      oi.select_index = found;
    } else {
      return Status::NotSupported("ORDER BY expressions must be columns or positions");
    }
    q.order_by.push_back(oi);
  }
  q.limit = node.limit;
  return q;
}

StatusOr<BoundInsert> Analyzer::BindInsert(const sql_ast::InsertNode& node) {
  BoundInsert out;
  GPHTAP_ASSIGN_OR_RETURN(out.table, cluster_->LookupTable(node.table));
  const Schema& schema = out.table.schema;

  // Optional explicit column list -> schema position mapping.
  std::vector<int> positions;
  if (!node.columns.empty()) {
    for (const std::string& col : node.columns) {
      int idx = schema.FindColumn(col);
      if (idx < 0) return Status::NotFound("column " + col);
      positions.push_back(idx);
    }
  } else {
    positions.resize(schema.num_columns());
    for (size_t i = 0; i < positions.size(); ++i) positions[i] = static_cast<int>(i);
  }

  if (node.select != nullptr) {
    out.select = node.select;
    return out;
  }

  for (const auto& row_exprs : node.rows) {
    if (row_exprs.size() != positions.size()) {
      return Status::InvalidArgument("INSERT row arity mismatch");
    }
    Row row(schema.num_columns(), Datum::Null());
    for (size_t i = 0; i < row_exprs.size(); ++i) {
      GPHTAP_ASSIGN_OR_RETURN(Datum d, EvalConst(*row_exprs[i]));
      row[static_cast<size_t>(positions[i])] = std::move(d);
    }
    GPHTAP_RETURN_IF_ERROR(schema.CheckRow(row));
    out.rows.push_back(std::move(row));
  }
  return out;
}

StatusOr<BoundUpdate> Analyzer::BindUpdate(const sql_ast::UpdateNode& node) {
  BoundUpdate out;
  GPHTAP_ASSIGN_OR_RETURN(out.table, cluster_->LookupTable(node.table));
  Scope scope;
  scope.tables.push_back(out.table);
  scope.aliases.push_back(out.table.name);
  scope.offsets.push_back(0);
  for (const auto& [col, expr] : node.sets) {
    int idx = out.table.schema.FindColumn(col);
    if (idx < 0) return Status::NotFound("column " + col);
    GPHTAP_ASSIGN_OR_RETURN(ExprPtr bound, BindExpr(*expr, scope));
    out.sets.emplace_back(idx, bound);
  }
  if (node.where != nullptr) {
    GPHTAP_ASSIGN_OR_RETURN(out.where, BindExpr(*node.where, scope));
  }
  return out;
}

StatusOr<BoundDelete> Analyzer::BindDelete(const sql_ast::DeleteNode& node) {
  BoundDelete out;
  GPHTAP_ASSIGN_OR_RETURN(out.table, cluster_->LookupTable(node.table));
  Scope scope;
  scope.tables.push_back(out.table);
  scope.aliases.push_back(out.table.name);
  scope.offsets.push_back(0);
  if (node.where != nullptr) {
    GPHTAP_ASSIGN_OR_RETURN(out.where, BindExpr(*node.where, scope));
  }
  return out;
}

}  // namespace gphtap
