#include "sql/parser.h"

#include <cstdlib>

#include "sql/lexer.h"

namespace gphtap {

namespace {

using namespace sql_ast;  // NOLINT(build/namespaces): private to this file

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Statement> Parse() {
    GPHTAP_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
    AcceptSymbol(";");
    if (!Peek().Is(TokenType::kEnd)) {
      return Err("trailing input after statement");
    }
    return stmt;
  }

 private:
  // ---------- token helpers ----------
  const Token& Peek(size_t k = 0) const {
    size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AcceptWord(const char* w) {
    if (Peek().IsWord(w)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* s) {
    if (Peek().IsSymbol(s)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectWord(const char* w) {
    if (!AcceptWord(w)) return Err(std::string("expected ") + w);
    return Status::OK();
  }
  Status ExpectSymbol(const char* s) {
    if (!AcceptSymbol(s)) return Err(std::string("expected '") + s + "'");
    return Status::OK();
  }
  StatusOr<std::string> ExpectIdent() {
    if (!Peek().Is(TokenType::kIdent)) return Err("expected identifier");
    return Advance().text;
  }
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("syntax error: " + msg + " near offset " +
                                   std::to_string(Peek().pos) + " ('" + Peek().text +
                                   "')");
  }

  // ---------- expressions (precedence climbing) ----------
  // or < and < not < comparison < additive < multiplicative < unary < primary

  StatusOr<ExprNodePtr> ParseExpr() { return ParseOr(); }

  StatusOr<ExprNodePtr> ParseOr() {
    GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr left, ParseAnd());
    while (Peek().IsWord("or")) {
      Advance();
      GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr right, ParseAnd());
      left = MakeBinary("or", left, right);
    }
    return left;
  }

  StatusOr<ExprNodePtr> ParseAnd() {
    GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr left, ParseNot());
    while (Peek().IsWord("and")) {
      Advance();
      GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr right, ParseNot());
      left = MakeBinary("and", left, right);
    }
    return left;
  }

  StatusOr<ExprNodePtr> ParseNot() {
    if (AcceptWord("not")) {
      GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr inner, ParseNot());
      auto e = std::make_shared<ExprNode>();
      e->kind = ExprNodeKind::kNot;
      e->args.push_back(inner);
      return e;
    }
    return ParseComparison();
  }

  StatusOr<ExprNodePtr> ParseComparison() {
    GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr left, ParseAdditive());
    // IS [NOT] NULL
    if (Peek().IsWord("is")) {
      Advance();
      bool negated = AcceptWord("not");
      GPHTAP_RETURN_IF_ERROR(ExpectWord("null"));
      auto e = std::make_shared<ExprNode>();
      e->kind = negated ? ExprNodeKind::kIsNotNull : ExprNodeKind::kIsNull;
      e->args.push_back(left);
      return StatusOr<ExprNodePtr>(std::move(e));
    }
    static const char* ops[] = {"<=", ">=", "<>", "!=", "=", "<", ">"};
    for (const char* op : ops) {
      if (Peek().IsSymbol(op)) {
        Advance();
        GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr right, ParseAdditive());
        return StatusOr<ExprNodePtr>(
            MakeBinary(op == std::string("!=") ? "<>" : op, left, right));
      }
    }
    return left;
  }

  StatusOr<ExprNodePtr> ParseAdditive() {
    GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr left, ParseMultiplicative());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      std::string op = Advance().text;
      GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr right, ParseMultiplicative());
      left = MakeBinary(op, left, right);
    }
    return left;
  }

  StatusOr<ExprNodePtr> ParseMultiplicative() {
    GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr left, ParseUnary());
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/") || Peek().IsSymbol("%")) {
      std::string op = Advance().text;
      GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr right, ParseUnary());
      left = MakeBinary(op, left, right);
    }
    return left;
  }

  StatusOr<ExprNodePtr> ParseUnary() {
    if (AcceptSymbol("-")) {
      GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr inner, ParseUnary());
      auto zero = std::make_shared<ExprNode>();
      zero->kind = ExprNodeKind::kLiteral;
      zero->literal = Datum(int64_t{0});
      return StatusOr<ExprNodePtr>(MakeBinary("-", zero, inner));
    }
    AcceptSymbol("+");
    return ParsePrimary();
  }

  StatusOr<ExprNodePtr> ParsePrimary() {
    const Token& t = Peek();
    auto e = std::make_shared<ExprNode>();
    if (t.Is(TokenType::kInt)) {
      Advance();
      e->kind = ExprNodeKind::kLiteral;
      e->literal = Datum(static_cast<int64_t>(std::strtoll(t.text.c_str(), nullptr, 10)));
      return StatusOr<ExprNodePtr>(std::move(e));
    }
    if (t.Is(TokenType::kFloat)) {
      Advance();
      e->kind = ExprNodeKind::kLiteral;
      e->literal = Datum(std::strtod(t.text.c_str(), nullptr));
      return StatusOr<ExprNodePtr>(std::move(e));
    }
    if (t.Is(TokenType::kString)) {
      Advance();
      e->kind = ExprNodeKind::kLiteral;
      e->literal = Datum(t.text);
      return StatusOr<ExprNodePtr>(std::move(e));
    }
    if (t.IsWord("null")) {
      Advance();
      e->kind = ExprNodeKind::kLiteral;
      e->literal = Datum::Null();
      return StatusOr<ExprNodePtr>(std::move(e));
    }
    if (t.IsWord("true") || t.IsWord("false")) {
      Advance();
      e->kind = ExprNodeKind::kLiteral;
      e->literal = Datum(static_cast<int64_t>(t.IsWord("true") ? 1 : 0));
      return StatusOr<ExprNodePtr>(std::move(e));
    }
    if (t.IsSymbol("(")) {
      Advance();
      GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr inner, ParseExpr());
      GPHTAP_RETURN_IF_ERROR(ExpectSymbol(")"));
      return StatusOr<ExprNodePtr>(std::move(inner));
    }
    if (t.IsSymbol("*")) {
      Advance();
      e->kind = ExprNodeKind::kStar;
      return StatusOr<ExprNodePtr>(std::move(e));
    }
    if (t.Is(TokenType::kParam)) {
      Advance();
      int pos = std::atoi(t.text.c_str());
      if (pos < 1) return Err("parameter positions start at $1");
      e->kind = ExprNodeKind::kParam;
      e->param = pos;
      return StatusOr<ExprNodePtr>(std::move(e));
    }
    if (t.Is(TokenType::kIdent)) {
      std::string first = Advance().text;
      // Function call?
      if (Peek().IsSymbol("(")) {
        Advance();
        e->kind = ExprNodeKind::kFuncCall;
        e->func = first;
        if (!Peek().IsSymbol(")")) {
          while (true) {
            GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr arg, ParseExpr());
            e->args.push_back(arg);
            if (!AcceptSymbol(",")) break;
          }
        }
        GPHTAP_RETURN_IF_ERROR(ExpectSymbol(")"));
        return StatusOr<ExprNodePtr>(std::move(e));
      }
      // Qualified column?
      e->kind = ExprNodeKind::kColumnRef;
      if (AcceptSymbol(".")) {
        GPHTAP_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        e->table = first;
        e->column = col;
      } else {
        e->column = first;
      }
      return StatusOr<ExprNodePtr>(std::move(e));
    }
    return Err("expected expression");
  }

  static ExprNodePtr MakeBinary(const std::string& op, ExprNodePtr l, ExprNodePtr r) {
    auto e = std::make_shared<ExprNode>();
    e->kind = ExprNodeKind::kBinary;
    e->op = op;
    e->args = {std::move(l), std::move(r)};
    return e;
  }

  // ---------- statements ----------

  StatusOr<Statement> ParseStatementInner() {
    Statement stmt;
    if (Peek().IsWord("select")) {
      stmt.kind = StatementKind::kSelect;
      GPHTAP_ASSIGN_OR_RETURN(auto sel, ParseSelect());
      stmt.select = std::move(sel);
      return stmt;
    }
    if (AcceptWord("explain")) {
      stmt.explain_analyze = AcceptWord("analyze");
      stmt.kind = StatementKind::kExplain;
      GPHTAP_ASSIGN_OR_RETURN(auto sel, ParseSelect());
      stmt.select = std::move(sel);
      return stmt;
    }
    if (AcceptWord("insert")) return ParseInsert();
    if (AcceptWord("update")) return ParseUpdate();
    if (AcceptWord("delete")) return ParseDelete();
    if (Peek().IsWord("create")) return ParseCreate();
    if (AcceptWord("drop")) return ParseDrop();
    if (AcceptWord("alter")) return ParseAlter();
    if (AcceptWord("begin") || (Peek().IsWord("start") && Peek(1).IsWord("transaction"))) {
      if (Peek().IsWord("start")) {
        Advance();
        Advance();
      } else {
        AcceptWord("transaction");
        AcceptWord("work");
      }
      Statement s;
      s.kind = StatementKind::kBegin;
      return s;
    }
    if (AcceptWord("commit")) {
      AcceptWord("work");
      AcceptWord("transaction");
      Statement s;
      s.kind = StatementKind::kCommit;
      return s;
    }
    if (AcceptWord("rollback") || AcceptWord("abort")) {
      AcceptWord("work");
      AcceptWord("transaction");
      Statement s;
      s.kind = StatementKind::kRollback;
      return s;
    }
    if (AcceptWord("prepare")) {
      Statement s;
      s.kind = StatementKind::kPrepare;
      s.prepare = std::make_shared<PrepareNode>();
      GPHTAP_ASSIGN_OR_RETURN(s.prepare->name, ExpectIdent());
      GPHTAP_RETURN_IF_ERROR(ExpectWord("as"));
      GPHTAP_ASSIGN_OR_RETURN(Statement inner, ParseStatementInner());
      s.prepare->stmt = std::make_shared<Statement>(std::move(inner));
      return s;
    }
    if (AcceptWord("execute")) {
      Statement s;
      s.kind = StatementKind::kExecutePrepared;
      s.execute = std::make_shared<ExecuteStmtNode>();
      GPHTAP_ASSIGN_OR_RETURN(s.execute->name, ExpectIdent());
      if (AcceptSymbol("(")) {
        if (!Peek().IsSymbol(")")) {
          while (true) {
            GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr arg, ParseExpr());
            s.execute->args.push_back(std::move(arg));
            if (!AcceptSymbol(",")) break;
          }
        }
        GPHTAP_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
      return s;
    }
    if (AcceptWord("deallocate")) {
      AcceptWord("prepare");
      Statement s;
      s.kind = StatementKind::kDeallocate;
      s.deallocate = std::make_shared<DeallocateNode>();
      if (AcceptWord("all")) {
        s.deallocate->name = "*";
      } else {
        GPHTAP_ASSIGN_OR_RETURN(s.deallocate->name, ExpectIdent());
      }
      return s;
    }
    if (AcceptWord("lock")) return ParseLock();
    if (AcceptWord("truncate")) {
      AcceptWord("table");
      Statement s;
      s.kind = StatementKind::kTruncate;
      s.truncate = std::make_shared<TruncateNode>();
      GPHTAP_ASSIGN_OR_RETURN(s.truncate->table, ExpectIdent());
      return s;
    }
    if (AcceptWord("vacuum")) {
      AcceptWord("full");
      Statement s;
      s.kind = StatementKind::kVacuum;
      s.vacuum = std::make_shared<VacuumNode>();
      GPHTAP_ASSIGN_OR_RETURN(s.vacuum->table, ExpectIdent());
      return s;
    }
    if (AcceptWord("cluster")) {
      Statement s;
      s.kind = StatementKind::kCluster;
      s.cluster = std::make_shared<ClusterNode>();
      GPHTAP_ASSIGN_OR_RETURN(s.cluster->table, ExpectIdent());
      if (AcceptWord("using")) {
        GPHTAP_ASSIGN_OR_RETURN(s.cluster->using_col, ExpectIdent());
      }
      return s;
    }
    if (AcceptWord("rebalance")) {
      GPHTAP_RETURN_IF_ERROR(ExpectWord("table"));
      Statement s;
      s.kind = StatementKind::kRebalance;
      s.rebalance = std::make_shared<RebalanceNode>();
      GPHTAP_ASSIGN_OR_RETURN(s.rebalance->table, ExpectIdent());
      return s;
    }
    if (AcceptWord("set")) {
      Statement s;
      s.kind = StatementKind::kSet;
      s.set = std::make_shared<SetNode>();
      GPHTAP_ASSIGN_OR_RETURN(s.set->name, ExpectIdent());
      if (s.set->name == "role") {
        GPHTAP_ASSIGN_OR_RETURN(s.set->value, ExpectIdent());
        return s;
      }
      if (!AcceptSymbol("=")) AcceptWord("to");
      if (Peek().Is(TokenType::kIdent) || Peek().Is(TokenType::kInt) ||
          Peek().Is(TokenType::kString) || Peek().Is(TokenType::kFloat)) {
        s.set->value = Advance().text;
      }
      return s;
    }
    if (AcceptWord("show")) {
      GPHTAP_RETURN_IF_ERROR(ExpectWord("tables"));
      Statement s;
      s.kind = StatementKind::kShowTables;
      return s;
    }
    return Err("unknown statement");
  }

  StatusOr<std::shared_ptr<SelectNode>> ParseSelect() {
    GPHTAP_RETURN_IF_ERROR(ExpectWord("select"));
    auto sel = std::make_shared<SelectNode>();
    if (AcceptWord("distinct")) sel->distinct = true;
    // select list
    while (true) {
      SelectItemNode item;
      GPHTAP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptWord("as")) {
        GPHTAP_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
      } else if (Peek().Is(TokenType::kIdent) && !IsClauseKeyword(Peek())) {
        item.alias = Advance().text;
      }
      sel->items.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
    if (AcceptWord("from")) {
      GPHTAP_ASSIGN_OR_RETURN(TableRefNode first, ParseTableRef());
      sel->from.push_back(std::move(first));
      GPHTAP_RETURN_IF_ERROR(ParseFromTail(sel.get()));
    }
    if (AcceptWord("where")) {
      GPHTAP_ASSIGN_OR_RETURN(sel->where, ParseExpr());
    }
    if (AcceptWord("group")) {
      GPHTAP_RETURN_IF_ERROR(ExpectWord("by"));
      while (true) {
        GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr g, ParseExpr());
        sel->group_by.push_back(g);
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptWord("having")) {
      GPHTAP_ASSIGN_OR_RETURN(sel->having, ParseExpr());
    }
    if (AcceptWord("order")) {
      GPHTAP_RETURN_IF_ERROR(ExpectWord("by"));
      while (true) {
        OrderItemNode o;
        GPHTAP_ASSIGN_OR_RETURN(o.expr, ParseExpr());
        if (AcceptWord("desc")) {
          o.ascending = false;
        } else {
          AcceptWord("asc");
        }
        sel->order_by.push_back(std::move(o));
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptWord("limit")) {
      if (!Peek().Is(TokenType::kInt)) return Err("LIMIT expects an integer");
      sel->limit = std::strtoll(Advance().text.c_str(), nullptr, 10);
    }
    return sel;
  }

  Status ParseFromTail(SelectNode* sel) {
    while (true) {
      if (AcceptSymbol(",")) {
        GPHTAP_ASSIGN_OR_RETURN(TableRefNode t, ParseTableRef());
        sel->from.push_back(std::move(t));
        continue;
      }
      if (Peek().IsWord("join") || (Peek().IsWord("inner") && Peek(1).IsWord("join"))) {
        AcceptWord("inner");
        GPHTAP_RETURN_IF_ERROR(ExpectWord("join"));
        GPHTAP_ASSIGN_OR_RETURN(TableRefNode t, ParseTableRef());
        sel->from.push_back(std::move(t));
        GPHTAP_RETURN_IF_ERROR(ExpectWord("on"));
        GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr on, ParseExpr());
        sel->join_quals.push_back(on);
        continue;
      }
      break;
    }
    return Status::OK();
  }

  static bool IsClauseKeyword(const Token& t) {
    static const char* kws[] = {"from",   "where", "group", "order", "limit",
                                "join",   "on",    "inner", "as",    "asc",
                                "desc",   "and",   "or",    "is",    "having"};
    for (const char* k : kws) {
      if (t.IsWord(k)) return true;
    }
    return false;
  }

  StatusOr<TableRefNode> ParseTableRef() {
    TableRefNode t;
    GPHTAP_ASSIGN_OR_RETURN(t.name, ExpectIdent());
    if (Peek().IsSymbol("(")) {
      Advance();
      t.is_function = true;
      if (!Peek().IsSymbol(")")) {
        while (true) {
          GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr arg, ParseExpr());
          t.func_args.push_back(arg);
          if (!AcceptSymbol(",")) break;
        }
      }
      GPHTAP_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    if (AcceptWord("as")) {
      GPHTAP_ASSIGN_OR_RETURN(t.alias, ExpectIdent());
    } else if (Peek().Is(TokenType::kIdent) && !IsClauseKeyword(Peek()) &&
               !Peek().IsWord("set")) {
      t.alias = Advance().text;
    }
    return t;
  }

  StatusOr<Statement> ParseInsert() {
    GPHTAP_RETURN_IF_ERROR(ExpectWord("into"));
    Statement stmt;
    stmt.kind = StatementKind::kInsert;
    stmt.insert = std::make_shared<InsertNode>();
    GPHTAP_ASSIGN_OR_RETURN(stmt.insert->table, ExpectIdent());
    if (AcceptSymbol("(")) {
      while (true) {
        GPHTAP_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        stmt.insert->columns.push_back(col);
        if (!AcceptSymbol(",")) break;
      }
      GPHTAP_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    if (AcceptWord("values")) {
      while (true) {
        GPHTAP_RETURN_IF_ERROR(ExpectSymbol("("));
        std::vector<ExprNodePtr> row;
        while (true) {
          GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr e, ParseExpr());
          row.push_back(e);
          if (!AcceptSymbol(",")) break;
        }
        GPHTAP_RETURN_IF_ERROR(ExpectSymbol(")"));
        stmt.insert->rows.push_back(std::move(row));
        if (!AcceptSymbol(",")) break;
      }
      return stmt;
    }
    if (Peek().IsWord("select")) {
      GPHTAP_ASSIGN_OR_RETURN(stmt.insert->select, ParseSelect());
      return stmt;
    }
    return Err("expected VALUES or SELECT in INSERT");
  }

  StatusOr<Statement> ParseUpdate() {
    Statement stmt;
    stmt.kind = StatementKind::kUpdate;
    stmt.update = std::make_shared<UpdateNode>();
    GPHTAP_ASSIGN_OR_RETURN(stmt.update->table, ExpectIdent());
    GPHTAP_RETURN_IF_ERROR(ExpectWord("set"));
    while (true) {
      GPHTAP_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      GPHTAP_RETURN_IF_ERROR(ExpectSymbol("="));
      GPHTAP_ASSIGN_OR_RETURN(ExprNodePtr e, ParseExpr());
      stmt.update->sets.emplace_back(col, e);
      if (!AcceptSymbol(",")) break;
    }
    if (AcceptWord("where")) {
      GPHTAP_ASSIGN_OR_RETURN(stmt.update->where, ParseExpr());
    }
    return stmt;
  }

  StatusOr<Statement> ParseDelete() {
    GPHTAP_RETURN_IF_ERROR(ExpectWord("from"));
    Statement stmt;
    stmt.kind = StatementKind::kDelete;
    stmt.del = std::make_shared<DeleteNode>();
    GPHTAP_ASSIGN_OR_RETURN(stmt.del->table, ExpectIdent());
    if (AcceptWord("where")) {
      GPHTAP_ASSIGN_OR_RETURN(stmt.del->where, ParseExpr());
    }
    return stmt;
  }

  StatusOr<std::vector<std::pair<std::string, std::string>>> ParseWithOptions() {
    std::vector<std::pair<std::string, std::string>> options;
    GPHTAP_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      GPHTAP_ASSIGN_OR_RETURN(std::string key, ExpectIdent());
      std::string value;
      if (AcceptSymbol("=")) {
        // Value forms: word, number, 'string', or N-M core ranges.
        if (Peek().Is(TokenType::kIdent) || Peek().Is(TokenType::kString)) {
          value = Advance().text;
        } else if (Peek().Is(TokenType::kInt) || Peek().Is(TokenType::kFloat)) {
          value = Advance().text;
          if (AcceptSymbol("-")) {
            if (!Peek().Is(TokenType::kInt)) return Err("expected core range end");
            value += "-" + Advance().text;
          }
        } else {
          return Err("expected option value");
        }
      } else {
        value = "true";
      }
      options.emplace_back(key, value);
      if (!AcceptSymbol(",")) break;
    }
    GPHTAP_RETURN_IF_ERROR(ExpectSymbol(")"));
    return options;
  }

  StatusOr<Datum> ParseLiteralDatum() {
    bool negative = AcceptSymbol("-");
    const Token& t = Peek();
    if (t.Is(TokenType::kInt)) {
      Advance();
      int64_t v = std::strtoll(t.text.c_str(), nullptr, 10);
      return Datum(negative ? -v : v);
    }
    if (t.Is(TokenType::kFloat)) {
      Advance();
      double v = std::strtod(t.text.c_str(), nullptr);
      return Datum(negative ? -v : v);
    }
    if (t.Is(TokenType::kString)) {
      Advance();
      return Datum(t.text);
    }
    return Err("expected literal");
  }

  StatusOr<Statement> ParseCreate() {
    GPHTAP_RETURN_IF_ERROR(ExpectWord("create"));
    if (AcceptWord("table")) return ParseCreateTable();
    if (AcceptWord("index")) return ParseCreateIndex();
    if (AcceptWord("resource")) {
      GPHTAP_RETURN_IF_ERROR(ExpectWord("group"));
      Statement stmt;
      stmt.kind = StatementKind::kCreateResourceGroup;
      stmt.create_resource_group = std::make_shared<CreateResourceGroupNode>();
      GPHTAP_ASSIGN_OR_RETURN(stmt.create_resource_group->name, ExpectIdent());
      GPHTAP_RETURN_IF_ERROR(ExpectWord("with"));
      GPHTAP_ASSIGN_OR_RETURN(stmt.create_resource_group->options, ParseWithOptions());
      return stmt;
    }
    if (AcceptWord("role")) {
      Statement stmt;
      stmt.kind = StatementKind::kCreateRole;
      stmt.role_resource_group = std::make_shared<RoleResourceGroupNode>();
      GPHTAP_ASSIGN_OR_RETURN(stmt.role_resource_group->role, ExpectIdent());
      if (AcceptWord("resource")) {
        GPHTAP_RETURN_IF_ERROR(ExpectWord("group"));
        GPHTAP_ASSIGN_OR_RETURN(stmt.role_resource_group->group, ExpectIdent());
      }
      return stmt;
    }
    return Err("CREATE expects TABLE, INDEX, ROLE or RESOURCE GROUP");
  }

  StatusOr<Statement> ParseCreateTable() {
    Statement stmt;
    stmt.kind = StatementKind::kCreateTable;
    stmt.create_table = std::make_shared<CreateTableNode>();
    CreateTableNode& ct = *stmt.create_table;
    GPHTAP_ASSIGN_OR_RETURN(ct.name, ExpectIdent());
    GPHTAP_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      ColumnDefNode col;
      GPHTAP_ASSIGN_OR_RETURN(col.name, ExpectIdent());
      GPHTAP_ASSIGN_OR_RETURN(col.type, ExpectIdent());
      // Swallow type decorations: varchar(80), double precision, not null.
      if (AcceptSymbol("(")) {
        while (!Peek().IsSymbol(")") && !Peek().Is(TokenType::kEnd)) Advance();
        GPHTAP_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
      if (col.type == "double") AcceptWord("precision");
      if (AcceptWord("not")) GPHTAP_RETURN_IF_ERROR(ExpectWord("null"));
      AcceptWord("null");
      ct.columns.push_back(std::move(col));
      if (!AcceptSymbol(",")) break;
    }
    GPHTAP_RETURN_IF_ERROR(ExpectSymbol(")"));

    while (true) {
      if (AcceptWord("with")) {
        GPHTAP_ASSIGN_OR_RETURN(ct.with_options, ParseWithOptions());
        continue;
      }
      if (AcceptWord("distributed")) {
        if (AcceptWord("replicated")) {
          ct.distributed_replicated = true;
        } else if (AcceptWord("randomly")) {
          ct.distributed_randomly = true;
        } else {
          GPHTAP_RETURN_IF_ERROR(ExpectWord("by"));
          GPHTAP_RETURN_IF_ERROR(ExpectSymbol("("));
          while (true) {
            GPHTAP_ASSIGN_OR_RETURN(std::string c, ExpectIdent());
            ct.distributed_by.push_back(c);
            if (!AcceptSymbol(",")) break;
          }
          GPHTAP_RETURN_IF_ERROR(ExpectSymbol(")"));
        }
        continue;
      }
      if (AcceptWord("partition")) {
        GPHTAP_RETURN_IF_ERROR(ExpectWord("by"));
        GPHTAP_RETURN_IF_ERROR(ExpectWord("range"));
        GPHTAP_RETURN_IF_ERROR(ExpectSymbol("("));
        GPHTAP_ASSIGN_OR_RETURN(ct.partition_col, ExpectIdent());
        GPHTAP_RETURN_IF_ERROR(ExpectSymbol(")"));
        GPHTAP_RETURN_IF_ERROR(ExpectSymbol("("));
        while (true) {
          GPHTAP_RETURN_IF_ERROR(ExpectWord("partition"));
          PartitionDefNode part;
          GPHTAP_ASSIGN_OR_RETURN(part.name, ExpectIdent());
          if (AcceptWord("start")) {
            GPHTAP_ASSIGN_OR_RETURN(Datum d, ParseLiteralDatum());
            part.start = d;
          }
          if (AcceptWord("end")) {
            GPHTAP_ASSIGN_OR_RETURN(Datum d, ParseLiteralDatum());
            part.end = d;
          }
          if (AcceptWord("with")) {
            GPHTAP_ASSIGN_OR_RETURN(part.with_options, ParseWithOptions());
          }
          if (AcceptWord("external")) {
            if (!Peek().Is(TokenType::kString)) return Err("EXTERNAL expects 'path'");
            part.external_path = Advance().text;
          }
          ct.partitions.push_back(std::move(part));
          if (!AcceptSymbol(",")) break;
        }
        GPHTAP_RETURN_IF_ERROR(ExpectSymbol(")"));
        continue;
      }
      break;
    }
    return stmt;
  }

  StatusOr<Statement> ParseCreateIndex() {
    Statement stmt;
    stmt.kind = StatementKind::kCreateIndex;
    stmt.create_index = std::make_shared<CreateIndexNode>();
    if (Peek().Is(TokenType::kIdent) && !Peek().IsWord("on")) {
      stmt.create_index->index_name = Advance().text;
    }
    GPHTAP_RETURN_IF_ERROR(ExpectWord("on"));
    GPHTAP_ASSIGN_OR_RETURN(stmt.create_index->table, ExpectIdent());
    GPHTAP_RETURN_IF_ERROR(ExpectSymbol("("));
    GPHTAP_ASSIGN_OR_RETURN(stmt.create_index->column, ExpectIdent());
    GPHTAP_RETURN_IF_ERROR(ExpectSymbol(")"));
    return stmt;
  }

  StatusOr<Statement> ParseDrop() {
    if (AcceptWord("table")) {
      Statement stmt;
      stmt.kind = StatementKind::kDropTable;
      stmt.drop_table = std::make_shared<DropTableNode>();
      if (AcceptWord("if")) {
        GPHTAP_RETURN_IF_ERROR(ExpectWord("exists"));
        stmt.drop_table->if_exists = true;
      }
      GPHTAP_ASSIGN_OR_RETURN(stmt.drop_table->name, ExpectIdent());
      return stmt;
    }
    if (AcceptWord("resource")) {
      GPHTAP_RETURN_IF_ERROR(ExpectWord("group"));
      Statement stmt;
      stmt.kind = StatementKind::kDropResourceGroup;
      stmt.drop_resource_group = std::make_shared<DropResourceGroupNode>();
      GPHTAP_ASSIGN_OR_RETURN(stmt.drop_resource_group->name, ExpectIdent());
      return stmt;
    }
    return Err("DROP expects TABLE or RESOURCE GROUP");
  }

  StatusOr<Statement> ParseAlter() {
    GPHTAP_RETURN_IF_ERROR(ExpectWord("role"));
    Statement stmt;
    stmt.kind = StatementKind::kAlterRole;
    stmt.role_resource_group = std::make_shared<RoleResourceGroupNode>();
    GPHTAP_ASSIGN_OR_RETURN(stmt.role_resource_group->role, ExpectIdent());
    GPHTAP_RETURN_IF_ERROR(ExpectWord("resource"));
    GPHTAP_RETURN_IF_ERROR(ExpectWord("group"));
    GPHTAP_ASSIGN_OR_RETURN(stmt.role_resource_group->group, ExpectIdent());
    return stmt;
  }

  StatusOr<Statement> ParseLock() {
    AcceptWord("table");
    Statement stmt;
    stmt.kind = StatementKind::kLockTable;
    stmt.lock_table = std::make_shared<LockTableNode>();
    GPHTAP_ASSIGN_OR_RETURN(stmt.lock_table->table, ExpectIdent());
    if (AcceptWord("in")) {
      // Collect mode words until MODE.
      std::string mode_words;
      while (Peek().Is(TokenType::kIdent) && !Peek().IsWord("mode")) {
        if (!mode_words.empty()) mode_words += " ";
        mode_words += Advance().text;
      }
      GPHTAP_RETURN_IF_ERROR(ExpectWord("mode"));
      static const std::pair<const char*, LockMode> kModes[] = {
          {"access share", LockMode::kAccessShare},
          {"row share", LockMode::kRowShare},
          {"row exclusive", LockMode::kRowExclusive},
          {"share update exclusive", LockMode::kShareUpdateExclusive},
          {"share", LockMode::kShare},
          {"share row exclusive", LockMode::kShareRowExclusive},
          {"exclusive", LockMode::kExclusive},
          {"access exclusive", LockMode::kAccessExclusive},
      };
      bool found = false;
      for (const auto& [words, mode] : kModes) {
        if (mode_words == words) {
          stmt.lock_table->mode = mode;
          found = true;
          break;
        }
      }
      if (!found) return Err("unknown lock mode '" + mode_words + "'");
    }
    return stmt;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<sql_ast::Statement> ParseStatement(const std::string& sql) {
  GPHTAP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace gphtap
