// Entry point: parse, analyze, and execute one SQL statement on a session.
#ifndef GPHTAP_SQL_DRIVER_H_
#define GPHTAP_SQL_DRIVER_H_

#include <string>

#include "common/status.h"

namespace gphtap {

class Session;
struct QueryResult;

namespace sql_driver {

StatusOr<QueryResult> ExecuteSql(Session* session, const std::string& sql);

}  // namespace sql_driver
}  // namespace gphtap

#endif  // GPHTAP_SQL_DRIVER_H_
