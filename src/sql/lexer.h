// SQL tokenizer.
#ifndef GPHTAP_SQL_LEXER_H_
#define GPHTAP_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace gphtap {

enum class TokenType : uint8_t {
  kIdent,     // possibly a keyword; parser matches case-insensitively
  kInt,
  kFloat,
  kString,    // 'quoted'
  kSymbol,    // ( ) , ; * = < > <= >= <> != + - / % .
  kParam,     // $N positional parameter (text holds N)
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // raw text (identifier lowercased; string unquoted)
  size_t pos = 0;    // byte offset for error messages

  bool Is(TokenType t) const { return type == t; }
  /// Case-insensitive keyword/identifier match.
  bool IsWord(const char* word) const;
  bool IsSymbol(const char* sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

StatusOr<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace gphtap

#endif  // GPHTAP_SQL_LEXER_H_
