// Session-scoped prepared statements (PREPARE / EXECUTE / DEALLOCATE).
//
// PREPARE parses and (for SELECTs) binds + plans once, keeping the generic
// plan with kParam placeholders in its expressions. EXECUTE substitutes the
// argument values into a cloned plan tree and runs it, skipping the
// parse/analyze/plan pipeline — the per-statement overhead the Greenplum
// paper's OLTP path (Section 6) pays only once per connection.
#ifndef GPHTAP_SQL_PREPARED_STATEMENT_H_
#define GPHTAP_SQL_PREPARED_STATEMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "plan/plan.h"
#include "sql/ast.h"

namespace gphtap {

struct PreparedStatement {
  std::string name;
  // The parsed parameterized statement. DML executes by substituting the
  // argument values into a clone of this AST and rebinding.
  std::shared_ptr<const sql_ast::Statement> stmt;
  int num_params = 0;  // highest $N seen across the statement

  // Normalized fingerprint of the prepared text (FingerprintSql of the inner
  // statement): every EXECUTE is attributed to this in gp_stat_statements, so
  // prepared and literal forms of a statement aggregate onto one row.
  std::string fingerprint;

  // SELECT fast path: the generic plan built at PREPARE time. Invalidated
  // (replanned) when the catalog version moves, like plan-cache entries.
  bool has_plan = false;
  std::shared_ptr<const PlanNode> plan_root;
  std::vector<int> gang;
  std::vector<std::string> columns;
  std::vector<TableDef> tables;
  uint64_t catalog_version = 0;
};

}  // namespace gphtap

#endif  // GPHTAP_SQL_PREPARED_STATEMENT_H_
