#include "sql/driver.h"

#include <cstdlib>

#include "cluster/session.h"
#include "sql/analyzer.h"
#include "sql/parser.h"

namespace gphtap {
namespace sql_driver {

namespace {

using sql_ast::ExprNode;
using sql_ast::ExprNodeKind;
using sql_ast::Statement;
using sql_ast::StatementKind;

StatusOr<TypeId> BindType(const std::string& t) {
  if (t == "int" || t == "integer" || t == "bigint" || t == "smallint" || t == "int4" ||
      t == "int8" || t == "int2" || t == "serial" || t == "bigserial") {
    return TypeId::kInt64;
  }
  if (t == "double" || t == "float" || t == "float4" || t == "float8" || t == "real" ||
      t == "numeric" || t == "decimal") {
    return TypeId::kDouble;
  }
  if (t == "text" || t == "varchar" || t == "char" || t == "string" || t == "character") {
    return TypeId::kString;
  }
  return Status::NotSupported("type " + t);
}

StatusOr<CompressionKind> BindCompression(const std::string& name) {
  if (name == "none") return CompressionKind::kNone;
  if (name == "rle" || name == "rle_type") return CompressionKind::kRle;
  if (name == "delta") return CompressionKind::kDelta;
  if (name == "dict" || name == "dictionary") return CompressionKind::kDict;
  // The paper's codecs map onto our from-scratch LZ byte codec.
  if (name == "lz" || name == "zlib" || name == "zstd" || name == "quicklz") {
    return CompressionKind::kLz;
  }
  return Status::NotSupported("compression " + name);
}

StatusOr<StorageKind> BindStorageOptions(
    const std::vector<std::pair<std::string, std::string>>& options,
    CompressionKind* compression) {
  StorageKind storage = StorageKind::kHeap;
  bool appendonly = false;
  bool column_oriented = false;
  for (const auto& [key, value] : options) {
    if (key == "storage") {
      if (value == "heap") {
        storage = StorageKind::kHeap;
      } else if (value == "ao_row" || value == "appendonly_row") {
        storage = StorageKind::kAoRow;
      } else if (value == "ao_column" || value == "ao_col" || value == "column") {
        storage = StorageKind::kAoColumn;
      } else if (value == "external") {
        storage = StorageKind::kExternal;
      } else {
        return Status::NotSupported("storage " + value);
      }
    } else if (key == "appendonly" || key == "appendoptimized") {
      appendonly = value == "true";
    } else if (key == "orientation") {
      column_oriented = value == "column";
    } else if (key == "compresstype" || key == "compress") {
      GPHTAP_ASSIGN_OR_RETURN(*compression, BindCompression(value));
    } else {
      return Status::NotSupported("table option " + key);
    }
  }
  if (appendonly) storage = column_oriented ? StorageKind::kAoColumn : StorageKind::kAoRow;
  return storage;
}

// Local (coordinator-only) SELECT evaluation for FROM-less selects and pure
// generate_series() function scans: used by the paper's own example inserts.
StatusOr<QueryResult> LocalSelect(const sql_ast::SelectNode& node) {
  // Build the input "rows": cross product of the function scans (or one empty
  // row when there is no FROM).
  struct FuncCol {
    std::string name;
    int64_t start, end;
  };
  std::vector<FuncCol> funcs;
  for (const auto& t : node.from) {
    if (!t.is_function || t.name != "generate_series" || t.func_args.size() != 2) {
      return Status::NotSupported("only generate_series(a,b) function scans");
    }
    GPHTAP_ASSIGN_OR_RETURN(Datum lo, Analyzer::EvalConst(*t.func_args[0]));
    GPHTAP_ASSIGN_OR_RETURN(Datum hi, Analyzer::EvalConst(*t.func_args[1]));
    if (!lo.is_int() || !hi.is_int()) {
      return Status::InvalidArgument("generate_series expects integers");
    }
    funcs.push_back(
        {t.alias.empty() ? "generate_series" : t.alias, lo.int_val(), hi.int_val()});
  }

  // Scope resolution: column name -> index into the function-value row.
  auto resolve = [&](const std::string& qualifier, const std::string& col) -> int {
    for (size_t i = 0; i < funcs.size(); ++i) {
      if ((qualifier.empty() || qualifier == funcs[i].name) &&
          (col == funcs[i].name)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };

  // Bind one expression over the function row; SRFs in the select list are
  // handled one level up.
  std::function<StatusOr<ExprPtr>(const ExprNode&)> bind =
      [&](const ExprNode& e) -> StatusOr<ExprPtr> {
    switch (e.kind) {
      case ExprNodeKind::kLiteral:
        return Expr::Const(e.literal);
      case ExprNodeKind::kColumnRef: {
        int idx = resolve(e.table, e.column);
        if (idx < 0) return Status::NotFound("column " + e.column);
        return Expr::Column(idx);
      }
      case ExprNodeKind::kBinary: {
        GPHTAP_ASSIGN_OR_RETURN(ExprPtr l, bind(*e.args[0]));
        GPHTAP_ASSIGN_OR_RETURN(ExprPtr r, bind(*e.args[1]));
        BinOp op;
        if (e.op == "+") {
          op = BinOp::kAdd;
        } else if (e.op == "-") {
          op = BinOp::kSub;
        } else if (e.op == "*") {
          op = BinOp::kMul;
        } else if (e.op == "/") {
          op = BinOp::kDiv;
        } else if (e.op == "%") {
          op = BinOp::kMod;
        } else if (e.op == "=") {
          op = BinOp::kEq;
        } else if (e.op == "<>") {
          op = BinOp::kNe;
        } else if (e.op == "<") {
          op = BinOp::kLt;
        } else if (e.op == "<=") {
          op = BinOp::kLe;
        } else if (e.op == ">") {
          op = BinOp::kGt;
        } else if (e.op == ">=") {
          op = BinOp::kGe;
        } else if (e.op == "and") {
          op = BinOp::kAnd;
        } else if (e.op == "or") {
          op = BinOp::kOr;
        } else {
          return Status::NotSupported("operator " + e.op);
        }
        return Expr::Binary(op, l, r);
      }
      case ExprNodeKind::kNot: {
        GPHTAP_ASSIGN_OR_RETURN(ExprPtr inner, bind(*e.args[0]));
        return Expr::Not(inner);
      }
      case ExprNodeKind::kIsNull: {
        GPHTAP_ASSIGN_OR_RETURN(ExprPtr inner, bind(*e.args[0]));
        return Expr::IsNull(inner);
      }
      case ExprNodeKind::kIsNotNull: {
        GPHTAP_ASSIGN_OR_RETURN(ExprPtr inner, bind(*e.args[0]));
        return Expr::Not(Expr::IsNull(inner));
      }
      default:
        return Status::NotSupported("expression in local select");
    }
  };

  // Select items: either plain expressions or one generate_series() SRF.
  struct Item {
    ExprPtr expr;                  // when scalar
    int64_t srf_start = 0, srf_end = -1;
    bool is_srf = false;
    std::string name;
  };
  std::vector<Item> items;
  int64_t srf_len = 1;
  for (const auto& si : node.items) {
    Item item;
    if (si.expr->kind == ExprNodeKind::kFuncCall && si.expr->func == "generate_series") {
      if (si.expr->args.size() != 2) {
        return Status::InvalidArgument("generate_series expects two arguments");
      }
      GPHTAP_ASSIGN_OR_RETURN(Datum lo, Analyzer::EvalConst(*si.expr->args[0]));
      GPHTAP_ASSIGN_OR_RETURN(Datum hi, Analyzer::EvalConst(*si.expr->args[1]));
      item.is_srf = true;
      item.srf_start = lo.int_val();
      item.srf_end = hi.int_val();
      srf_len = std::max<int64_t>(srf_len, item.srf_end - item.srf_start + 1);
      item.name = si.alias.empty() ? "generate_series" : si.alias;
    } else {
      GPHTAP_ASSIGN_OR_RETURN(item.expr, bind(*si.expr));
      item.name = si.alias.empty() ? "?column?" : si.alias;
    }
    items.push_back(std::move(item));
  }

  ExprPtr where;
  if (node.where != nullptr) {
    GPHTAP_ASSIGN_OR_RETURN(where, bind(*node.where));
  }

  QueryResult result;
  for (const Item& item : items) result.columns.push_back(item.name);

  // Iterate the cross product of the function scans.
  std::vector<int64_t> cursor(funcs.size());
  for (size_t i = 0; i < funcs.size(); ++i) cursor[i] = funcs[i].start;
  bool done = false;
  while (!done) {
    Row input;
    input.reserve(funcs.size());
    for (int64_t v : cursor) input.push_back(Datum(v));
    bool pass = true;
    if (where != nullptr) {
      GPHTAP_ASSIGN_OR_RETURN(pass, EvalPredicate(*where, input));
    }
    if (pass) {
      for (int64_t k = 0; k < srf_len; ++k) {
        Row out;
        out.reserve(items.size());
        for (const Item& item : items) {
          if (item.is_srf) {
            int64_t v = item.srf_start + k;
            out.push_back(v <= item.srf_end ? Datum(v) : Datum::Null());
          } else {
            GPHTAP_ASSIGN_OR_RETURN(Datum d, EvalExpr(*item.expr, input));
            out.push_back(std::move(d));
          }
        }
        result.rows.push_back(std::move(out));
      }
    }
    // Advance the cross-product cursor.
    if (funcs.empty()) break;
    size_t i = 0;
    while (i < funcs.size()) {
      if (++cursor[i] <= funcs[i].end) break;
      cursor[i] = funcs[i].start;
      ++i;
    }
    done = i == funcs.size();
  }
  if (node.limit >= 0 && static_cast<int64_t>(result.rows.size()) > node.limit) {
    result.rows.resize(static_cast<size_t>(node.limit));
  }
  result.affected = static_cast<int64_t>(result.rows.size());
  return result;
}

StatusOr<QueryResult> RunSelect(Session* session, const sql_ast::SelectNode& node) {
  if (node.from.empty() || Analyzer::IsPureFunctionScan(node)) {
    return LocalSelect(node);
  }
  Analyzer analyzer(session->cluster());
  GPHTAP_ASSIGN_OR_RETURN(SelectQuery q, analyzer.BindSelect(node));
  return session->ExecuteSelect(q);
}

StatusOr<QueryResult> RunCreateTable(Session* session,
                                     const sql_ast::CreateTableNode& ct) {
  TableDef def;
  def.name = ct.name;
  std::vector<Column> cols;
  for (const auto& c : ct.columns) {
    GPHTAP_ASSIGN_OR_RETURN(TypeId type, BindType(c.type));
    cols.push_back({c.name, type});
  }
  def.schema = Schema(std::move(cols));

  GPHTAP_ASSIGN_OR_RETURN(def.storage, BindStorageOptions(ct.with_options,
                                                          &def.compression));

  if (ct.distributed_replicated) {
    def.distribution = DistributionPolicy::Replicated();
  } else if (ct.distributed_randomly) {
    def.distribution = DistributionPolicy::Random();
  } else if (!ct.distributed_by.empty()) {
    std::vector<int> key;
    for (const std::string& c : ct.distributed_by) {
      int idx = def.schema.FindColumn(c);
      if (idx < 0) return Status::NotFound("distribution column " + c);
      key.push_back(idx);
    }
    def.distribution = DistributionPolicy::Hash(std::move(key));
  } else {
    def.distribution = DistributionPolicy::Hash({0});  // Greenplum default
  }

  if (!ct.partitions.empty()) {
    PartitionSpec spec;
    spec.partition_col = def.schema.FindColumn(ct.partition_col);
    if (spec.partition_col < 0) {
      return Status::NotFound("partition column " + ct.partition_col);
    }
    for (const auto& p : ct.partitions) {
      RangePartitionSpec r;
      r.name = p.name;
      r.lower = p.start.value_or(Datum::Null());
      r.upper = p.end.value_or(Datum::Null());
      CompressionKind comp = def.compression;
      GPHTAP_ASSIGN_OR_RETURN(r.storage, BindStorageOptions(p.with_options, &comp));
      if (!p.external_path.empty()) {
        r.storage = StorageKind::kExternal;
        r.external_path = p.external_path;
      }
      spec.ranges.push_back(std::move(r));
    }
    def.partitions = std::move(spec);
  }

  GPHTAP_RETURN_IF_ERROR(session->cluster()->CreateTable(std::move(def)));
  return QueryResult{};
}

StatusOr<QueryResult> RunResourceGroup(Session* session,
                                       const sql_ast::CreateResourceGroupNode& node) {
  ResourceGroupConfig config;
  config.name = node.name;
  for (const auto& [key, value] : node.options) {
    if (key == "concurrency") {
      config.concurrency = std::atoi(value.c_str());
    } else if (key == "cpu_rate_limit") {
      config.cpu_rate_limit = std::atof(value.c_str());
    } else if (key == "cpu_set") {
      size_t dash = value.find('-');
      if (dash == std::string::npos) {
        config.cpuset_begin = config.cpuset_end = std::atoi(value.c_str());
      } else {
        config.cpuset_begin = std::atoi(value.substr(0, dash).c_str());
        config.cpuset_end = std::atoi(value.substr(dash + 1).c_str());
      }
    } else if (key == "memory_limit") {
      config.memory_limit_mb = std::atoll(value.c_str());
    } else if (key == "memory_shared_quota") {
      config.memory_shared_quota = std::atoi(value.c_str());
    } else {
      return Status::NotSupported("resource group option " + key);
    }
  }
  GPHTAP_RETURN_IF_ERROR(session->cluster()->resgroups().CreateGroup(config));
  return QueryResult{};
}

}  // namespace

StatusOr<QueryResult> ExecuteSql(Session* session, const std::string& sql) {
  GPHTAP_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  Analyzer analyzer(session->cluster());

  switch (stmt.kind) {
    case StatementKind::kSelect:
      return RunSelect(session, *stmt.select);

    case StatementKind::kExplain: {
      GPHTAP_ASSIGN_OR_RETURN(SelectQuery q, analyzer.BindSelect(*stmt.select));
      if (stmt.explain_analyze) return session->ExplainAnalyzeSelect(q);
      return session->ExplainSelect(q);
    }

    case StatementKind::kInsert: {
      GPHTAP_ASSIGN_OR_RETURN(BoundInsert bound, analyzer.BindInsert(*stmt.insert));
      if (bound.select != nullptr) {
        GPHTAP_ASSIGN_OR_RETURN(QueryResult sel, RunSelect(session, *bound.select));
        // Re-shape the selected rows through the optional column list.
        std::vector<int> positions;
        const Schema& schema = bound.table.schema;
        if (!stmt.insert->columns.empty()) {
          for (const std::string& col : stmt.insert->columns) {
            positions.push_back(schema.FindColumn(col));
          }
        } else {
          for (size_t i = 0; i < schema.num_columns(); ++i) {
            positions.push_back(static_cast<int>(i));
          }
        }
        std::vector<Row> rows;
        rows.reserve(sel.rows.size());
        for (Row& r : sel.rows) {
          if (r.size() != positions.size()) {
            return Status::InvalidArgument("INSERT SELECT arity mismatch");
          }
          Row full(schema.num_columns(), Datum::Null());
          for (size_t i = 0; i < positions.size(); ++i) {
            full[static_cast<size_t>(positions[i])] = std::move(r[i]);
          }
          rows.push_back(std::move(full));
        }
        return session->ExecuteInsert(bound.table, rows);
      }
      return session->ExecuteInsert(bound.table, bound.rows);
    }

    case StatementKind::kUpdate: {
      GPHTAP_ASSIGN_OR_RETURN(BoundUpdate bound, analyzer.BindUpdate(*stmt.update));
      return session->ExecuteUpdate(bound.table, bound.sets, bound.where);
    }

    case StatementKind::kDelete: {
      GPHTAP_ASSIGN_OR_RETURN(BoundDelete bound, analyzer.BindDelete(*stmt.del));
      return session->ExecuteDelete(bound.table, bound.where);
    }

    case StatementKind::kCreateTable:
      return RunCreateTable(session, *stmt.create_table);

    case StatementKind::kCreateIndex:
      GPHTAP_RETURN_IF_ERROR(session->cluster()->CreateIndex(
          stmt.create_index->table, stmt.create_index->column));
      return QueryResult{};

    case StatementKind::kDropTable: {
      Status s = session->cluster()->DropTable(stmt.drop_table->name);
      if (!s.ok() && !(stmt.drop_table->if_exists && s.code() == StatusCode::kNotFound)) {
        return s;
      }
      return QueryResult{};
    }

    case StatementKind::kBegin:
      GPHTAP_RETURN_IF_ERROR(session->Begin());
      return QueryResult{};
    case StatementKind::kCommit:
      GPHTAP_RETURN_IF_ERROR(session->Commit());
      return QueryResult{};
    case StatementKind::kRollback:
      GPHTAP_RETURN_IF_ERROR(session->Rollback());
      return QueryResult{};

    case StatementKind::kLockTable: {
      GPHTAP_ASSIGN_OR_RETURN(TableDef def,
                              session->cluster()->LookupTable(stmt.lock_table->table));
      GPHTAP_RETURN_IF_ERROR(session->LockTable(def, stmt.lock_table->mode));
      return QueryResult{};
    }

    case StatementKind::kTruncate: {
      GPHTAP_ASSIGN_OR_RETURN(TableDef def,
                              session->cluster()->LookupTable(stmt.truncate->table));
      return session->ExecuteTruncate(def);
    }

    case StatementKind::kVacuum: {
      GPHTAP_ASSIGN_OR_RETURN(TableDef def,
                              session->cluster()->LookupTable(stmt.vacuum->table));
      return session->ExecuteVacuum(def);
    }

    case StatementKind::kCluster: {
      GPHTAP_ASSIGN_OR_RETURN(TableDef def,
                              session->cluster()->LookupTable(stmt.cluster->table));
      int order_col = -1;
      if (!stmt.cluster->using_col.empty()) {
        order_col = def.schema.FindColumn(stmt.cluster->using_col);
        if (order_col < 0) {
          return Status::InvalidArgument("CLUSTER: no such column: " +
                                         stmt.cluster->using_col);
        }
      }
      return session->ExecuteCluster(def, order_col);
    }

    case StatementKind::kRebalance:
      return session->ExecuteRebalance(stmt.rebalance->table);

    case StatementKind::kCreateResourceGroup:
      return RunResourceGroup(session, *stmt.create_resource_group);

    case StatementKind::kDropResourceGroup:
      GPHTAP_RETURN_IF_ERROR(
          session->cluster()->resgroups().DropGroup(stmt.drop_resource_group->name));
      return QueryResult{};

    case StatementKind::kCreateRole:
    case StatementKind::kAlterRole:
      if (!stmt.role_resource_group->group.empty()) {
        GPHTAP_RETURN_IF_ERROR(session->cluster()->resgroups().AssignRole(
            stmt.role_resource_group->role, stmt.role_resource_group->group));
      }
      return QueryResult{};

    case StatementKind::kSet: {
      if (stmt.set->name == "role") {
        session->SetRole(stmt.set->value);
        return QueryResult{};
      }
      // Timeout GUCs take a millisecond count (PostgreSQL's default unit for
      // statement_timeout / lock_timeout); 0 disables.
      auto parse_timeout_ms = [&]() -> StatusOr<int64_t> {
        const std::string& v = stmt.set->value;
        if (v.empty()) return Status::InvalidArgument("SET " + stmt.set->name +
                                                      " requires a value");
        char* end = nullptr;
        long long ms = std::strtoll(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0' || ms < 0) {
          return Status::InvalidArgument("invalid value for " + stmt.set->name +
                                         ": " + v);
        }
        return static_cast<int64_t>(ms) * 1000;
      };
      if (stmt.set->name == "statement_timeout") {
        GPHTAP_ASSIGN_OR_RETURN(int64_t us, parse_timeout_ms());
        session->set_statement_timeout_us(us);
      } else if (stmt.set->name == "lock_timeout") {
        GPHTAP_ASSIGN_OR_RETURN(int64_t us, parse_timeout_ms());
        session->set_lock_timeout_us(us);
      } else if (stmt.set->name == "admission_timeout") {
        GPHTAP_ASSIGN_OR_RETURN(int64_t us, parse_timeout_ms());
        session->set_admission_timeout_us(us);
      }
      // Other settings are accepted and ignored (GUC compatibility).
      return QueryResult{};
    }

    case StatementKind::kShowTables: {
      QueryResult r;
      r.columns = {"table_name", "storage", "distribution"};
      for (const TableDef& def : session->cluster()->ListTables()) {
        const char* dist = def.distribution.kind == DistributionKind::kHash ? "hash"
                           : def.distribution.kind == DistributionKind::kReplicated
                               ? "replicated"
                               : "random";
        r.rows.push_back(Row{Datum(def.name), Datum(std::string(StorageKindName(def.storage))),
                             Datum(std::string(dist))});
      }
      r.affected = static_cast<int64_t>(r.rows.size());
      return r;
    }
  }
  return Status::Internal("unhandled statement kind");
}

}  // namespace sql_driver
}  // namespace gphtap
