#include "sql/driver.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <optional>

#include "cluster/session.h"
#include "sql/analyzer.h"
#include "sql/parser.h"
#include "sql/prepared_statement.h"
#include "stats/fingerprint.h"

namespace gphtap {
namespace sql_driver {

namespace {

using sql_ast::ExprNode;
using sql_ast::ExprNodeKind;
using sql_ast::Statement;
using sql_ast::StatementKind;

StatusOr<TypeId> BindType(const std::string& t) {
  if (t == "int" || t == "integer" || t == "bigint" || t == "smallint" || t == "int4" ||
      t == "int8" || t == "int2" || t == "serial" || t == "bigserial") {
    return TypeId::kInt64;
  }
  if (t == "double" || t == "float" || t == "float4" || t == "float8" || t == "real" ||
      t == "numeric" || t == "decimal") {
    return TypeId::kDouble;
  }
  if (t == "text" || t == "varchar" || t == "char" || t == "string" || t == "character") {
    return TypeId::kString;
  }
  return Status::NotSupported("type " + t);
}

StatusOr<CompressionKind> BindCompression(const std::string& name) {
  if (name == "none") return CompressionKind::kNone;
  if (name == "rle" || name == "rle_type") return CompressionKind::kRle;
  if (name == "delta") return CompressionKind::kDelta;
  if (name == "dict" || name == "dictionary") return CompressionKind::kDict;
  // The paper's codecs map onto our from-scratch LZ byte codec.
  if (name == "lz" || name == "zlib" || name == "zstd" || name == "quicklz") {
    return CompressionKind::kLz;
  }
  return Status::NotSupported("compression " + name);
}

StatusOr<StorageKind> BindStorageOptions(
    const std::vector<std::pair<std::string, std::string>>& options,
    CompressionKind* compression) {
  StorageKind storage = StorageKind::kHeap;
  bool appendonly = false;
  bool column_oriented = false;
  for (const auto& [key, value] : options) {
    if (key == "storage") {
      if (value == "heap") {
        storage = StorageKind::kHeap;
      } else if (value == "ao_row" || value == "appendonly_row") {
        storage = StorageKind::kAoRow;
      } else if (value == "ao_column" || value == "ao_col" || value == "column") {
        storage = StorageKind::kAoColumn;
      } else if (value == "external") {
        storage = StorageKind::kExternal;
      } else {
        return Status::NotSupported("storage " + value);
      }
    } else if (key == "appendonly" || key == "appendoptimized") {
      appendonly = value == "true";
    } else if (key == "orientation") {
      column_oriented = value == "column";
    } else if (key == "compresstype" || key == "compress") {
      GPHTAP_ASSIGN_OR_RETURN(*compression, BindCompression(value));
    } else {
      return Status::NotSupported("table option " + key);
    }
  }
  if (appendonly) storage = column_oriented ? StorageKind::kAoColumn : StorageKind::kAoRow;
  return storage;
}

// Local (coordinator-only) SELECT evaluation for FROM-less selects and pure
// generate_series() function scans: used by the paper's own example inserts.
StatusOr<QueryResult> LocalSelect(const sql_ast::SelectNode& node) {
  // Build the input "rows": cross product of the function scans (or one empty
  // row when there is no FROM).
  struct FuncCol {
    std::string name;
    int64_t start, end;
  };
  std::vector<FuncCol> funcs;
  for (const auto& t : node.from) {
    if (!t.is_function || t.name != "generate_series" || t.func_args.size() != 2) {
      return Status::NotSupported("only generate_series(a,b) function scans");
    }
    GPHTAP_ASSIGN_OR_RETURN(Datum lo, Analyzer::EvalConst(*t.func_args[0]));
    GPHTAP_ASSIGN_OR_RETURN(Datum hi, Analyzer::EvalConst(*t.func_args[1]));
    if (!lo.is_int() || !hi.is_int()) {
      return Status::InvalidArgument("generate_series expects integers");
    }
    funcs.push_back(
        {t.alias.empty() ? "generate_series" : t.alias, lo.int_val(), hi.int_val()});
  }

  // Scope resolution: column name -> index into the function-value row.
  auto resolve = [&](const std::string& qualifier, const std::string& col) -> int {
    for (size_t i = 0; i < funcs.size(); ++i) {
      if ((qualifier.empty() || qualifier == funcs[i].name) &&
          (col == funcs[i].name)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };

  // Bind one expression over the function row; SRFs in the select list are
  // handled one level up.
  std::function<StatusOr<ExprPtr>(const ExprNode&)> bind =
      [&](const ExprNode& e) -> StatusOr<ExprPtr> {
    switch (e.kind) {
      case ExprNodeKind::kLiteral:
        return Expr::Const(e.literal);
      case ExprNodeKind::kColumnRef: {
        int idx = resolve(e.table, e.column);
        if (idx < 0) return Status::NotFound("column " + e.column);
        return Expr::Column(idx);
      }
      case ExprNodeKind::kBinary: {
        GPHTAP_ASSIGN_OR_RETURN(ExprPtr l, bind(*e.args[0]));
        GPHTAP_ASSIGN_OR_RETURN(ExprPtr r, bind(*e.args[1]));
        BinOp op;
        if (e.op == "+") {
          op = BinOp::kAdd;
        } else if (e.op == "-") {
          op = BinOp::kSub;
        } else if (e.op == "*") {
          op = BinOp::kMul;
        } else if (e.op == "/") {
          op = BinOp::kDiv;
        } else if (e.op == "%") {
          op = BinOp::kMod;
        } else if (e.op == "=") {
          op = BinOp::kEq;
        } else if (e.op == "<>") {
          op = BinOp::kNe;
        } else if (e.op == "<") {
          op = BinOp::kLt;
        } else if (e.op == "<=") {
          op = BinOp::kLe;
        } else if (e.op == ">") {
          op = BinOp::kGt;
        } else if (e.op == ">=") {
          op = BinOp::kGe;
        } else if (e.op == "and") {
          op = BinOp::kAnd;
        } else if (e.op == "or") {
          op = BinOp::kOr;
        } else {
          return Status::NotSupported("operator " + e.op);
        }
        return Expr::Binary(op, l, r);
      }
      case ExprNodeKind::kNot: {
        GPHTAP_ASSIGN_OR_RETURN(ExprPtr inner, bind(*e.args[0]));
        return Expr::Not(inner);
      }
      case ExprNodeKind::kIsNull: {
        GPHTAP_ASSIGN_OR_RETURN(ExprPtr inner, bind(*e.args[0]));
        return Expr::IsNull(inner);
      }
      case ExprNodeKind::kIsNotNull: {
        GPHTAP_ASSIGN_OR_RETURN(ExprPtr inner, bind(*e.args[0]));
        return Expr::Not(Expr::IsNull(inner));
      }
      default:
        return Status::NotSupported("expression in local select");
    }
  };

  // Select items: either plain expressions or one generate_series() SRF.
  struct Item {
    ExprPtr expr;                  // when scalar
    int64_t srf_start = 0, srf_end = -1;
    bool is_srf = false;
    std::string name;
  };
  std::vector<Item> items;
  int64_t srf_len = 1;
  for (const auto& si : node.items) {
    Item item;
    if (si.expr->kind == ExprNodeKind::kFuncCall && si.expr->func == "generate_series") {
      if (si.expr->args.size() != 2) {
        return Status::InvalidArgument("generate_series expects two arguments");
      }
      GPHTAP_ASSIGN_OR_RETURN(Datum lo, Analyzer::EvalConst(*si.expr->args[0]));
      GPHTAP_ASSIGN_OR_RETURN(Datum hi, Analyzer::EvalConst(*si.expr->args[1]));
      item.is_srf = true;
      item.srf_start = lo.int_val();
      item.srf_end = hi.int_val();
      srf_len = std::max<int64_t>(srf_len, item.srf_end - item.srf_start + 1);
      item.name = si.alias.empty() ? "generate_series" : si.alias;
    } else {
      GPHTAP_ASSIGN_OR_RETURN(item.expr, bind(*si.expr));
      item.name = si.alias.empty() ? "?column?" : si.alias;
    }
    items.push_back(std::move(item));
  }

  ExprPtr where;
  if (node.where != nullptr) {
    GPHTAP_ASSIGN_OR_RETURN(where, bind(*node.where));
  }

  QueryResult result;
  for (const Item& item : items) result.columns.push_back(item.name);

  // Iterate the cross product of the function scans.
  std::vector<int64_t> cursor(funcs.size());
  for (size_t i = 0; i < funcs.size(); ++i) cursor[i] = funcs[i].start;
  bool done = false;
  while (!done) {
    Row input;
    input.reserve(funcs.size());
    for (int64_t v : cursor) input.push_back(Datum(v));
    bool pass = true;
    if (where != nullptr) {
      GPHTAP_ASSIGN_OR_RETURN(pass, EvalPredicate(*where, input));
    }
    if (pass) {
      for (int64_t k = 0; k < srf_len; ++k) {
        Row out;
        out.reserve(items.size());
        for (const Item& item : items) {
          if (item.is_srf) {
            int64_t v = item.srf_start + k;
            out.push_back(v <= item.srf_end ? Datum(v) : Datum::Null());
          } else {
            GPHTAP_ASSIGN_OR_RETURN(Datum d, EvalExpr(*item.expr, input));
            out.push_back(std::move(d));
          }
        }
        result.rows.push_back(std::move(out));
      }
    }
    // Advance the cross-product cursor.
    if (funcs.empty()) break;
    size_t i = 0;
    while (i < funcs.size()) {
      if (++cursor[i] <= funcs[i].end) break;
      cursor[i] = funcs[i].start;
      ++i;
    }
    done = i == funcs.size();
  }
  if (node.limit >= 0 && static_cast<int64_t>(result.rows.size()) > node.limit) {
    result.rows.resize(static_cast<size_t>(node.limit));
  }
  result.affected = static_cast<int64_t>(result.rows.size());
  return result;
}

// `sql`: the statement text, used as the plan-cache key for top-level SELECTs;
// null for embedded selects (INSERT ... SELECT) which skip the cache.
StatusOr<QueryResult> RunSelect(Session* session, const sql_ast::SelectNode& node,
                                const std::string* sql = nullptr) {
  if (node.from.empty() || Analyzer::IsPureFunctionScan(node)) {
    return LocalSelect(node);
  }
  Cluster* cluster = session->cluster();
  if (sql != nullptr && session->PlanCacheEligible()) {
    auto hit = cluster->plan_cache().Lookup(*sql, cluster->catalog_version());
    if (hit != nullptr) {
      session->NoteStmtPlanCacheHit();
      return session->ExecuteCachedPlan(std::move(hit));
    }
  }
  Analyzer analyzer(cluster);
  GPHTAP_ASSIGN_OR_RETURN(SelectQuery q, analyzer.BindSelect(node));
  return session->ExecuteSelect(q, sql);
}

StatusOr<QueryResult> RunCreateTable(Session* session,
                                     const sql_ast::CreateTableNode& ct) {
  TableDef def;
  def.name = ct.name;
  std::vector<Column> cols;
  for (const auto& c : ct.columns) {
    GPHTAP_ASSIGN_OR_RETURN(TypeId type, BindType(c.type));
    cols.push_back({c.name, type});
  }
  def.schema = Schema(std::move(cols));

  GPHTAP_ASSIGN_OR_RETURN(def.storage, BindStorageOptions(ct.with_options,
                                                          &def.compression));

  if (ct.distributed_replicated) {
    def.distribution = DistributionPolicy::Replicated();
  } else if (ct.distributed_randomly) {
    def.distribution = DistributionPolicy::Random();
  } else if (!ct.distributed_by.empty()) {
    std::vector<int> key;
    for (const std::string& c : ct.distributed_by) {
      int idx = def.schema.FindColumn(c);
      if (idx < 0) return Status::NotFound("distribution column " + c);
      key.push_back(idx);
    }
    def.distribution = DistributionPolicy::Hash(std::move(key));
  } else {
    def.distribution = DistributionPolicy::Hash({0});  // Greenplum default
  }

  if (!ct.partitions.empty()) {
    PartitionSpec spec;
    spec.partition_col = def.schema.FindColumn(ct.partition_col);
    if (spec.partition_col < 0) {
      return Status::NotFound("partition column " + ct.partition_col);
    }
    for (const auto& p : ct.partitions) {
      RangePartitionSpec r;
      r.name = p.name;
      r.lower = p.start.value_or(Datum::Null());
      r.upper = p.end.value_or(Datum::Null());
      CompressionKind comp = def.compression;
      GPHTAP_ASSIGN_OR_RETURN(r.storage, BindStorageOptions(p.with_options, &comp));
      if (!p.external_path.empty()) {
        r.storage = StorageKind::kExternal;
        r.external_path = p.external_path;
      }
      spec.ranges.push_back(std::move(r));
    }
    def.partitions = std::move(spec);
  }

  GPHTAP_RETURN_IF_ERROR(session->cluster()->CreateTable(std::move(def)));
  return QueryResult{};
}

StatusOr<QueryResult> RunResourceGroup(Session* session,
                                       const sql_ast::CreateResourceGroupNode& node) {
  ResourceGroupConfig config;
  config.name = node.name;
  for (const auto& [key, value] : node.options) {
    if (key == "concurrency") {
      config.concurrency = std::atoi(value.c_str());
    } else if (key == "cpu_rate_limit") {
      config.cpu_rate_limit = std::atof(value.c_str());
    } else if (key == "cpu_set") {
      size_t dash = value.find('-');
      if (dash == std::string::npos) {
        config.cpuset_begin = config.cpuset_end = std::atoi(value.c_str());
      } else {
        config.cpuset_begin = std::atoi(value.substr(0, dash).c_str());
        config.cpuset_end = std::atoi(value.substr(dash + 1).c_str());
      }
    } else if (key == "memory_limit") {
      config.memory_limit_mb = std::atoll(value.c_str());
    } else if (key == "memory_shared_quota") {
      config.memory_shared_quota = std::atoi(value.c_str());
    } else {
      return Status::NotSupported("resource group option " + key);
    }
  }
  GPHTAP_RETURN_IF_ERROR(session->cluster()->resgroups().CreateGroup(config));
  return QueryResult{};
}

// ---------- PREPARE / EXECUTE parameter machinery ----------

// Highest $N appearing in an (unbound) expression tree.
int MaxParam(const sql_ast::ExprNodePtr& e) {
  if (e == nullptr) return 0;
  int m = e->kind == ExprNodeKind::kParam ? e->param : 0;
  for (const auto& a : e->args) m = std::max(m, MaxParam(a));
  return m;
}

int MaxParamInSelect(const sql_ast::SelectNode& s) {
  int m = 0;
  for (const auto& item : s.items) m = std::max(m, MaxParam(item.expr));
  for (const auto& t : s.from) {
    for (const auto& a : t.func_args) m = std::max(m, MaxParam(a));
  }
  for (const auto& q : s.join_quals) m = std::max(m, MaxParam(q));
  m = std::max(m, MaxParam(s.where));
  for (const auto& g : s.group_by) m = std::max(m, MaxParam(g));
  m = std::max(m, MaxParam(s.having));
  for (const auto& o : s.order_by) m = std::max(m, MaxParam(o.expr));
  return m;
}

int MaxParamInStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return MaxParamInSelect(*stmt.select);
    case StatementKind::kInsert: {
      int m = 0;
      for (const auto& row : stmt.insert->rows) {
        for (const auto& e : row) m = std::max(m, MaxParam(e));
      }
      if (stmt.insert->select != nullptr) {
        m = std::max(m, MaxParamInSelect(*stmt.insert->select));
      }
      return m;
    }
    case StatementKind::kUpdate: {
      int m = MaxParam(stmt.update->where);
      for (const auto& [col, e] : stmt.update->sets) m = std::max(m, MaxParam(e));
      return m;
    }
    case StatementKind::kDelete:
      return MaxParam(stmt.del->where);
    default:
      return 0;
  }
}

// Clones an unbound expression with every $N replaced by its literal value.
// Param-free subtrees are shared (the analyzer never mutates parse nodes).
sql_ast::ExprNodePtr SubstParams(const sql_ast::ExprNodePtr& e,
                                 const std::vector<Datum>& params) {
  if (e == nullptr) return nullptr;
  if (MaxParam(e) == 0) return e;
  auto c = std::make_shared<ExprNode>(*e);
  if (e->kind == ExprNodeKind::kParam) {
    c->kind = ExprNodeKind::kLiteral;
    c->literal = params[static_cast<size_t>(e->param - 1)];
    c->param = 0;
    return c;
  }
  for (auto& a : c->args) a = SubstParams(a, params);
  return c;
}

std::shared_ptr<sql_ast::SelectNode> SubstParamsInSelect(
    const sql_ast::SelectNode& s, const std::vector<Datum>& params) {
  auto c = std::make_shared<sql_ast::SelectNode>(s);
  for (auto& item : c->items) item.expr = SubstParams(item.expr, params);
  for (auto& t : c->from) {
    for (auto& a : t.func_args) a = SubstParams(a, params);
  }
  for (auto& q : c->join_quals) q = SubstParams(q, params);
  c->where = SubstParams(c->where, params);
  for (auto& g : c->group_by) g = SubstParams(g, params);
  c->having = SubstParams(c->having, params);
  for (auto& o : c->order_by) o.expr = SubstParams(o.expr, params);
  return c;
}

// Clones the prepared statement with EXECUTE's argument values substituted.
Statement SubstParamsInStatement(const Statement& stmt,
                                 const std::vector<Datum>& params) {
  Statement out = stmt;
  switch (stmt.kind) {
    case StatementKind::kSelect:
      out.select = SubstParamsInSelect(*stmt.select, params);
      break;
    case StatementKind::kInsert: {
      out.insert = std::make_shared<sql_ast::InsertNode>(*stmt.insert);
      for (auto& row : out.insert->rows) {
        for (auto& e : row) e = SubstParams(e, params);
      }
      if (out.insert->select != nullptr) {
        out.insert->select = SubstParamsInSelect(*out.insert->select, params);
      }
      break;
    }
    case StatementKind::kUpdate: {
      out.update = std::make_shared<sql_ast::UpdateNode>(*stmt.update);
      for (auto& [col, e] : out.update->sets) e = SubstParams(e, params);
      out.update->where = SubstParams(out.update->where, params);
      break;
    }
    case StatementKind::kDelete: {
      out.del = std::make_shared<sql_ast::DeleteNode>(*stmt.del);
      out.del->where = SubstParams(out.del->where, params);
      break;
    }
    default:
      break;
  }
  return out;
}

StatusOr<QueryResult> RunPrepare(Session* session, const sql_ast::PrepareNode& node,
                                 const std::string* sql);
StatusOr<QueryResult> RunExecutePrepared(Session* session,
                                         const sql_ast::ExecuteStmtNode& node);

StatusOr<QueryResult> DispatchStatement(Session* session, const Statement& stmt,
                                        const std::string* sql) {
  Analyzer analyzer(session->cluster());

  switch (stmt.kind) {
    case StatementKind::kSelect:
      return RunSelect(session, *stmt.select, sql);

    case StatementKind::kPrepare:
      return RunPrepare(session, *stmt.prepare, sql);

    case StatementKind::kExecutePrepared:
      return RunExecutePrepared(session, *stmt.execute);

    case StatementKind::kDeallocate: {
      if (stmt.deallocate->name == "*") {
        session->ClearPrepared();
        return QueryResult{};
      }
      if (!session->RemovePrepared(stmt.deallocate->name)) {
        return Status::NotFound("prepared statement " + stmt.deallocate->name +
                                " does not exist");
      }
      return QueryResult{};
    }

    case StatementKind::kExplain: {
      GPHTAP_ASSIGN_OR_RETURN(SelectQuery q, analyzer.BindSelect(*stmt.select));
      if (stmt.explain_analyze) return session->ExplainAnalyzeSelect(q);
      return session->ExplainSelect(q);
    }

    case StatementKind::kInsert: {
      GPHTAP_ASSIGN_OR_RETURN(BoundInsert bound, analyzer.BindInsert(*stmt.insert));
      if (bound.select != nullptr) {
        GPHTAP_ASSIGN_OR_RETURN(QueryResult sel, RunSelect(session, *bound.select));
        // Re-shape the selected rows through the optional column list.
        std::vector<int> positions;
        const Schema& schema = bound.table.schema;
        if (!stmt.insert->columns.empty()) {
          for (const std::string& col : stmt.insert->columns) {
            positions.push_back(schema.FindColumn(col));
          }
        } else {
          for (size_t i = 0; i < schema.num_columns(); ++i) {
            positions.push_back(static_cast<int>(i));
          }
        }
        std::vector<Row> rows;
        rows.reserve(sel.rows.size());
        for (Row& r : sel.rows) {
          if (r.size() != positions.size()) {
            return Status::InvalidArgument("INSERT SELECT arity mismatch");
          }
          Row full(schema.num_columns(), Datum::Null());
          for (size_t i = 0; i < positions.size(); ++i) {
            full[static_cast<size_t>(positions[i])] = std::move(r[i]);
          }
          rows.push_back(std::move(full));
        }
        return session->ExecuteInsert(bound.table, rows);
      }
      return session->ExecuteInsert(bound.table, bound.rows);
    }

    case StatementKind::kUpdate: {
      GPHTAP_ASSIGN_OR_RETURN(BoundUpdate bound, analyzer.BindUpdate(*stmt.update));
      return session->ExecuteUpdate(bound.table, bound.sets, bound.where);
    }

    case StatementKind::kDelete: {
      GPHTAP_ASSIGN_OR_RETURN(BoundDelete bound, analyzer.BindDelete(*stmt.del));
      return session->ExecuteDelete(bound.table, bound.where);
    }

    case StatementKind::kCreateTable:
      return RunCreateTable(session, *stmt.create_table);

    case StatementKind::kCreateIndex:
      GPHTAP_RETURN_IF_ERROR(session->cluster()->CreateIndex(
          stmt.create_index->table, stmt.create_index->column));
      return QueryResult{};

    case StatementKind::kDropTable: {
      Status s = session->cluster()->DropTable(stmt.drop_table->name);
      if (!s.ok() && !(stmt.drop_table->if_exists && s.code() == StatusCode::kNotFound)) {
        return s;
      }
      return QueryResult{};
    }

    case StatementKind::kBegin:
      GPHTAP_RETURN_IF_ERROR(session->Begin());
      return QueryResult{};
    case StatementKind::kCommit:
      GPHTAP_RETURN_IF_ERROR(session->Commit());
      return QueryResult{};
    case StatementKind::kRollback:
      GPHTAP_RETURN_IF_ERROR(session->Rollback());
      return QueryResult{};

    case StatementKind::kLockTable: {
      GPHTAP_ASSIGN_OR_RETURN(TableDef def,
                              session->cluster()->LookupTable(stmt.lock_table->table));
      GPHTAP_RETURN_IF_ERROR(session->LockTable(def, stmt.lock_table->mode));
      return QueryResult{};
    }

    case StatementKind::kTruncate: {
      GPHTAP_ASSIGN_OR_RETURN(TableDef def,
                              session->cluster()->LookupTable(stmt.truncate->table));
      return session->ExecuteTruncate(def);
    }

    case StatementKind::kVacuum: {
      GPHTAP_ASSIGN_OR_RETURN(TableDef def,
                              session->cluster()->LookupTable(stmt.vacuum->table));
      return session->ExecuteVacuum(def);
    }

    case StatementKind::kCluster: {
      GPHTAP_ASSIGN_OR_RETURN(TableDef def,
                              session->cluster()->LookupTable(stmt.cluster->table));
      int order_col = -1;
      if (!stmt.cluster->using_col.empty()) {
        order_col = def.schema.FindColumn(stmt.cluster->using_col);
        if (order_col < 0) {
          return Status::InvalidArgument("CLUSTER: no such column: " +
                                         stmt.cluster->using_col);
        }
      }
      return session->ExecuteCluster(def, order_col);
    }

    case StatementKind::kRebalance:
      return session->ExecuteRebalance(stmt.rebalance->table);

    case StatementKind::kCreateResourceGroup:
      return RunResourceGroup(session, *stmt.create_resource_group);

    case StatementKind::kDropResourceGroup:
      GPHTAP_RETURN_IF_ERROR(
          session->cluster()->resgroups().DropGroup(stmt.drop_resource_group->name));
      return QueryResult{};

    case StatementKind::kCreateRole:
    case StatementKind::kAlterRole:
      if (!stmt.role_resource_group->group.empty()) {
        GPHTAP_RETURN_IF_ERROR(session->cluster()->resgroups().AssignRole(
            stmt.role_resource_group->role, stmt.role_resource_group->group));
      }
      return QueryResult{};

    case StatementKind::kSet: {
      if (stmt.set->name == "role") {
        session->SetRole(stmt.set->value);
        return QueryResult{};
      }
      // Timeout GUCs take a millisecond count (PostgreSQL's default unit for
      // statement_timeout / lock_timeout); 0 disables.
      auto parse_timeout_ms = [&]() -> StatusOr<int64_t> {
        const std::string& v = stmt.set->value;
        if (v.empty()) return Status::InvalidArgument("SET " + stmt.set->name +
                                                      " requires a value");
        char* end = nullptr;
        long long ms = std::strtoll(v.c_str(), &end, 10);
        if (end == v.c_str() || *end != '\0' || ms < 0) {
          return Status::InvalidArgument("invalid value for " + stmt.set->name +
                                         ": " + v);
        }
        return static_cast<int64_t>(ms) * 1000;
      };
      if (stmt.set->name == "statement_timeout") {
        GPHTAP_ASSIGN_OR_RETURN(int64_t us, parse_timeout_ms());
        session->set_statement_timeout_us(us);
      } else if (stmt.set->name == "lock_timeout") {
        GPHTAP_ASSIGN_OR_RETURN(int64_t us, parse_timeout_ms());
        session->set_lock_timeout_us(us);
      } else if (stmt.set->name == "admission_timeout") {
        GPHTAP_ASSIGN_OR_RETURN(int64_t us, parse_timeout_ms());
        session->set_admission_timeout_us(us);
      } else if (stmt.set->name == "vectorized_execution") {
        // Engine-choice override for A/B comparisons (differential tests,
        // bench baselines). "default" reverts to the cluster option.
        std::string v = stmt.set->value;
        for (char& c : v) c = static_cast<char>(std::tolower(c));
        if (v == "on" || v == "true" || v == "1") {
          session->set_vectorize_override(true);
        } else if (v == "off" || v == "false" || v == "0") {
          session->set_vectorize_override(false);
        } else if (v == "default" || v.empty()) {
          session->set_vectorize_override(std::nullopt);
        } else {
          return Status::InvalidArgument(
              "invalid value for vectorized_execution: " + stmt.set->value);
        }
      }
      // Other settings are accepted and ignored (GUC compatibility).
      return QueryResult{};
    }

    case StatementKind::kShowTables: {
      QueryResult r;
      r.columns = {"table_name", "storage", "distribution"};
      for (const TableDef& def : session->cluster()->ListTables()) {
        const char* dist = def.distribution.kind == DistributionKind::kHash ? "hash"
                           : def.distribution.kind == DistributionKind::kReplicated
                               ? "replicated"
                               : "random";
        r.rows.push_back(Row{Datum(def.name), Datum(std::string(StorageKindName(def.storage))),
                             Datum(std::string(dist))});
      }
      r.affected = static_cast<int64_t>(r.rows.size());
      return r;
    }
  }
  return Status::Internal("unhandled statement kind");
}

// Does any conjunct pin a combined-layout column to a parameter? Collects the
// pinned columns (the same shape ExtractEqualityConst matches for constants).
void CollectParamEqCols(const Expr& e, std::vector<int>* cols) {
  if (e.kind == ExprKind::kBinary && e.op == BinOp::kAnd) {
    CollectParamEqCols(*e.left, cols);
    CollectParamEqCols(*e.right, cols);
    return;
  }
  if (e.kind != ExprKind::kBinary || e.op != BinOp::kEq) return;
  const Expr& l = *e.left;
  const Expr& r = *e.right;
  if (l.kind == ExprKind::kColumn && r.kind == ExprKind::kParam) {
    cols->push_back(l.column);
  } else if (r.kind == ExprKind::kColumn && l.kind == ExprKind::kParam) {
    cols->push_back(r.column);
  }
}

// Postgres keeps re-planning per EXECUTE ("custom plans") when the generic
// plan is structurally worse. Here that is exactly when a parameter pins an
// indexed column or a hash-distribution key: planned as an opaque parameter
// the scan forfeits the index lookup and direct dispatch a constant would
// get, turning a one-segment point read into a full-cluster seq scan.
bool GenericPlanForfeitsKeyLookup(const SelectQuery& q) {
  std::vector<int> cols;
  for (const ExprPtr& qual : q.quals) {
    if (qual != nullptr) CollectParamEqCols(*qual, &cols);
  }
  if (cols.empty()) return false;
  for (int col : cols) {
    int offset = 0;
    for (const TableDef& t : q.tables) {
      int n = static_cast<int>(t.schema.num_columns());
      if (col < offset + n) {
        int local = col - offset;
        for (int ic : t.indexed_cols) {
          if (ic == local) return true;
        }
        if (t.distribution.kind == DistributionKind::kHash) {
          for (int kc : t.distribution.key_cols) {
            if (kc == local) return true;
          }
        }
        break;
      }
      offset += n;
    }
  }
  return false;
}

StatusOr<QueryResult> RunPrepare(Session* session, const sql_ast::PrepareNode& node,
                                 const std::string* sql) {
  const Statement& inner = *node.stmt;
  switch (inner.kind) {
    case StatementKind::kSelect:
    case StatementKind::kInsert:
    case StatementKind::kUpdate:
    case StatementKind::kDelete:
      break;
    default:
      return Status::NotSupported("PREPARE supports SELECT/INSERT/UPDATE/DELETE");
  }
  auto ps = std::make_shared<PreparedStatement>();
  ps->name = node.name;
  ps->stmt = node.stmt;
  ps->num_params = MaxParamInStatement(inner);
  // FingerprintSql strips the PREPARE..AS wrapper, so this equals the inner
  // statement's fingerprint and EXECUTEs aggregate with the literal form.
  if (sql != nullptr) ps->fingerprint = FingerprintSql(*sql);
  // SELECTs over tables get their generic plan now; EXECUTE only substitutes
  // values into a clone. FROM-less / function-scan selects and DML re-bind
  // per EXECUTE (still skipping the parse).
  if (inner.kind == StatementKind::kSelect && !inner.select->from.empty() &&
      !Analyzer::IsPureFunctionScan(*inner.select)) {
    Analyzer analyzer(session->cluster());
    GPHTAP_ASSIGN_OR_RETURN(SelectQuery q, analyzer.BindSelect(*inner.select));
    if (!GenericPlanForfeitsKeyLookup(q)) {
      GPHTAP_RETURN_IF_ERROR(session->PlanForPrepare(q, ps.get()));
    }
    // else: custom-plan mode — EXECUTE substitutes values into the parse
    // tree and plans fresh, keeping index scans / direct dispatch.
  }
  session->PutPrepared(node.name, std::move(ps));
  return QueryResult{};
}

StatusOr<QueryResult> RunExecutePrepared(Session* session,
                                         const sql_ast::ExecuteStmtNode& node) {
  std::shared_ptr<PreparedStatement> ps = session->GetPrepared(node.name);
  if (ps == nullptr) {
    return Status::NotFound("prepared statement " + node.name + " does not exist");
  }
  if (static_cast<int>(node.args.size()) != ps->num_params) {
    return Status::InvalidArgument(
        "wrong number of parameters for " + node.name + ": expected " +
        std::to_string(ps->num_params) + ", got " +
        std::to_string(node.args.size()));
  }
  std::vector<Datum> params;
  params.reserve(node.args.size());
  for (const auto& arg : node.args) {
    GPHTAP_ASSIGN_OR_RETURN(Datum d, Analyzer::EvalConst(*arg));
    params.push_back(std::move(d));
  }
  // Attribute this EXECUTE to the prepared text's fingerprint, not to
  // "execute name($1)".
  if (!ps->fingerprint.empty()) session->SetStmtFingerprint(ps->fingerprint);

  if (ps->has_plan) {
    // Generic-plan reuse is the prepared-statement analogue of a plan-cache
    // hit; a catalog-version miss below replans and is counted as a miss.
    if (ps->catalog_version == session->cluster()->catalog_version()) {
      session->NoteStmtPlanCacheHit();
    }
    // Generic-plan fast path: no parse, no analyze, no planning. Replan only
    // when DDL/expansion/rebalance moved the catalog version.
    Cluster* cluster = session->cluster();
    if (ps->catalog_version != cluster->catalog_version()) {
      Analyzer analyzer(cluster);
      GPHTAP_ASSIGN_OR_RETURN(SelectQuery q, analyzer.BindSelect(*ps->stmt->select));
      GPHTAP_RETURN_IF_ERROR(session->PlanForPrepare(q, ps.get()));
    }
    auto plan = std::make_shared<CachedPlan>();
    if (params.empty()) {
      plan->root = ps->plan_root;  // no substitution needed: share the tree
    } else {
      GPHTAP_ASSIGN_OR_RETURN(PlanPtr root,
                              ClonePlanWithParams(*ps->plan_root, params));
      plan->root = std::move(root);
    }
    plan->gang = ps->gang;
    plan->columns = ps->columns;
    plan->tables = ps->tables;
    plan->catalog_version = ps->catalog_version;
    return session->ExecuteCachedPlan(std::move(plan));
  }

  // DML / local selects: substitute values into the parse tree and dispatch,
  // skipping only the parse. (Row-DML binding is cheap; the win is the
  // SELECT path above.)
  Statement substituted = SubstParamsInStatement(*ps->stmt, params);
  return DispatchStatement(session, substituted, nullptr);
}

}  // namespace

StatusOr<QueryResult> ExecuteSql(Session* session, const std::string& sql) {
  GPHTAP_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  return DispatchStatement(session, stmt, &sql);
}

}  // namespace sql_driver
}  // namespace gphtap
