// Raw parse tree (unbound names), produced by the parser, consumed by the
// analyzer.
#ifndef GPHTAP_SQL_AST_H_
#define GPHTAP_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/datum.h"
#include "lock/lock_defs.h"

namespace gphtap {
namespace sql_ast {

// ---------- expressions ----------

enum class ExprNodeKind : uint8_t {
  kLiteral,
  kColumnRef,  // [table.]column
  kBinary,
  kNot,
  kIsNull,
  kIsNotNull,
  kFuncCall,   // aggregates and generate_series
  kStar,       // inside COUNT(*)
  kParam,      // $N positional parameter (PREPARE/EXECUTE)
};

struct ExprNode;
using ExprNodePtr = std::shared_ptr<ExprNode>;

struct ExprNode {
  ExprNodeKind kind = ExprNodeKind::kLiteral;
  Datum literal;
  std::string table;   // kColumnRef qualifier (may be empty)
  std::string column;  // kColumnRef name
  std::string op;      // kBinary: "+", "=", "and", ...
  std::string func;    // kFuncCall name (lowercased)
  std::vector<ExprNodePtr> args;  // binary: [l, r]; not/isnull: [x]; func: args
  int param = 0;       // kParam: 1-based position ($1, $2, ...)
};

// ---------- SELECT ----------

struct SelectItemNode {
  ExprNodePtr expr;
  std::string alias;  // may be empty
};

struct TableRefNode {
  std::string name;   // table name, or function name for function scans
  std::string alias;  // may be empty
  bool is_function = false;
  std::vector<ExprNodePtr> func_args;  // generate_series bounds
};

struct OrderItemNode {
  ExprNodePtr expr;  // column ref or integer position
  bool ascending = true;
};

struct SelectNode {
  bool distinct = false;
  std::vector<SelectItemNode> items;
  std::vector<TableRefNode> from;
  std::vector<ExprNodePtr> join_quals;  // from JOIN ... ON
  ExprNodePtr where;
  std::vector<ExprNodePtr> group_by;
  ExprNodePtr having;
  std::vector<OrderItemNode> order_by;
  int64_t limit = -1;
};

// ---------- DML ----------

struct InsertNode {
  std::string table;
  std::vector<std::string> columns;            // optional explicit column list
  std::vector<std::vector<ExprNodePtr>> rows;  // VALUES
  std::shared_ptr<SelectNode> select;          // INSERT ... SELECT
};

struct UpdateNode {
  std::string table;
  std::vector<std::pair<std::string, ExprNodePtr>> sets;
  ExprNodePtr where;
};

struct DeleteNode {
  std::string table;
  ExprNodePtr where;
};

// ---------- DDL ----------

struct ColumnDefNode {
  std::string name;
  std::string type;  // raw type word
};

struct PartitionDefNode {
  std::string name;
  std::optional<Datum> start;  // inclusive
  std::optional<Datum> end;    // exclusive
  std::vector<std::pair<std::string, std::string>> with_options;
  std::string external_path;  // EXTERNAL 'path'
};

struct CreateTableNode {
  std::string name;
  std::vector<ColumnDefNode> columns;
  std::vector<std::pair<std::string, std::string>> with_options;
  // distribution
  bool distributed_replicated = false;
  bool distributed_randomly = false;
  std::vector<std::string> distributed_by;
  // partitioning
  std::string partition_col;
  std::vector<PartitionDefNode> partitions;
};

struct CreateIndexNode {
  std::string index_name;
  std::string table;
  std::string column;
};

struct DropTableNode {
  std::string name;
  bool if_exists = false;
};

struct LockTableNode {
  std::string table;
  LockMode mode = LockMode::kAccessExclusive;
};

struct VacuumNode {
  std::string table;
};

struct ClusterNode {  // CLUSTER t [USING col]: transactional reorg rewrite
  std::string table;
  std::string using_col;  // empty = keep storage order, just rewrite live rows
};

struct RebalanceNode {  // REBALANCE TABLE t: migrate onto all serving segments
  std::string table;
};

struct TruncateNode {
  std::string table;
};

// ---------- resource groups / roles / settings ----------

struct CreateResourceGroupNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> options;  // raw key/value
};

struct DropResourceGroupNode {
  std::string name;
};

struct RoleResourceGroupNode {  // CREATE ROLE r RESOURCE GROUP g / ALTER ROLE ...
  std::string role;
  std::string group;
};

struct SetNode {
  std::string name;   // "role" or a GUC-ish name
  std::string value;
};

// ---------- prepared statements ----------

struct Statement;

struct PrepareNode {  // PREPARE name AS <statement>
  std::string name;
  std::shared_ptr<Statement> stmt;  // the parameterized inner statement
};

struct ExecuteStmtNode {  // EXECUTE name [( arg, ... )]
  std::string name;
  std::vector<ExprNodePtr> args;  // constant expressions
};

struct DeallocateNode {  // DEALLOCATE name
  std::string name;
};

// ---------- statement ----------

enum class StatementKind : uint8_t {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kCreateIndex,
  kDropTable,
  kBegin,
  kCommit,
  kRollback,
  kLockTable,
  kVacuum,
  kCluster,
  kRebalance,
  kCreateResourceGroup,
  kDropResourceGroup,
  kCreateRole,
  kAlterRole,
  kSet,
  kShowTables,
  kExplain,  // EXPLAIN SELECT ...
  kTruncate,
  kPrepare,          // PREPARE name AS <stmt>
  kExecutePrepared,  // EXECUTE name(args)
  kDeallocate,       // DEALLOCATE name
};

struct Statement {
  StatementKind kind = StatementKind::kSelect;
  bool explain_analyze = false;  // EXPLAIN ANALYZE (kExplain only)
  std::shared_ptr<SelectNode> select;
  std::shared_ptr<InsertNode> insert;
  std::shared_ptr<UpdateNode> update;
  std::shared_ptr<DeleteNode> del;
  std::shared_ptr<CreateTableNode> create_table;
  std::shared_ptr<CreateIndexNode> create_index;
  std::shared_ptr<DropTableNode> drop_table;
  std::shared_ptr<LockTableNode> lock_table;
  std::shared_ptr<VacuumNode> vacuum;
  std::shared_ptr<ClusterNode> cluster;
  std::shared_ptr<RebalanceNode> rebalance;
  std::shared_ptr<TruncateNode> truncate;
  std::shared_ptr<CreateResourceGroupNode> create_resource_group;
  std::shared_ptr<DropResourceGroupNode> drop_resource_group;
  std::shared_ptr<RoleResourceGroupNode> role_resource_group;
  std::shared_ptr<SetNode> set;
  std::shared_ptr<PrepareNode> prepare;
  std::shared_ptr<ExecuteStmtNode> execute;
  std::shared_ptr<DeallocateNode> deallocate;
};

}  // namespace sql_ast
}  // namespace gphtap

#endif  // GPHTAP_SQL_AST_H_
