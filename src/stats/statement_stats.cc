#include "stats/statement_stats.h"

#include <algorithm>
#include <atomic>

namespace gphtap {

namespace {
constexpr const char* kOverflowKey = "<overflow>";
}  // namespace

void StatementStatsRegistry::Record(const std::string& fingerprint,
                                    const Sample& sample) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(fingerprint);
  if (it == slots_.end()) {
    if (slots_.size() >= capacity_) {
      it = slots_.try_emplace(kOverflowKey).first;
    } else {
      it = slots_.try_emplace(fingerprint).first;
    }
  }
  Slot& s = it->second;
  s.calls += 1;
  if (!sample.ok) s.errors += 1;
  if (sample.timed_out) s.timeouts += 1;
  s.retries += sample.retries;
  if (sample.plan_cache_hit) s.plan_cache_hits += 1;
  s.rows += sample.rows;
  s.total_us += sample.elapsed_us;
  if (s.calls == 1 || sample.elapsed_us < s.min_us) s.min_us = sample.elapsed_us;
  if (sample.elapsed_us > s.max_us) s.max_us = sample.elapsed_us;
  s.latency.Record(sample.elapsed_us);
  if (sample.resources != nullptr) {
    const StatementResources& r = *sample.resources;
    s.gang_slices.Merge(r.slice_histogram());
    s.vec_batches += r.vec_batches.load(std::memory_order_relaxed);
    s.vec_fallbacks += r.vec_fallbacks.load(std::memory_order_relaxed);
    s.exec_cpu_ns += r.exec_cpu_ns.load(std::memory_order_relaxed);
    s.net_bytes += r.net_bytes.load(std::memory_order_relaxed);
    s.buffer_hits += r.buffer_hits.load(std::memory_order_relaxed);
    s.buffer_misses += r.buffer_misses.load(std::memory_order_relaxed);
  }
  for (const auto& w : sample.top_waits) s.wait_us[w.event] += w.total_us;
}

std::vector<StatementStatsRegistry::Entry> StatementStatsRegistry::Snapshot()
    const {
  std::vector<Entry> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(slots_.size());
    for (const auto& [fp, s] : slots_) {
      Entry e;
      e.fingerprint = fp;
      e.calls = s.calls;
      e.errors = s.errors;
      e.timeouts = s.timeouts;
      e.retries = s.retries;
      e.plan_cache_hits = s.plan_cache_hits;
      e.rows = s.rows;
      e.total_us = s.total_us;
      e.min_us = s.min_us;
      e.max_us = s.max_us;
      e.p95_us = s.latency.Percentile(95.0);
      e.gang_p95_us = s.gang_slices.Percentile(95.0);
      e.vec_batches = s.vec_batches;
      e.vec_fallbacks = s.vec_fallbacks;
      e.exec_cpu_ns = s.exec_cpu_ns;
      e.net_bytes = s.net_bytes;
      e.buffer_hits = s.buffer_hits;
      e.buffer_misses = s.buffer_misses;
      for (const auto& [event, us] : s.wait_us) {
        if (us > e.top_wait_us) {
          e.top_wait = event;
          e.top_wait_us = us;
        }
      }
      out.push_back(std::move(e));
    }
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.total_us != b.total_us) return a.total_us > b.total_us;
    return a.fingerprint < b.fingerprint;
  });
  return out;
}

void StatementStatsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.clear();
}

}  // namespace gphtap
