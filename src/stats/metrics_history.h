// Metrics history ring (gp_stat_history): the cluster's history daemon calls
// Capture() with a fresh MetricsSnapshot every stats_history_period_us; the
// ring keeps the last `capacity` ticks. To keep ticks small, a tick stores
// only metrics that are nonzero or changed since the previous capture, along
// with the per-metric delta — so a counter's trajectory ("what did
// vec.fallbacks look like five minutes ago") is one SQL query over
// (tick, metric, value, delta) instead of diffing two StatsDump() blobs.
#ifndef GPHTAP_STATS_METRICS_HISTORY_H_
#define GPHTAP_STATS_METRICS_HISTORY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"

namespace gphtap {

class MetricsHistory {
 public:
  explicit MetricsHistory(size_t capacity = 120) : capacity_(capacity) {}

  struct Row {
    uint64_t tick = 0;     // monotonically increasing capture sequence
    int64_t at_us = 0;     // monotonic capture time
    std::string metric;    // counter name, or gauge name prefixed "gauge:"
    int64_t value = 0;     // absolute value at the tick
    int64_t delta = 0;     // change since the previous capture
  };

  /// Records one capture. Only metrics with a nonzero value or nonzero delta
  /// land in the tick; deltas are computed against the previous capture even
  /// when the older tick has already been evicted from the ring.
  void Capture(const MetricsSnapshot& snapshot, int64_t at_us);

  /// Every retained (tick, metric) row, oldest tick first.
  std::vector<Row> Rows() const;

  uint64_t ticks() const;

  /// CSV dump (tick,at_us,metric,value,delta) for offline plotting.
  std::string ToCsv() const;

 private:
  struct Tick {
    uint64_t tick = 0;
    int64_t at_us = 0;
    // metric -> (value, delta)
    std::vector<std::pair<std::string, std::pair<int64_t, int64_t>>> metrics;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Tick> ring_;
  uint64_t next_tick_ = 0;
  std::map<std::string, int64_t> prev_;  // last value per metric, persistent
};

}  // namespace gphtap

#endif  // GPHTAP_STATS_METRICS_HISTORY_H_
