// Maintenance progress reporting (gp_stat_progress, modeled on PostgreSQL's
// pg_stat_progress_* views): a long-running operation — VACUUM, CLUSTER,
// REBALANCE TABLE, the delta seal daemon — opens a RAII Handle on the
// cluster's ProgressRegistry and updates phase / node / units-done /
// units-total from its existing loops. Readers see live operations plus a
// bounded ring of recently finished ones (so a test or operator can confirm
// an op ran, which phases it passed through, and how many units it covered,
// even after it completed).
#ifndef GPHTAP_STATS_PROGRESS_H_
#define GPHTAP_STATS_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gphtap {

enum class ProgressOp {
  kVacuum = 0,
  kCluster,
  kRebalance,
  kDeltaSeal,
};

const char* ProgressOpName(ProgressOp op);

class ProgressRegistry {
 public:
  struct Snapshot {
    uint64_t op_id = 0;
    ProgressOp op = ProgressOp::kVacuum;
    std::string target;  // table name, or "" for daemon-wide ops
    int node = -1;       // segment currently being worked, -1 = cluster-wide
    std::string phase;
    int64_t units_done = 0;
    int64_t units_total = 0;  // 0 = unknown
    int64_t elapsed_us = 0;
    bool finished = false;
    std::vector<std::string> phase_history;  // phases entered, in order
  };

  /// Move-only RAII registration. All updates are cheap (atomics; phase takes
  /// a short mutex) so per-row Advance() from a copy loop is fine. The
  /// destructor retires the entry into the finished ring.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&&) noexcept;
    Handle& operator=(Handle&&) noexcept;
    ~Handle();

    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    void SetPhase(const std::string& phase);
    void SetNode(int node);
    void SetTotal(int64_t total);
    void SetDone(int64_t done);
    void Advance(int64_t n = 1);

    bool active() const { return state_ != nullptr; }

   private:
    friend class ProgressRegistry;
    struct State;
    std::shared_ptr<State> state_;
    ProgressRegistry* registry_ = nullptr;
  };

  /// Registers a new live operation. `target` names what is being worked on
  /// (table name; "" for daemons).
  Handle Begin(ProgressOp op, const std::string& target);

  /// Live operations followed by recently finished ones (newest-finished
  /// last). Backs the gp_stat_progress view.
  std::vector<Snapshot> SnapshotAll() const;

 private:
  static constexpr size_t kFinishedCapacity = 32;
  static constexpr size_t kPhaseHistoryCapacity = 16;

  void Finish(const std::shared_ptr<Handle::State>& state);
  static Snapshot Read(const Handle::State& state, bool finished);

  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::vector<std::shared_ptr<Handle::State>> active_;
  std::deque<Snapshot> finished_;
};

}  // namespace gphtap

#endif  // GPHTAP_STATS_PROGRESS_H_
