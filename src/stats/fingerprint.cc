#include "stats/fingerprint.h"

#include <cctype>

#include "sql/lexer.h"

namespace gphtap {

namespace {

// Lowercased, whitespace-collapsed raw text — the fallback key for statements
// the lexer rejects (still stable, just not literal-normalized).
std::string CollapsedRaw(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool pending_space = false;
  for (char c : sql) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  while (!out.empty() && out.back() == ';') out.pop_back();
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

bool NoSpaceBefore(const Token& t) {
  return t.IsSymbol(",") || t.IsSymbol(")") || t.IsSymbol(";") ||
         t.IsSymbol(".") || t.IsSymbol("(");
}

bool NoSpaceAfter(const Token& t) {
  return t.IsSymbol("(") || t.IsSymbol(".");
}

}  // namespace

std::string FingerprintSql(const std::string& sql) {
  auto tokens_or = Tokenize(sql);
  if (!tokens_or.ok()) return CollapsedRaw(sql);
  const std::vector<Token>& tokens = *tokens_or;

  // `PREPARE name AS <stmt>` fingerprints as <stmt>, so the PREPARE statement
  // and its EXECUTEs (attributed via the stored fingerprint) share one row.
  size_t begin = 0;
  if (!tokens.empty() && tokens[0].IsWord("prepare")) {
    for (size_t i = 1; i < tokens.size(); ++i) {
      if (tokens[i].Is(TokenType::kEnd)) break;
      if (tokens[i].IsWord("as")) {
        begin = i + 1;
        break;
      }
    }
  }

  std::string out;
  out.reserve(sql.size());
  int next_placeholder = 1;
  bool suppress_space = true;  // no leading space
  for (size_t i = begin; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.Is(TokenType::kEnd)) break;
    // Trailing `;` (possibly followed only by kEnd) is dropped so `...;` and
    // `...` collide; an interior `;` separating statements is kept.
    if (t.IsSymbol(";")) {
      bool trailing = true;
      for (size_t j = i + 1; j < tokens.size(); ++j) {
        if (!tokens[j].Is(TokenType::kEnd)) {
          trailing = false;
          break;
        }
      }
      if (trailing) break;
    }

    std::string piece;
    switch (t.type) {
      case TokenType::kInt:
      case TokenType::kFloat:
      case TokenType::kString:
      case TokenType::kParam:
        // Literals and $N params share one renumbered placeholder sequence so
        // the literal and prepared forms of a statement collide.
        piece = "$" + std::to_string(next_placeholder++);
        break;
      default:
        piece = t.text;  // idents already lowercased by the lexer
        break;
    }

    if (!suppress_space && !NoSpaceBefore(t)) out.push_back(' ');
    out += piece;
    suppress_space = NoSpaceAfter(t);
  }
  if (out.empty()) return CollapsedRaw(sql);
  return out;
}

}  // namespace gphtap
