// Per-statement gang-wide resource accumulator. One instance lives in the
// Session and is reset at statement start; a pointer to it rides the ambient
// WaitContext (copied into every producer slice's context by the executor) and
// the ExecContext, so segment-side code — buffer pool, motion, vec engine,
// slice timers — can attribute work to the statement without new plumbing.
// All fields are relaxed atomics: producers on different threads bump them
// concurrently and the session reads them only after ExecutePlan joins.
#ifndef GPHTAP_STATS_STATEMENT_RESOURCES_H_
#define GPHTAP_STATS_STATEMENT_RESOURCES_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/histogram.h"

namespace gphtap {

struct StatementResources {
  std::atomic<uint64_t> exec_cpu_ns{0};    // summed slice wall time across the gang
  std::atomic<uint64_t> net_bytes{0};      // motion bytes sent (SimNet-charged)
  std::atomic<uint64_t> buffer_hits{0};
  std::atomic<uint64_t> buffer_misses{0};
  std::atomic<uint64_t> vec_batches{0};
  std::atomic<uint64_t> vec_fallbacks{0};

  /// Per-slice wall time distribution for this statement; merged into the
  /// cumulative per-fingerprint gang histogram via Histogram::Merge.
  void RecordSliceUs(int64_t us) {
    std::lock_guard<std::mutex> lock(mu_);
    slices_.Record(us);
  }

  Histogram slice_histogram() const {
    std::lock_guard<std::mutex> lock(mu_);
    return slices_;
  }

  void Reset() {
    exec_cpu_ns.store(0, std::memory_order_relaxed);
    net_bytes.store(0, std::memory_order_relaxed);
    buffer_hits.store(0, std::memory_order_relaxed);
    buffer_misses.store(0, std::memory_order_relaxed);
    vec_batches.store(0, std::memory_order_relaxed);
    vec_fallbacks.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    slices_.Reset();
  }

 private:
  mutable std::mutex mu_;
  Histogram slices_;
};

}  // namespace gphtap

#endif  // GPHTAP_STATS_STATEMENT_RESOURCES_H_
