#include "stats/progress.h"

#include <algorithm>

#include "common/clock.h"

namespace gphtap {

const char* ProgressOpName(ProgressOp op) {
  switch (op) {
    case ProgressOp::kVacuum:
      return "vacuum";
    case ProgressOp::kCluster:
      return "cluster";
    case ProgressOp::kRebalance:
      return "rebalance";
    case ProgressOp::kDeltaSeal:
      return "delta-seal";
  }
  return "?";
}

struct ProgressRegistry::Handle::State {
  uint64_t op_id = 0;
  ProgressOp op = ProgressOp::kVacuum;
  std::string target;
  int64_t started_us = 0;
  std::atomic<int> node{-1};
  std::atomic<int64_t> done{0};
  std::atomic<int64_t> total{0};
  std::atomic<int64_t> updated_us{0};

  mutable std::mutex phase_mu;
  std::string phase;
  std::vector<std::string> phase_history;
};

ProgressRegistry::Handle::Handle(Handle&& o) noexcept
    : state_(std::move(o.state_)), registry_(o.registry_) {
  o.registry_ = nullptr;
}

ProgressRegistry::Handle& ProgressRegistry::Handle::operator=(
    Handle&& o) noexcept {
  if (this != &o) {
    if (state_ != nullptr && registry_ != nullptr) registry_->Finish(state_);
    state_ = std::move(o.state_);
    registry_ = o.registry_;
    o.registry_ = nullptr;
  }
  return *this;
}

ProgressRegistry::Handle::~Handle() {
  if (state_ != nullptr && registry_ != nullptr) registry_->Finish(state_);
}

void ProgressRegistry::Handle::SetPhase(const std::string& phase) {
  if (state_ == nullptr) return;
  std::lock_guard<std::mutex> lock(state_->phase_mu);
  state_->phase = phase;
  if (state_->phase_history.size() < kPhaseHistoryCapacity &&
      (state_->phase_history.empty() || state_->phase_history.back() != phase)) {
    state_->phase_history.push_back(phase);
  }
  state_->updated_us.store(MonotonicMicros(), std::memory_order_relaxed);
}

void ProgressRegistry::Handle::SetNode(int node) {
  if (state_ == nullptr) return;
  state_->node.store(node, std::memory_order_relaxed);
  state_->updated_us.store(MonotonicMicros(), std::memory_order_relaxed);
}

void ProgressRegistry::Handle::SetTotal(int64_t total) {
  if (state_ == nullptr) return;
  state_->total.store(total, std::memory_order_relaxed);
}

void ProgressRegistry::Handle::SetDone(int64_t done) {
  if (state_ == nullptr) return;
  state_->done.store(done, std::memory_order_relaxed);
  state_->updated_us.store(MonotonicMicros(), std::memory_order_relaxed);
}

void ProgressRegistry::Handle::Advance(int64_t n) {
  if (state_ == nullptr) return;
  state_->done.fetch_add(n, std::memory_order_relaxed);
  state_->updated_us.store(MonotonicMicros(), std::memory_order_relaxed);
}

ProgressRegistry::Handle ProgressRegistry::Begin(ProgressOp op,
                                                 const std::string& target) {
  auto state = std::make_shared<Handle::State>();
  state->op = op;
  state->target = target;
  state->started_us = MonotonicMicros();
  state->updated_us.store(state->started_us, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    state->op_id = next_id_++;
    active_.push_back(state);
  }
  Handle h;
  h.state_ = std::move(state);
  h.registry_ = this;
  return h;
}

ProgressRegistry::Snapshot ProgressRegistry::Read(const Handle::State& state,
                                                  bool finished) {
  Snapshot s;
  s.op_id = state.op_id;
  s.op = state.op;
  s.target = state.target;
  s.node = state.node.load(std::memory_order_relaxed);
  s.units_done = state.done.load(std::memory_order_relaxed);
  s.units_total = state.total.load(std::memory_order_relaxed);
  s.elapsed_us =
      state.updated_us.load(std::memory_order_relaxed) - state.started_us;
  s.finished = finished;
  {
    std::lock_guard<std::mutex> lock(state.phase_mu);
    s.phase = state.phase;
    s.phase_history = state.phase_history;
  }
  return s;
}

void ProgressRegistry::Finish(const std::shared_ptr<Handle::State>& state) {
  Snapshot final = Read(*state, /*finished=*/true);
  final.elapsed_us = MonotonicMicros() - state->started_us;
  std::lock_guard<std::mutex> lock(mu_);
  active_.erase(std::remove(active_.begin(), active_.end(), state),
                active_.end());
  finished_.push_back(std::move(final));
  while (finished_.size() > kFinishedCapacity) finished_.pop_front();
}

std::vector<ProgressRegistry::Snapshot> ProgressRegistry::SnapshotAll() const {
  std::vector<Snapshot> out;
  std::vector<std::shared_ptr<Handle::State>> active;
  {
    std::lock_guard<std::mutex> lock(mu_);
    active = active_;
    out.assign(finished_.begin(), finished_.end());
  }
  for (const auto& state : active) {
    Snapshot s = Read(*state, /*finished=*/false);
    s.elapsed_us = MonotonicMicros() - state->started_us;
    out.push_back(std::move(s));
  }
  // Finished ops first (oldest first), then live ones — stable op_id order
  // within each group.
  std::sort(out.begin(), out.end(), [](const Snapshot& a, const Snapshot& b) {
    if (a.finished != b.finished) return a.finished;
    return a.op_id < b.op_id;
  });
  return out;
}

}  // namespace gphtap
