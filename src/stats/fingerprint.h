// Statement fingerprinting for cumulative query statistics (gp_stat_statements,
// modeled on pg_stat_statements' query normalization): a fingerprint is the
// statement with every literal replaced by a positional placeholder, rendered
// from the lexer's token stream so whitespace and identifier case differences
// collapse to one shape. `SELECT * FROM t WHERE id = 7` and
// `select  *  from T where ID=42` share a fingerprint, and a prepared
// statement's `$N` parameters land on the same shape as the literals they
// stand for — EXECUTE of a prepared statement is attributed to the prepared
// text, not to `execute name(...)`.
#ifndef GPHTAP_STATS_FINGERPRINT_H_
#define GPHTAP_STATS_FINGERPRINT_H_

#include <string>

namespace gphtap {

/// Normalizes one SQL statement to its fingerprint:
///   * int / float / string literals become `$1`, `$2`, ... in order of
///     appearance; existing `$N` parameters are renumbered into the same
///     sequence, so the literal and prepared forms of a statement collide;
///   * identifiers are lowercased (the lexer already does this), whitespace
///     runs collapse to single token separators, and a trailing `;` is
///     dropped;
///   * a statement of the form `PREPARE name AS <stmt>` fingerprints as
///     `<stmt>`'s fingerprint, so the PREPARE and its EXECUTEs aggregate onto
///     one row.
/// A statement the lexer rejects falls back to lowercased,
/// whitespace-collapsed raw text (still a stable key, just unnormalized).
std::string FingerprintSql(const std::string& sql);

}  // namespace gphtap

#endif  // GPHTAP_STATS_FINGERPRINT_H_
