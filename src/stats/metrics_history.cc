#include "stats/metrics_history.h"

#include <sstream>

namespace gphtap {

void MetricsHistory::Capture(const MetricsSnapshot& snapshot, int64_t at_us) {
  std::lock_guard<std::mutex> lock(mu_);
  Tick t;
  t.tick = next_tick_++;
  t.at_us = at_us;

  auto add = [&](const std::string& name, int64_t value) {
    auto prev_it = prev_.find(name);
    int64_t prev = prev_it == prev_.end() ? 0 : prev_it->second;
    int64_t delta = value - prev;
    prev_[name] = value;
    if (value != 0 || delta != 0) {
      t.metrics.emplace_back(name, std::make_pair(value, delta));
    }
  };
  for (const auto& [name, value] : snapshot.counters) {
    add(name, static_cast<int64_t>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    add("gauge:" + name, value);
  }

  ring_.push_back(std::move(t));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<MetricsHistory::Row> MetricsHistory::Rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Row> out;
  for (const Tick& t : ring_) {
    for (const auto& [name, vd] : t.metrics) {
      Row r;
      r.tick = t.tick;
      r.at_us = t.at_us;
      r.metric = name;
      r.value = vd.first;
      r.delta = vd.second;
      out.push_back(std::move(r));
    }
  }
  return out;
}

uint64_t MetricsHistory::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_tick_;
}

std::string MetricsHistory::ToCsv() const {
  std::ostringstream out;
  out << "tick,at_us,metric,value,delta\n";
  for (const Row& r : Rows()) {
    out << r.tick << ',' << r.at_us << ',' << r.metric << ',' << r.value << ','
        << r.delta << '\n';
  }
  return out.str();
}

}  // namespace gphtap
