// Cumulative per-fingerprint statement statistics (gp_stat_statements,
// modeled on pg_stat_statements): the session records one Sample per executed
// statement at teardown, keyed by the normalized fingerprint; the registry
// accumulates calls / errors / timeouts / retries / rows / latency histogram /
// plan-cache hits / vec batches + fallbacks / gang resource usage (exec CPU,
// motion bytes, buffer hits+misses, per-wait-event time). Bounded at
// `capacity` distinct fingerprints; the tail spills into one "<overflow>"
// bucket so a fingerprint flood cannot grow memory without bound.
#ifndef GPHTAP_STATS_STATEMENT_STATS_H_
#define GPHTAP_STATS_STATEMENT_STATS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/wait_event.h"
#include "stats/statement_resources.h"

namespace gphtap {

class StatementStatsRegistry {
 public:
  explicit StatementStatsRegistry(size_t capacity = 512) : capacity_(capacity) {}

  /// One executed statement, assembled by Session::Execute at teardown.
  struct Sample {
    bool ok = true;
    bool timed_out = false;
    uint64_t retries = 0;
    bool plan_cache_hit = false;
    uint64_t rows = 0;
    int64_t elapsed_us = 0;
    const StatementResources* resources = nullptr;  // optional
    std::vector<QueryWaitProfile::Item> top_waits;
  };

  /// Accumulated state for one fingerprint, copied out by Snapshot().
  struct Entry {
    std::string fingerprint;
    uint64_t calls = 0;
    uint64_t errors = 0;    // statements that returned a non-OK status
    uint64_t timeouts = 0;  // subset of errors: statement deadline expired
    uint64_t retries = 0;   // transparent read-only retries summed over calls
    uint64_t plan_cache_hits = 0;
    uint64_t rows = 0;
    int64_t total_us = 0;
    int64_t min_us = 0;
    int64_t max_us = 0;
    int64_t p95_us = 0;       // from the per-call latency histogram
    int64_t gang_p95_us = 0;  // from per-slice wall times merged across calls
    uint64_t vec_batches = 0;
    uint64_t vec_fallbacks = 0;
    uint64_t exec_cpu_ns = 0;
    uint64_t net_bytes = 0;
    uint64_t buffer_hits = 0;
    uint64_t buffer_misses = 0;
    WaitEvent top_wait = WaitEvent::kNone;  // largest cumulative wait
    int64_t top_wait_us = 0;
  };

  void Record(const std::string& fingerprint, const Sample& sample);

  /// Copies of every entry, sorted by total_us descending.
  std::vector<Entry> Snapshot() const;

  void Reset();

 private:
  struct Slot {
    uint64_t calls = 0;
    uint64_t errors = 0;
    uint64_t timeouts = 0;
    uint64_t retries = 0;
    uint64_t plan_cache_hits = 0;
    uint64_t rows = 0;
    int64_t total_us = 0;
    int64_t min_us = 0;
    int64_t max_us = 0;
    Histogram latency;     // per-call elapsed_us
    Histogram gang_slices; // per-slice wall us, merged in via Histogram::Merge
    uint64_t vec_batches = 0;
    uint64_t vec_fallbacks = 0;
    uint64_t exec_cpu_ns = 0;
    uint64_t net_bytes = 0;
    uint64_t buffer_hits = 0;
    uint64_t buffer_misses = 0;
    std::map<WaitEvent, int64_t> wait_us;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::map<std::string, Slot> slots_;
};

}  // namespace gphtap

#endif  // GPHTAP_STATS_STATEMENT_STATS_H_
