// Local and distributed snapshots (Section 5.1).
#ifndef GPHTAP_TXN_SNAPSHOT_H_
#define GPHTAP_TXN_SNAPSHOT_H_

#include <algorithm>
#include <string>
#include <vector>

#include "txn/xid.h"

namespace gphtap {

/// A PostgreSQL-style local snapshot: xids < xmin are finished, xids >= xmax had
/// not started, and `in_progress` lists running xids in [xmin, xmax).
struct LocalSnapshot {
  LocalXid xmin = 1;
  LocalXid xmax = 1;
  std::vector<LocalXid> in_progress;  // sorted

  bool IsRunning(LocalXid xid) const {
    if (xid >= xmax) return true;  // treat future xids as running (invisible)
    if (xid < xmin) return false;
    return std::binary_search(in_progress.begin(), in_progress.end(), xid);
  }
};

/// A distributed snapshot: the list of in-progress distributed transaction ids
/// plus the largest committed distributed xid at creation time.
struct DistributedSnapshot {
  Gxid gxmin = 1;  // oldest in-progress gxid at creation (floor for the xid map)
  Gxid gxmax = 1;  // one past the largest gxid assigned at creation
  std::vector<Gxid> in_progress;  // sorted
  Gxid max_committed = 0;         // largest committed gxid at creation

  bool IsRunning(Gxid gxid) const {
    if (gxid >= gxmax) return true;
    if (gxid < gxmin) return false;
    return std::binary_search(in_progress.begin(), in_progress.end(), gxid);
  }

  std::string ToString() const {
    std::string s = "dsnap{gxmin=" + std::to_string(gxmin) +
                    ",gxmax=" + std::to_string(gxmax) + ",run=[";
    for (size_t i = 0; i < in_progress.size(); ++i) {
      if (i) s += ",";
      s += std::to_string(in_progress[i]);
    }
    s += "]}";
    return s;
  }
};

}  // namespace gphtap

#endif  // GPHTAP_TXN_SNAPSHOT_H_
