// Transaction identifier types (Section 5 of the paper).
#ifndef GPHTAP_TXN_XID_H_
#define GPHTAP_TXN_XID_H_

#include <cstdint>

namespace gphtap {

/// Segment-local transaction id, assigned by each segment's native mechanism.
using LocalXid = uint32_t;

/// Distributed transaction id, a monotonically increasing integer assigned by
/// the coordinator. Uniquely identifies a transaction at the global level.
using Gxid = uint64_t;

inline constexpr LocalXid kInvalidLocalXid = 0;
inline constexpr Gxid kInvalidGxid = 0;

/// Lifecycle states recorded in the commit log.
enum class TxnState : uint8_t {
  kInProgress = 0,
  kPrepared = 1,   // 2PC: PREPARE durable, awaiting the coordinator's decision
  kCommitted = 2,
  kAborted = 3,
};

const char* TxnStateName(TxnState s);

}  // namespace gphtap

#endif  // GPHTAP_TXN_XID_H_
