// The per-segment map from local xids to distributed xids ("the mapping",
// Section 5.1). Truncated up to the oldest distributed transaction any live
// snapshot can still see; afterwards local clog + local snapshot decide.
#ifndef GPHTAP_TXN_DISTRIBUTED_LOG_H_
#define GPHTAP_TXN_DISTRIBUTED_LOG_H_

#include <mutex>
#include <optional>
#include <unordered_map>

#include "txn/xid.h"

namespace gphtap {

class DistributedLog {
 public:
  void Record(LocalXid local, Gxid gxid) {
    std::lock_guard<std::mutex> g(mu_);
    map_[local] = gxid;
  }

  /// Looks up the distributed xid that created/modified with `local`, or nullopt
  /// if never recorded or already truncated.
  std::optional<Gxid> Lookup(LocalXid local) const {
    std::lock_guard<std::mutex> g(mu_);
    auto it = map_.find(local);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  /// Drops all entries with gxid < `oldest_needed`. Entries for in-progress
  /// transactions are safe because `oldest_needed` never exceeds the oldest
  /// running distributed xid.
  size_t TruncateBelow(Gxid oldest_needed) {
    std::lock_guard<std::mutex> g(mu_);
    size_t removed = 0;
    for (auto it = map_.begin(); it != map_.end();) {
      if (it->second < oldest_needed) {
        it = map_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  size_t size() const {
    std::lock_guard<std::mutex> g(mu_);
    return map_.size();
  }

  /// Crash recovery: discards all state so the WAL replay can rebuild it.
  void Reset() {
    std::lock_guard<std::mutex> g(mu_);
    map_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<LocalXid, Gxid> map_;
};

}  // namespace gphtap

#endif  // GPHTAP_TXN_DISTRIBUTED_LOG_H_
