// Write-ahead log: a replayable in-memory log of typed transaction records per
// node, plus the fsync cost model that makes commit-protocol latencies
// (Figure 10) measurable. The record vector stands in for the durable on-disk
// log: a segment "crash" discards all volatile state (tables, lock table,
// running-transaction bookkeeping) but keeps its Wal, and recovery replays the
// typed records to rebuild the commit log, the local->distributed xid map, and
// the set of prepared-but-unresolved transactions (see Segment::Recover and
// DESIGN.md "Crash recovery and failover"). Fsync() injects latency only; the
// simulated disk never loses an appended record.
#ifndef GPHTAP_TXN_WAL_H_
#define GPHTAP_TXN_WAL_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/wait_event.h"
#include "txn/xid.h"

namespace gphtap {

enum class WalRecordType : uint8_t {
  kBegin = 0,
  kPrepare = 1,        // 2PC phase one
  kCommit = 2,         // local / one-phase commit
  kCommitPrepared = 3, // 2PC phase two
  kAbort = 4,
  kDistributedCommit = 5,  // coordinator's commit record between 2PC phases
};

struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  LocalXid xid = kInvalidLocalXid;
  Gxid gxid = kInvalidGxid;
};

class Wal {
 public:
  explicit Wal(int64_t fsync_cost_us = 0) : fsync_cost_us_(fsync_cost_us) {}

  /// Appends a record and, for commit-critical records, performs a simulated
  /// fsync (latency injection + counter).
  void Append(WalRecordType type, LocalXid xid, Gxid gxid = kInvalidGxid) {
    {
      std::lock_guard<std::mutex> g(mu_);
      log_.push_back(WalRecord{type, xid, gxid});
      if (type == WalRecordType::kDistributedCommit && gxid != kInvalidGxid) {
        distributed_commits_.insert(gxid);
      }
    }
    records_.fetch_add(1, std::memory_order_relaxed);
    switch (type) {
      case WalRecordType::kPrepare:
        if (m_prepare_fsyncs_ != nullptr) m_prepare_fsyncs_->Add(1);
        Fsync();
        break;
      case WalRecordType::kCommit:
      case WalRecordType::kCommitPrepared:
      case WalRecordType::kDistributedCommit:
        if (m_commit_fsyncs_ != nullptr) m_commit_fsyncs_->Add(1);
        Fsync();
        break;
      default:
        break;
    }
  }

  void Fsync() {
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    if (fsync_cost_us_ > 0) {
      WaitEventScope wait(WaitEvent::kWalFsync);
      // The record is already appended (the simulated disk never loses it), so
      // the latency injection can be abandoned early: a cancelled or
      // deadline-expired statement stops *waiting* for the fsync without
      // affecting durability. Sleep in poll-sized chunks and re-check.
      int64_t remaining = fsync_cost_us_;
      while (remaining > 0) {
        if (!CheckAmbientInterrupt().ok()) break;
        int64_t chunk = remaining < kInterruptPollUs ? remaining : kInterruptPollUs;
        PreciseSleepUs(chunk);
        remaining -= chunk;
      }
    }
  }

  /// A copy of the log for recovery replay.
  std::vector<WalRecord> Snapshot() const {
    std::lock_guard<std::mutex> g(mu_);
    return log_;
  }

  /// True if a kDistributedCommit record for `gxid` exists — the coordinator's
  /// authority for resolving in-doubt prepared transactions (Section 5).
  bool HasDistributedCommit(Gxid gxid) const {
    std::lock_guard<std::mutex> g(mu_);
    return distributed_commits_.count(gxid) > 0;
  }

  uint64_t records() const { return records_.load(std::memory_order_relaxed); }
  uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }
  int64_t fsync_cost_us() const { return fsync_cost_us_; }

  /// Registers txn.prepare_fsyncs / txn.commit_fsyncs counters (cluster-wide
  /// totals across all nodes' WALs); null is a no-op.
  void set_metrics(MetricsRegistry* metrics) {
    if (metrics == nullptr) return;
    m_prepare_fsyncs_ = metrics->counter("txn.prepare_fsyncs");
    m_commit_fsyncs_ = metrics->counter("txn.commit_fsyncs");
  }

 private:
  const int64_t fsync_cost_us_;
  mutable std::mutex mu_;
  std::vector<WalRecord> log_;
  std::unordered_set<Gxid> distributed_commits_;
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> fsyncs_{0};
  Counter* m_prepare_fsyncs_ = nullptr;
  Counter* m_commit_fsyncs_ = nullptr;
};

// Transitional alias: the counting stub grew into a real (in-memory) log.
using WalStub = Wal;

}  // namespace gphtap

#endif  // GPHTAP_TXN_WAL_H_
