// Write-ahead-log stub: counts records and fsyncs and injects the configured
// fsync latency, so commit-protocol costs (Figure 10) are measurable without a
// real disk. Durability/recovery is out of scope (see DESIGN.md).
#ifndef GPHTAP_TXN_WAL_H_
#define GPHTAP_TXN_WAL_H_

#include <atomic>
#include <cstdint>

#include "common/clock.h"
#include "txn/xid.h"

namespace gphtap {

enum class WalRecordType : uint8_t {
  kBegin = 0,
  kPrepare = 1,        // 2PC phase one
  kCommit = 2,         // local / one-phase commit
  kCommitPrepared = 3, // 2PC phase two
  kAbort = 4,
  kDistributedCommit = 5,  // coordinator's commit record between 2PC phases
};

class WalStub {
 public:
  explicit WalStub(int64_t fsync_cost_us = 0) : fsync_cost_us_(fsync_cost_us) {}

  /// Appends a record and, for commit-critical records, performs a simulated
  /// fsync (latency injection + counter).
  void Append(WalRecordType type, LocalXid /*xid*/) {
    records_.fetch_add(1, std::memory_order_relaxed);
    switch (type) {
      case WalRecordType::kPrepare:
      case WalRecordType::kCommit:
      case WalRecordType::kCommitPrepared:
      case WalRecordType::kDistributedCommit:
        Fsync();
        break;
      default:
        break;
    }
  }

  void Fsync() {
    fsyncs_.fetch_add(1, std::memory_order_relaxed);
    PreciseSleepUs(fsync_cost_us_);
  }

  uint64_t records() const { return records_.load(std::memory_order_relaxed); }
  uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }
  int64_t fsync_cost_us() const { return fsync_cost_us_; }

 private:
  const int64_t fsync_cost_us_;
  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> fsyncs_{0};
};

}  // namespace gphtap

#endif  // GPHTAP_TXN_WAL_H_
