#include "txn/distributed_txn_manager.h"

#include <algorithm>

namespace gphtap {

Gxid DistributedTxnManager::Begin(const std::shared_ptr<LockOwner>& owner) {
  std::lock_guard<std::mutex> g(mu_);
  Gxid gxid = next_gxid_++;
  running_[gxid] = TxnInfo{owner, 0};
  return gxid;
}

std::shared_ptr<LockOwner> DistributedTxnManager::BeginTxn(Gxid* gxid_out,
                                                           int64_t start_time_us) {
  std::lock_guard<std::mutex> g(mu_);
  Gxid gxid = next_gxid_++;
  auto owner = std::make_shared<LockOwner>(gxid, start_time_us);
  running_[gxid] = TxnInfo{owner, 0};
  *gxid_out = gxid;
  return owner;
}

void DistributedTxnManager::PinSnapshot(Gxid gxid, Gxid snapshot_gxmin) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = running_.find(gxid);
  if (it != running_.end() && it->second.snapshot_gxmin == 0) {
    it->second.snapshot_gxmin = snapshot_gxmin;
  }
}

DistributedSnapshot DistributedTxnManager::TakeSnapshot() const {
  std::lock_guard<std::mutex> g(mu_);
  DistributedSnapshot snap;
  snap.gxmax = next_gxid_;
  snap.gxmin = running_.empty() ? next_gxid_ : running_.begin()->first;
  snap.max_committed = max_committed_;
  snap.in_progress.reserve(running_.size());
  for (const auto& [gxid, info] : running_) snap.in_progress.push_back(gxid);
  return snap;
}

void DistributedTxnManager::MarkCommitted(Gxid gxid) {
  std::lock_guard<std::mutex> g(mu_);
  running_.erase(gxid);
  max_committed_ = std::max(max_committed_, gxid);
}

void DistributedTxnManager::MarkAborted(Gxid gxid) {
  std::lock_guard<std::mutex> g(mu_);
  running_.erase(gxid);
}

bool DistributedTxnManager::IsRunning(Gxid gxid) const {
  std::lock_guard<std::mutex> g(mu_);
  return running_.count(gxid) > 0;
}

std::shared_ptr<LockOwner> DistributedTxnManager::OwnerOf(Gxid gxid) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = running_.find(gxid);
  if (it == running_.end()) return nullptr;
  return it->second.owner;
}

Gxid DistributedTxnManager::OldestVisibleGxid() const {
  std::lock_guard<std::mutex> g(mu_);
  Gxid oldest = next_gxid_;
  for (const auto& [gxid, info] : running_) {
    oldest = std::min(oldest, gxid);
    if (info.snapshot_gxmin != 0) oldest = std::min(oldest, info.snapshot_gxmin);
  }
  return oldest;
}

Gxid DistributedTxnManager::max_committed() const {
  std::lock_guard<std::mutex> g(mu_);
  return max_committed_;
}

size_t DistributedTxnManager::NumRunning() const {
  std::lock_guard<std::mutex> g(mu_);
  return running_.size();
}

}  // namespace gphtap
