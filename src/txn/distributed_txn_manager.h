// Coordinator-side distributed transaction registry: gxid assignment,
// distributed snapshots, and the truncation horizon for the xid mapping.
#ifndef GPHTAP_TXN_DISTRIBUTED_TXN_MANAGER_H_
#define GPHTAP_TXN_DISTRIBUTED_TXN_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>

#include "lock/lock_owner.h"
#include "txn/snapshot.h"
#include "txn/xid.h"

namespace gphtap {

class DistributedTxnManager {
 public:
  /// Starts a distributed transaction; returns its gxid and registers the
  /// LockOwner so the GDD can find and cancel it.
  Gxid Begin(const std::shared_ptr<LockOwner>& owner);

  /// Starts a transaction and mints a LockOwner carrying the new gxid and
  /// `start_time_us` (used by the youngest-victim policy).
  std::shared_ptr<LockOwner> BeginTxn(Gxid* gxid_out, int64_t start_time_us = 0);

  /// Records the gxmin of the snapshot a transaction took, pinning the
  /// truncation horizon of the local->distributed maps.
  void PinSnapshot(Gxid gxid, Gxid snapshot_gxmin);

  DistributedSnapshot TakeSnapshot() const;

  /// Removes the transaction from the in-progress set. For commits this must be
  /// called only after every participant acknowledged (the paper: a one-phase
  /// commit transaction appears in-progress to concurrent snapshots until the
  /// "Commit Ok" arrives) — that ordering is what makes segment-local clog
  /// states authoritative once a snapshot says "finished".
  void MarkCommitted(Gxid gxid);
  void MarkAborted(Gxid gxid);

  bool IsRunning(Gxid gxid) const;
  std::shared_ptr<LockOwner> OwnerOf(Gxid gxid) const;

  /// Oldest gxid any live snapshot may still see as running; local->distributed
  /// maps can be truncated below this.
  Gxid OldestVisibleGxid() const;

  Gxid max_committed() const;
  size_t NumRunning() const;

 private:
  struct TxnInfo {
    std::shared_ptr<LockOwner> owner;
    Gxid snapshot_gxmin = 0;  // 0 = no snapshot pinned yet
  };

  mutable std::mutex mu_;
  Gxid next_gxid_ = 1;
  Gxid max_committed_ = 0;
  std::map<Gxid, TxnInfo> running_;  // sorted for cheap gxmin
};

}  // namespace gphtap

#endif  // GPHTAP_TXN_DISTRIBUTED_TXN_MANAGER_H_
