// MVCC tuple visibility combining distributed and local snapshot information
// (Section 5.1 of the paper).
#ifndef GPHTAP_TXN_VISIBILITY_H_
#define GPHTAP_TXN_VISIBILITY_H_

#include "txn/clog.h"
#include "txn/distributed_log.h"
#include "txn/snapshot.h"
#include "txn/xid.h"

namespace gphtap {

/// Everything a scan needs to decide tuple visibility on one segment.
struct VisibilityContext {
  const CommitLog* clog = nullptr;
  const DistributedLog* dlog = nullptr;
  const DistributedSnapshot* dsnap = nullptr;  // may be null in utility mode
  const LocalSnapshot* lsnap = nullptr;        // fallback after map truncation
  LocalXid my_xid = kInvalidLocalXid;          // the scanning txn's xid here (0=readonly)
};

/// True if the transaction `xid` is committed *as of the context's snapshot*.
/// Resolution order (paper, Section 5.1):
///   1. own writes are visible;
///   2. if the local->distributed mapping still has the xid, the distributed
///      snapshot decides "finished before me?" and the local clog decides the
///      outcome (commit vs abort);
///   3. if the mapping was truncated, every snapshot sees the transaction as
///      finished, so the local clog + local snapshot decide.
bool XidCommittedForSnapshot(LocalXid xid, const VisibilityContext& ctx);

/// Full tuple check: created by a visible-committed xmin and not deleted by a
/// visible-committed (or own) xmax.
bool TupleVisible(LocalXid xmin, LocalXid xmax, const VisibilityContext& ctx);

}  // namespace gphtap

#endif  // GPHTAP_TXN_VISIBILITY_H_
