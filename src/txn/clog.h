// Per-segment commit log (PostgreSQL "clog"): the durable record of each local
// transaction's final state.
#ifndef GPHTAP_TXN_CLOG_H_
#define GPHTAP_TXN_CLOG_H_

#include <mutex>
#include <vector>

#include "txn/xid.h"

namespace gphtap {

/// Thread-safe map LocalXid -> TxnState. Xid 0 is invalid and never used.
class CommitLog {
 public:
  CommitLog() : states_(1, TxnState::kAborted) {}

  /// Registers a new in-progress transaction; `xid` values must arrive in
  /// ascending order (they are assigned by a single counter).
  void Register(LocalXid xid) {
    std::lock_guard<std::mutex> g(mu_);
    if (states_.size() <= xid) states_.resize(xid + 1, TxnState::kInProgress);
    states_[xid] = TxnState::kInProgress;
  }

  void SetState(LocalXid xid, TxnState s) {
    std::lock_guard<std::mutex> g(mu_);
    if (states_.size() <= xid) states_.resize(xid + 1, TxnState::kInProgress);
    states_[xid] = s;
  }

  TxnState GetState(LocalXid xid) const {
    std::lock_guard<std::mutex> g(mu_);
    if (xid == kInvalidLocalXid || xid >= states_.size()) return TxnState::kAborted;
    return states_[xid];
  }

  bool IsCommitted(LocalXid xid) const { return GetState(xid) == TxnState::kCommitted; }

  /// Crash recovery: discards all state so the WAL replay can rebuild it.
  void Reset() {
    std::lock_guard<std::mutex> g(mu_);
    states_.assign(1, TxnState::kAborted);
  }

 private:
  mutable std::mutex mu_;
  std::vector<TxnState> states_;
};

}  // namespace gphtap

#endif  // GPHTAP_TXN_CLOG_H_
