#include "txn/local_txn_manager.h"

namespace gphtap {

StatusOr<LocalXid> LocalTxnManager::AssignXid(Gxid gxid) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = active_.find(gxid);
  if (it != active_.end()) return it->second;
  // A distributed transaction that crash recovery already finished here must
  // not restart. Its previous incarnation's writes were aborted when the
  // segment went down (they were only in-progress in the WAL), and the
  // coordinator does not know: if a later statement of the same transaction
  // were handed a fresh local xid, PREPARE/COMMIT would see a perfectly
  // healthy participant and commit the transaction with its earlier
  // statements' effects missing — a torn, half-applied transaction. The
  // statement must fail instead (the PostgreSQL analog: the gang's segment
  // backend died, so the whole transaction aborts).
  if (recovered_finished_.count(gxid) > 0) {
    return Status::Aborted("distributed txn " + std::to_string(gxid) +
                           " lost its local transaction in a segment crash");
  }
  LocalXid xid = next_xid_++;
  active_[gxid] = xid;
  running_local_[xid] = gxid;
  clog_->Register(xid);
  dlog_->Record(xid, gxid);
  wal_->Append(WalRecordType::kBegin, xid, gxid);
  if (change_log_ != nullptr) {
    change_log_->Append(ChangeRecord{ChangeKind::kTxnBegin, 0, kInvalidTupleId,
                                     kInvalidTupleId, xid, {}, gxid});
  }
  return xid;
}

std::optional<LocalXid> LocalTxnManager::LookupXid(Gxid gxid) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = active_.find(gxid);
  if (it == active_.end()) return std::nullopt;
  return it->second;
}

std::optional<Gxid> LocalTxnManager::GxidOfRunning(LocalXid xid) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = running_local_.find(xid);
  if (it == running_local_.end()) return std::nullopt;
  return it->second;
}

LocalSnapshot LocalTxnManager::TakeLocalSnapshot() const {
  std::lock_guard<std::mutex> g(mu_);
  LocalSnapshot snap;
  snap.xmax = next_xid_;
  snap.xmin = running_local_.empty() ? next_xid_ : running_local_.begin()->first;
  snap.in_progress.reserve(running_local_.size());
  for (const auto& [xid, gxid] : running_local_) snap.in_progress.push_back(xid);
  return snap;
}

Status LocalTxnManager::Prepare(Gxid gxid) {
  std::unique_lock<std::mutex> g(mu_);
  auto it = active_.find(gxid);
  if (it == active_.end()) {
    // Volatile state for this transaction is gone — it was lost in a crash
    // (recovery aborted it) or never wrote here. Either way it cannot prepare.
    return Status::Aborted("PREPARE for unknown distributed txn " + std::to_string(gxid) +
                           " (state lost in segment crash?)");
  }
  LocalXid xid = it->second;
  g.unlock();
  // WAL fsync happens outside the manager mutex: prepare latency must not block
  // unrelated snapshots.
  wal_->Append(WalRecordType::kPrepare, xid, gxid);
  clog_->SetState(xid, TxnState::kPrepared);
  if (change_log_ != nullptr) {
    change_log_->Append(ChangeRecord{ChangeKind::kTxnPrepare, 0, kInvalidTupleId,
                                     kInvalidTupleId, xid, {}, gxid});
  }
  return Status::OK();
}

Status LocalTxnManager::Finish(Gxid gxid, TxnState final_state, WalRecordType record) {
  std::unique_lock<std::mutex> g(mu_);
  auto it = active_.find(gxid);
  if (it == active_.end()) {
    // Crash recovery may already have resolved this transaction from the WAL
    // (and the coordinator's commit record). A retried commit for a
    // recovery-committed transaction is an idempotent OK; a commit for a
    // recovery-aborted transaction must report the loss, never pretend success.
    auto rit = recovered_finished_.find(gxid);
    if (rit != recovered_finished_.end()) {
      if (rit->second == final_state) return Status::OK();
      if (final_state == TxnState::kCommitted) {
        return Status::Aborted("distributed txn " + std::to_string(gxid) +
                               " was aborted during crash recovery");
      }
      return Status::OK();  // abort of a recovery-committed txn: caller's cleanup no-op
    }
    // A transaction that never wrote here has nothing to finish.
    return Status::OK();
  }
  LocalXid xid = it->second;
  g.unlock();
  wal_->Append(record, xid, gxid);
  g.lock();
  // State flip and removal from the running set are atomic with respect to
  // TakeLocalSnapshot (both under mu_), so a snapshot never sees a committed
  // xid as still running.
  clog_->SetState(xid, final_state);
  active_.erase(gxid);
  running_local_.erase(xid);
  if (change_log_ != nullptr) {
    change_log_->Append(ChangeRecord{final_state == TxnState::kCommitted
                                         ? ChangeKind::kTxnCommit
                                         : ChangeKind::kTxnAbort,
                                     0, kInvalidTupleId, kInvalidTupleId, xid, {}, gxid});
  }
  return Status::OK();
}

Status LocalTxnManager::CommitPrepared(Gxid gxid) {
  return Finish(gxid, TxnState::kCommitted, WalRecordType::kCommitPrepared);
}

Status LocalTxnManager::Commit(Gxid gxid) {
  return Finish(gxid, TxnState::kCommitted, WalRecordType::kCommit);
}

Status LocalTxnManager::Abort(Gxid gxid) {
  return Finish(gxid, TxnState::kAborted, WalRecordType::kAbort);
}

bool LocalTxnManager::HasWritten(Gxid gxid) const {
  std::lock_guard<std::mutex> g(mu_);
  return active_.count(gxid) > 0;
}

size_t LocalTxnManager::NumRunning() const {
  std::lock_guard<std::mutex> g(mu_);
  return running_local_.size();
}

void LocalTxnManager::ResetForRecovery(
    LocalXid next_xid,
    const std::vector<std::pair<Gxid, LocalXid>>& reinstated_prepared,
    std::unordered_map<Gxid, TxnState> finished) {
  std::lock_guard<std::mutex> g(mu_);
  active_.clear();
  running_local_.clear();
  next_xid_ = next_xid;
  for (const auto& [gxid, xid] : reinstated_prepared) {
    active_[gxid] = xid;
    running_local_[xid] = gxid;
  }
  // Merge (keep earlier recoveries' verdicts; a double crash must not forget).
  for (auto& [gxid, state] : finished) recovered_finished_.emplace(gxid, state);
}

const char* TxnStateName(TxnState s) {
  switch (s) {
    case TxnState::kInProgress:
      return "in-progress";
    case TxnState::kPrepared:
      return "prepared";
    case TxnState::kCommitted:
      return "committed";
    case TxnState::kAborted:
      return "aborted";
  }
  return "?";
}

}  // namespace gphtap
