// Per-segment transaction bookkeeping: local xid assignment, in-progress set,
// local snapshots, and the local side of commit protocols.
#ifndef GPHTAP_TXN_LOCAL_TXN_MANAGER_H_
#define GPHTAP_TXN_LOCAL_TXN_MANAGER_H_

#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/change_log.h"
#include "txn/clog.h"
#include "txn/distributed_log.h"
#include "txn/snapshot.h"
#include "txn/wal.h"
#include "txn/xid.h"

namespace gphtap {

/// One per segment (and one on the coordinator for its own writes).
/// Thread-safe.
class LocalTxnManager {
 public:
  LocalTxnManager(CommitLog* clog, DistributedLog* dlog, WalStub* wal)
      : clog_(clog), dlog_(dlog), wal_(wal) {}

  /// Returns the local xid of `gxid` on this node, assigning one on first use
  /// (i.e., when the distributed transaction first writes here). Records the
  /// local->distributed mapping. Fails with kAborted when `gxid` already had a
  /// local transaction here that crash recovery finished: its earlier writes
  /// died with the crash, and silently opening a fresh local xid would let the
  /// distributed transaction commit a torn subset of its statements.
  StatusOr<LocalXid> AssignXid(Gxid gxid);

  /// The local xid already assigned to `gxid`, if any.
  std::optional<LocalXid> LookupXid(Gxid gxid) const;

  /// The distributed xid of a *running* local transaction (used to translate
  /// tuple xmax values into lock-wait targets). nullopt once it finished.
  std::optional<Gxid> GxidOfRunning(LocalXid xid) const;

  /// PostgreSQL-style local snapshot of this node.
  LocalSnapshot TakeLocalSnapshot() const;

  /// 2PC phase one: durably records PREPARE. The transaction stays in-progress.
  Status Prepare(Gxid gxid);
  /// 2PC phase two.
  Status CommitPrepared(Gxid gxid);
  /// One-phase or local commit.
  Status Commit(Gxid gxid);
  /// Rolls back; also valid after Prepare (2PC abort path).
  Status Abort(Gxid gxid);

  /// True if the transaction obtained a local xid here (i.e., wrote here).
  bool HasWritten(Gxid gxid) const;

  /// Number of local transactions currently in progress.
  size_t NumRunning() const;

  /// Attaches the segment's replication stream (txn begin/commit/abort records).
  void set_change_log(ChangeLog* log) { change_log_ = log; }

  /// Crash recovery: discards all volatile bookkeeping and restarts xid
  /// assignment at `next_xid`. `reinstated_prepared` re-enters prepared
  /// transactions (gxid, xid) into the running set so the coordinator's retried
  /// COMMIT PREPARED / ABORT flows through the normal path. `finished` records
  /// the final state recovery assigned to each resolved distributed
  /// transaction, so a coordinator retrying a commit for a transaction whose
  /// volatile state died gets an idempotent OK (already durable here) or a
  /// definitive abort (lost in the crash) instead of a silent no-op.
  void ResetForRecovery(LocalXid next_xid,
                        const std::vector<std::pair<Gxid, LocalXid>>& reinstated_prepared,
                        std::unordered_map<Gxid, TxnState> finished);

 private:
  Status Finish(Gxid gxid, TxnState final_state, WalRecordType record);

  CommitLog* const clog_;
  DistributedLog* const dlog_;
  WalStub* const wal_;
  ChangeLog* change_log_ = nullptr;

  mutable std::mutex mu_;
  LocalXid next_xid_ = 1;
  std::unordered_map<Gxid, LocalXid> active_;   // running distributed -> local
  std::map<LocalXid, Gxid> running_local_;      // running local xids (sorted)
  // Final states assigned during crash recovery (see ResetForRecovery).
  std::unordered_map<Gxid, TxnState> recovered_finished_;
};

}  // namespace gphtap

#endif  // GPHTAP_TXN_LOCAL_TXN_MANAGER_H_
