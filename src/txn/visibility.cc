#include "txn/visibility.h"

namespace gphtap {

bool XidCommittedForSnapshot(LocalXid xid, const VisibilityContext& ctx) {
  if (xid == kInvalidLocalXid) return false;
  if (xid == ctx.my_xid) return true;  // own writes

  TxnState state = ctx.clog->GetState(xid);
  if (state == TxnState::kAborted) return false;

  auto gxid = ctx.dlog ? ctx.dlog->Lookup(xid) : std::nullopt;
  if (gxid.has_value() && ctx.dsnap != nullptr) {
    // The mapping survives: the distributed snapshot is authoritative about
    // whether the transaction finished before this snapshot was created.
    if (ctx.dsnap->IsRunning(*gxid)) return false;
    // Finished before the snapshot; the coordinator only declares a commit
    // finished after every participant wrote its local commit record, so the
    // local clog has the outcome.
    return state == TxnState::kCommitted;
  }

  // Mapping truncated (or no distributed snapshot): local information decides.
  if (ctx.lsnap != nullptr && ctx.lsnap->IsRunning(xid)) return false;
  return state == TxnState::kCommitted;
}

bool TupleVisible(LocalXid xmin, LocalXid xmax, const VisibilityContext& ctx) {
  if (!XidCommittedForSnapshot(xmin, ctx)) return false;
  if (xmax == kInvalidLocalXid) return true;
  if (xmax == ctx.my_xid) return false;  // deleted by self
  return !XidCommittedForSnapshot(xmax, ctx);
}

}  // namespace gphtap
