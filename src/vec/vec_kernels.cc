#include "vec/vec_kernels.h"

#include <cmath>

namespace gphtap {

namespace {

using Tag = ColumnVector::Tag;

// Comparison fast path for two non-null int64 values.
inline int64_t CompareIntOp(BinOp op, int64_t a, int64_t b) {
  switch (op) {
    case BinOp::kEq:
      return a == b;
    case BinOp::kNe:
      return a != b;
    case BinOp::kLt:
      return a < b;
    case BinOp::kLe:
      return a <= b;
    case BinOp::kGt:
      return a > b;
    case BinOp::kGe:
      return a >= b;
    default:
      return 0;  // unreachable, guarded by caller
  }
}

// Comparison over a three-way result, mirroring EvalCompare's use of
// Datum::Compare (so NaN handling matches the row engine exactly).
inline int64_t CompareCmp(BinOp op, int c) {
  switch (op) {
    case BinOp::kEq:
      return c == 0;
    case BinOp::kNe:
      return c != 0;
    case BinOp::kLt:
      return c < 0;
    case BinOp::kLe:
      return c <= 0;
    case BinOp::kGt:
      return c > 0;
    case BinOp::kGe:
      return c >= 0;
    default:
      return 0;
  }
}

inline bool IsCompare(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

// Numeric slot read for an int64- or double-tagged column.
inline double NumAt(const ColumnVector& v, size_t r) {
  return v.tag == Tag::kInt64 ? static_cast<double>(v.ints[r]) : v.dbls[r];
}

/// Evaluates an operand, returning a pointer either straight into the batch
/// (bare column reference: zero copies) or at `scratch` holding the result.
Status EvalOperand(const Expr& e, const ColumnBatch& batch,
                   const std::vector<int32_t>& pos, ColumnVector* scratch,
                   const ColumnVector** out) {
  if (e.kind == ExprKind::kColumn) {
    if (e.column < 0 || static_cast<size_t>(e.column) >= batch.NumColumns()) {
      return Status::Internal("column index out of range: " +
                              std::to_string(e.column));
    }
    *out = &batch.columns[static_cast<size_t>(e.column)];
    return Status::OK();
  }
  GPHTAP_RETURN_IF_ERROR(VecEval(e, batch, pos, scratch));
  *out = scratch;
  return Status::OK();
}

Status VecEvalLogical(const Expr& e, const ColumnBatch& batch,
                      const std::vector<int32_t>& pos, ColumnVector* out) {
  const bool is_and = e.op == BinOp::kAnd;
  ColumnVector lscratch;
  const ColumnVector* lv = nullptr;
  GPHTAP_RETURN_IF_ERROR(EvalOperand(*e.left, batch, pos, &lscratch, &lv));

  out->ResetTyped(Tag::kInt64, batch.rows);

  // Positions the left operand did not decide; the right operand is evaluated
  // ONLY there (short circuit: errors in the skipped positions never surface,
  // exactly like the row engine).
  std::vector<int32_t> undecided;
  undecided.reserve(pos.size());
  for (int32_t r : pos) {
    const size_t i = static_cast<size_t>(r);
    int lt = VecTruthAt(*lv, i);
    if (is_and && lt == 0) {
      out->ints[i] = 0;
    } else if (!is_and && lt == 1) {
      out->ints[i] = 1;
    } else {
      undecided.push_back(r);
    }
  }
  if (undecided.empty()) return Status::OK();

  ColumnVector rscratch;
  const ColumnVector* rv = nullptr;
  GPHTAP_RETURN_IF_ERROR(EvalOperand(*e.right, batch, undecided, &rscratch, &rv));
  for (int32_t r : undecided) {
    const size_t i = static_cast<size_t>(r);
    int lt = VecTruthAt(*lv, i);
    int rt = VecTruthAt(*rv, i);
    if (is_and) {
      if (lt == 1 && rt == 1) {
        out->ints[i] = 1;
      } else if (rt == 0) {
        out->ints[i] = 0;
      } else {
        out->SetNull(i);
      }
    } else {
      if (lt == 0 && rt == 0) {
        out->ints[i] = 0;
      } else if (rt == 1) {
        out->ints[i] = 1;
      } else {
        out->SetNull(i);
      }
    }
  }
  return Status::OK();
}

// Int64 x int64 kernel: branchless compare/add/sub/mul loops split by null
// presence; div/mod keep their per-row zero check (they can error).
Status EvalBinaryIntInt(BinOp op, const ColumnVector& l, const ColumnVector& r,
                        const std::vector<int32_t>& pos, size_t rows,
                        ColumnVector* out) {
  out->ResetTyped(Tag::kInt64, rows);
  const bool nullable = !l.nulls.empty() || !r.nulls.empty();
  const int64_t* a = l.ints.data();
  const int64_t* b = r.ints.data();
  int64_t* o = out->ints.data();
  if (op == BinOp::kDiv || op == BinOp::kMod) {
    for (int32_t p : pos) {
      const size_t i = static_cast<size_t>(p);
      if (nullable && (l.IsNull(i) || r.IsNull(i))) {
        out->SetNull(i);
        continue;
      }
      if (b[i] == 0) return Status::InvalidArgument("division by zero");
      o[i] = op == BinOp::kDiv ? a[i] / b[i] : a[i] % b[i];
    }
    return Status::OK();
  }
  if (!nullable) {
    switch (op) {
      case BinOp::kAdd:
        for (int32_t p : pos) o[p] = a[p] + b[p];
        return Status::OK();
      case BinOp::kSub:
        for (int32_t p : pos) o[p] = a[p] - b[p];
        return Status::OK();
      case BinOp::kMul:
        for (int32_t p : pos) o[p] = a[p] * b[p];
        return Status::OK();
      case BinOp::kEq:
        for (int32_t p : pos) o[p] = a[p] == b[p];
        return Status::OK();
      case BinOp::kNe:
        for (int32_t p : pos) o[p] = a[p] != b[p];
        return Status::OK();
      case BinOp::kLt:
        for (int32_t p : pos) o[p] = a[p] < b[p];
        return Status::OK();
      case BinOp::kLe:
        for (int32_t p : pos) o[p] = a[p] <= b[p];
        return Status::OK();
      case BinOp::kGt:
        for (int32_t p : pos) o[p] = a[p] > b[p];
        return Status::OK();
      case BinOp::kGe:
        for (int32_t p : pos) o[p] = a[p] >= b[p];
        return Status::OK();
      default:
        return Status::Internal("bad int binary op");
    }
  }
  for (int32_t p : pos) {
    const size_t i = static_cast<size_t>(p);
    if (l.IsNull(i) || r.IsNull(i)) {
      out->SetNull(i);
      continue;
    }
    o[i] = IsCompare(op) ? CompareIntOp(op, a[i], b[i])
           : op == BinOp::kAdd ? a[i] + b[i]
           : op == BinOp::kSub ? a[i] - b[i]
                               : a[i] * b[i];
  }
  return Status::OK();
}

// Numeric kernel with at least one double side: comparisons produce int64
// truth values, arithmetic promotes to double (EvalArith's mixed-type rule).
Status EvalBinaryNumeric(BinOp op, const ColumnVector& l, const ColumnVector& r,
                         const std::vector<int32_t>& pos, size_t rows,
                         ColumnVector* out) {
  const bool nullable = !l.nulls.empty() || !r.nulls.empty();
  if (IsCompare(op)) {
    out->ResetTyped(Tag::kInt64, rows);
    for (int32_t p : pos) {
      const size_t i = static_cast<size_t>(p);
      if (nullable && (l.IsNull(i) || r.IsNull(i))) {
        out->SetNull(i);
        continue;
      }
      double a = NumAt(l, i), b = NumAt(r, i);
      int c = a < b ? -1 : (a > b ? 1 : 0);
      out->ints[i] = CompareCmp(op, c);
    }
    return Status::OK();
  }
  out->ResetTyped(Tag::kDouble, rows);
  for (int32_t p : pos) {
    const size_t i = static_cast<size_t>(p);
    if (nullable && (l.IsNull(i) || r.IsNull(i))) {
      out->SetNull(i);
      continue;
    }
    double a = NumAt(l, i), b = NumAt(r, i);
    switch (op) {
      case BinOp::kAdd:
        out->dbls[i] = a + b;
        break;
      case BinOp::kSub:
        out->dbls[i] = a - b;
        break;
      case BinOp::kMul:
        out->dbls[i] = a * b;
        break;
      case BinOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        out->dbls[i] = a / b;
        break;
      case BinOp::kMod:
        if (b == 0) return Status::InvalidArgument("division by zero");
        out->dbls[i] = std::fmod(a, b);
        break;
      default:
        return Status::Internal("bad numeric binary op");
    }
  }
  return Status::OK();
}

// Boxed fallback for string/mixed columns: per-row EvalBinaryOp with the
// int-int datum fast path, exactly the pre-typed-vector behaviour.
Status EvalBinaryBoxed(BinOp op, const ColumnVector& lv, const ColumnVector& rv,
                       const std::vector<int32_t>& pos, size_t rows,
                       ColumnVector* out) {
  out->ResetTyped(Tag::kDatum, rows);
  const bool cmp = IsCompare(op);
  const bool fast_arith = op == BinOp::kAdd || op == BinOp::kSub || op == BinOp::kMul;
  for (int32_t p : pos) {
    const size_t i = static_cast<size_t>(p);
    Datum l = lv.GetDatum(i);
    Datum v = rv.GetDatum(i);
    Datum& o = out->datums[i];
    if (l.is_int() && v.is_int()) {
      int64_t a = l.int_val(), b = v.int_val();
      if (cmp) {
        o = Datum(CompareIntOp(op, a, b));
        continue;
      }
      if (fast_arith) {
        o = Datum(op == BinOp::kAdd   ? a + b
                  : op == BinOp::kSub ? a - b
                                      : a * b);
        continue;
      }
    }
    GPHTAP_ASSIGN_OR_RETURN(o, EvalBinaryOp(op, l, v));
  }
  return Status::OK();
}

}  // namespace

int VecTruthAt(const ColumnVector& v, size_t r) {
  if (v.IsNull(r)) return -1;
  switch (v.tag) {
    case Tag::kInt64:
      return v.ints[r] != 0 ? 1 : 0;
    case Tag::kDouble:
      return v.dbls[r] != 0 ? 1 : 0;
    case Tag::kDatum:
      return DatumTruth(v.datums[r]);
  }
  return -1;
}

Status VecEval(const Expr& e, const ColumnBatch& batch,
               const std::vector<int32_t>& pos, ColumnVector* out) {
  switch (e.kind) {
    case ExprKind::kConst: {
      const Datum& v = e.value;
      if (v.is_int()) {
        out->ResetTyped(Tag::kInt64, batch.rows);
        std::fill(out->ints.begin(), out->ints.end(), v.int_val());
      } else if (v.is_double()) {
        out->ResetTyped(Tag::kDouble, batch.rows);
        std::fill(out->dbls.begin(), out->dbls.end(), v.double_val());
      } else if (v.is_null()) {
        out->ResetTyped(Tag::kInt64, batch.rows);
        out->nulls.assign(batch.rows, 1);
      } else {
        out->ResetTyped(Tag::kDatum, batch.rows);
        for (int32_t r : pos) out->datums[static_cast<size_t>(r)] = v;
      }
      return Status::OK();
    }
    case ExprKind::kColumn: {
      if (e.column < 0 || static_cast<size_t>(e.column) >= batch.NumColumns()) {
        return Status::Internal("column index out of range: " +
                                std::to_string(e.column));
      }
      *out = batch.columns[static_cast<size_t>(e.column)];
      return Status::OK();
    }
    case ExprKind::kNot: {
      ColumnVector scratch;
      const ColumnVector* v = nullptr;
      GPHTAP_RETURN_IF_ERROR(EvalOperand(*e.left, batch, pos, &scratch, &v));
      out->ResetTyped(Tag::kInt64, batch.rows);
      for (int32_t r : pos) {
        const size_t i = static_cast<size_t>(r);
        int t = VecTruthAt(*v, i);
        if (t < 0) {
          out->SetNull(i);
        } else {
          out->ints[i] = t == 1 ? 0 : 1;
        }
      }
      return Status::OK();
    }
    case ExprKind::kIsNull: {
      ColumnVector scratch;
      const ColumnVector* v = nullptr;
      GPHTAP_RETURN_IF_ERROR(EvalOperand(*e.left, batch, pos, &scratch, &v));
      out->ResetTyped(Tag::kInt64, batch.rows);
      for (int32_t r : pos) {
        const size_t i = static_cast<size_t>(r);
        out->ints[i] = v->IsNull(i) ? 1 : 0;
      }
      return Status::OK();
    }
    case ExprKind::kBinary: {
      if (e.op == BinOp::kAnd || e.op == BinOp::kOr) {
        return VecEvalLogical(e, batch, pos, out);
      }
      ColumnVector lscratch, rscratch;
      const ColumnVector* lv = nullptr;
      const ColumnVector* rv = nullptr;
      GPHTAP_RETURN_IF_ERROR(EvalOperand(*e.left, batch, pos, &lscratch, &lv));
      GPHTAP_RETURN_IF_ERROR(EvalOperand(*e.right, batch, pos, &rscratch, &rv));
      if (lv->tag == Tag::kInt64 && rv->tag == Tag::kInt64) {
        return EvalBinaryIntInt(e.op, *lv, *rv, pos, batch.rows, out);
      }
      if (lv->tag != Tag::kDatum && rv->tag != Tag::kDatum) {
        return EvalBinaryNumeric(e.op, *lv, *rv, pos, batch.rows, out);
      }
      return EvalBinaryBoxed(e.op, *lv, *rv, pos, batch.rows, out);
    }
    case ExprKind::kParam:
      // Parameters are substituted before execution (ClonePlanWithParams);
      // one surviving to a kernel is a bind failure, same as the row engine.
      return Status::Internal("unbound parameter $" + std::to_string(e.param + 1));
  }
  return Status::Internal("bad expr kind");
}

Status VecFilterBatch(const Expr& filter, ColumnBatch* batch) {
  if (batch->sel.empty()) return Status::OK();
  ColumnVector vals;
  GPHTAP_RETURN_IF_ERROR(VecEval(filter, *batch, batch->sel, &vals));
  size_t w = 0;
  if (vals.tag == Tag::kInt64 && vals.nulls.empty()) {
    // Branchless compaction over the unboxed truth vector.
    const int64_t* t = vals.ints.data();
    for (int32_t r : batch->sel) {
      batch->sel[w] = r;
      w += t[r] != 0;
    }
  } else {
    for (int32_t r : batch->sel) {
      batch->sel[w] = r;
      w += VecTruthAt(vals, static_cast<size_t>(r)) == 1;
    }
  }
  batch->sel.resize(w);
  return Status::OK();
}

Status VecProjectBatch(const std::vector<ExprPtr>& exprs, const ColumnBatch& in,
                       ColumnBatch* out) {
  out->Clear();
  out->columns.resize(exprs.size());
  ColumnVector vals;
  const bool dense = in.sel.size() == in.rows;
  for (size_t i = 0; i < exprs.size(); ++i) {
    GPHTAP_RETURN_IF_ERROR(VecEval(*exprs[i], in, in.sel, &vals));
    ColumnVector& col = out->columns[i];
    if (dense) {
      col = std::move(vals);
    } else {
      col.Clear();
      col.tag = vals.tag;
      col.Reserve(in.sel.size());
      for (int32_t r : in.sel) col.AppendFrom(vals, static_cast<size_t>(r));
    }
  }
  out->rows = in.sel.size();
  out->SelectAll();
  return Status::OK();
}

uint64_t VecHashRowKey(const ColumnBatch& in, const std::vector<int>& hash_cols,
                       int32_t r) {
  // Mirrors HashRowKey(in.MaterializeRow(r), hash_cols) term for term.
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int c : hash_cols) {
    h = h * 1099511628211ULL ^ in.columns[static_cast<size_t>(c)].HashAt(static_cast<size_t>(r));
  }
  return h;
}

Status VecPartitionBatch(const ColumnBatch& in, const std::vector<int>& hash_cols,
                         int num_targets, std::vector<ColumnBatch>* out) {
  if (num_targets <= 0) return Status::InvalidArgument("num_targets");
  for (int c : hash_cols) {
    if (c < 0 || static_cast<size_t>(c) >= in.NumColumns()) {
      return Status::Internal("hash column out of range");
    }
  }
  out->clear();
  out->resize(static_cast<size_t>(num_targets));
  for (ColumnBatch& b : *out) {
    b.Reset(in.NumColumns(),
            in.sel.size() / static_cast<size_t>(num_targets) + 1);
  }
  for (int32_t r : in.sel) {
    size_t t = static_cast<size_t>(VecHashRowKey(in, hash_cols, r) %
                                   static_cast<uint64_t>(num_targets));
    (*out)[t].AppendSelectedFrom(in, r);
  }
  return Status::OK();
}

void VecAggUpdate(AggFunc fn, const ColumnVector& vals,
                  const std::vector<int32_t>& pos, AggState* s) {
  if (fn == AggFunc::kCountStar) {
    s->count += static_cast<int64_t>(pos.size());
    return;
  }
  if (fn == AggFunc::kCount && vals.tag != Tag::kDatum) {
    if (vals.nulls.empty()) {
      s->count += static_cast<int64_t>(pos.size());
    } else {
      for (int32_t r : pos) s->count += vals.nulls[static_cast<size_t>(r)] == 0;
    }
    return;
  }
  if ((fn == AggFunc::kSum || fn == AggFunc::kAvg) && vals.tag == Tag::kInt64 &&
      s->sum_is_int) {
    // Unboxed int-sum hot loop (a typed int column can never force the
    // accumulator to widen).
    const int64_t* v = vals.ints.data();
    if (vals.nulls.empty()) {
      int64_t acc = 0;
      for (int32_t r : pos) acc += v[r];
      s->isum += acc;
      s->count += static_cast<int64_t>(pos.size());
      if (!pos.empty()) s->has_value = true;
    } else {
      for (int32_t r : pos) {
        const size_t i = static_cast<size_t>(r);
        if (vals.nulls[i]) continue;
        s->isum += v[i];
        ++s->count;
        s->has_value = true;
      }
    }
    return;
  }
  if ((fn == AggFunc::kSum || fn == AggFunc::kAvg) && vals.tag == Tag::kDouble) {
    const double* v = vals.dbls.data();
    for (int32_t r : pos) {
      const size_t i = static_cast<size_t>(r);
      if (!vals.nulls.empty() && vals.nulls[i]) continue;
      if (s->sum_is_int) {
        s->sum = static_cast<double>(s->isum);
        s->sum_is_int = false;
      }
      s->sum += v[i];
      ++s->count;
      s->has_value = true;
    }
    return;
  }
  if ((fn == AggFunc::kSum || fn == AggFunc::kAvg) && vals.tag == Tag::kDatum &&
      s->sum_is_int) {
    // Boxed int-sum loop; bail to the generic path on the first non-int value.
    size_t i = 0;
    for (; i < pos.size(); ++i) {
      const Datum& v = vals.datums[static_cast<size_t>(pos[i])];
      if (v.is_null()) continue;
      if (!v.is_int()) break;
      s->isum += v.int_val();
      ++s->count;
      s->has_value = true;
    }
    for (; i < pos.size(); ++i) {
      AggUpdateValue(fn, s, vals.datums[static_cast<size_t>(pos[i])]);
    }
    return;
  }
  for (int32_t r : pos) AggUpdateValue(fn, s, vals.GetDatum(static_cast<size_t>(r)));
}

}  // namespace gphtap
