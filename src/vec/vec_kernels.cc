#include "vec/vec_kernels.h"

namespace gphtap {

namespace {

// Comparison fast path for two non-null int64 datums.
inline int64_t CompareIntOp(BinOp op, int64_t a, int64_t b) {
  switch (op) {
    case BinOp::kEq:
      return a == b;
    case BinOp::kNe:
      return a != b;
    case BinOp::kLt:
      return a < b;
    case BinOp::kLe:
      return a <= b;
    case BinOp::kGt:
      return a > b;
    case BinOp::kGe:
      return a >= b;
    default:
      return 0;  // unreachable, guarded by caller
  }
}

inline bool IsCompare(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

Status VecEvalLogical(const Expr& e, const ColumnBatch& batch,
                      const std::vector<int32_t>& pos, std::vector<Datum>* out) {
  const bool is_and = e.op == BinOp::kAnd;
  std::vector<Datum> lvals;
  GPHTAP_RETURN_IF_ERROR(VecEval(*e.left, batch, pos, &lvals));

  // Positions the left operand did not decide; the right operand is evaluated
  // ONLY there (short circuit: errors in the skipped positions never surface,
  // exactly like the row engine).
  std::vector<int32_t> undecided;
  undecided.reserve(pos.size());
  for (int32_t r : pos) {
    int lt = DatumTruth(lvals[static_cast<size_t>(r)]);
    if (is_and && lt == 0) {
      (*out)[static_cast<size_t>(r)] = Datum(int64_t{0});
    } else if (!is_and && lt == 1) {
      (*out)[static_cast<size_t>(r)] = Datum(int64_t{1});
    } else {
      undecided.push_back(r);
    }
  }
  if (undecided.empty()) return Status::OK();

  std::vector<Datum> rvals;
  GPHTAP_RETURN_IF_ERROR(VecEval(*e.right, batch, undecided, &rvals));
  for (int32_t r : undecided) {
    int lt = DatumTruth(lvals[static_cast<size_t>(r)]);
    int rt = DatumTruth(rvals[static_cast<size_t>(r)]);
    Datum& o = (*out)[static_cast<size_t>(r)];
    if (is_and) {
      if (lt == 1 && rt == 1) {
        o = Datum(int64_t{1});
      } else if (rt == 0) {
        o = Datum(int64_t{0});
      } else {
        o = Datum::Null();
      }
    } else {
      if (lt == 0 && rt == 0) {
        o = Datum(int64_t{0});
      } else if (rt == 1) {
        o = Datum(int64_t{1});
      } else {
        o = Datum::Null();
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status VecEval(const Expr& e, const ColumnBatch& batch,
               const std::vector<int32_t>& pos, std::vector<Datum>* out) {
  if (out->size() < batch.rows) out->resize(batch.rows);
  switch (e.kind) {
    case ExprKind::kConst:
      for (int32_t r : pos) (*out)[static_cast<size_t>(r)] = e.value;
      return Status::OK();
    case ExprKind::kColumn: {
      if (e.column < 0 || static_cast<size_t>(e.column) >= batch.NumColumns()) {
        return Status::Internal("column index out of range: " +
                                std::to_string(e.column));
      }
      const std::vector<Datum>& col = batch.columns[static_cast<size_t>(e.column)];
      for (int32_t r : pos) (*out)[static_cast<size_t>(r)] = col[static_cast<size_t>(r)];
      return Status::OK();
    }
    case ExprKind::kNot: {
      std::vector<Datum> vals;
      GPHTAP_RETURN_IF_ERROR(VecEval(*e.left, batch, pos, &vals));
      for (int32_t r : pos) {
        int t = DatumTruth(vals[static_cast<size_t>(r)]);
        (*out)[static_cast<size_t>(r)] =
            t < 0 ? Datum::Null() : Datum(static_cast<int64_t>(t == 1 ? 0 : 1));
      }
      return Status::OK();
    }
    case ExprKind::kIsNull: {
      std::vector<Datum> vals;
      GPHTAP_RETURN_IF_ERROR(VecEval(*e.left, batch, pos, &vals));
      for (int32_t r : pos) {
        (*out)[static_cast<size_t>(r)] = Datum(
            static_cast<int64_t>(vals[static_cast<size_t>(r)].is_null() ? 1 : 0));
      }
      return Status::OK();
    }
    case ExprKind::kBinary: {
      if (e.op == BinOp::kAnd || e.op == BinOp::kOr) {
        return VecEvalLogical(e, batch, pos, out);
      }
      std::vector<Datum> lvals, rvals;
      GPHTAP_RETURN_IF_ERROR(VecEval(*e.left, batch, pos, &lvals));
      GPHTAP_RETURN_IF_ERROR(VecEval(*e.right, batch, pos, &rvals));
      const bool cmp = IsCompare(e.op);
      const bool fast_arith =
          e.op == BinOp::kAdd || e.op == BinOp::kSub || e.op == BinOp::kMul;
      for (int32_t r : pos) {
        const Datum& l = lvals[static_cast<size_t>(r)];
        const Datum& v = rvals[static_cast<size_t>(r)];
        Datum& o = (*out)[static_cast<size_t>(r)];
        // Int-int fast path: no dispatch, no Status machinery per row.
        if (l.is_int() && v.is_int()) {
          int64_t a = l.int_val(), b = v.int_val();
          if (cmp) {
            o = Datum(CompareIntOp(e.op, a, b));
            continue;
          }
          if (fast_arith) {
            o = Datum(e.op == BinOp::kAdd   ? a + b
                      : e.op == BinOp::kSub ? a - b
                                            : a * b);
            continue;
          }
        }
        GPHTAP_ASSIGN_OR_RETURN(o, EvalBinaryOp(e.op, l, v));
      }
      return Status::OK();
    }
  }
  return Status::Internal("bad expr kind");
}

Status VecFilterBatch(const Expr& filter, ColumnBatch* batch) {
  if (batch->sel.empty()) return Status::OK();
  std::vector<Datum> vals;
  GPHTAP_RETURN_IF_ERROR(VecEval(filter, *batch, batch->sel, &vals));
  size_t w = 0;
  for (int32_t r : batch->sel) {
    if (DatumTruth(vals[static_cast<size_t>(r)]) == 1) batch->sel[w++] = r;
  }
  batch->sel.resize(w);
  return Status::OK();
}

Status VecProjectBatch(const std::vector<ExprPtr>& exprs, const ColumnBatch& in,
                       ColumnBatch* out) {
  out->Clear();
  out->columns.resize(exprs.size());
  std::vector<Datum> vals;
  for (size_t i = 0; i < exprs.size(); ++i) {
    GPHTAP_RETURN_IF_ERROR(VecEval(*exprs[i], in, in.sel, &vals));
    std::vector<Datum>& col = out->columns[i];
    col.clear();
    col.reserve(in.sel.size());
    for (int32_t r : in.sel) col.push_back(std::move(vals[static_cast<size_t>(r)]));
  }
  out->rows = in.sel.size();
  out->SelectAll();
  return Status::OK();
}

Status VecPartitionBatch(const ColumnBatch& in, const std::vector<int>& hash_cols,
                         int num_targets, std::vector<ColumnBatch>* out) {
  if (num_targets <= 0) return Status::InvalidArgument("num_targets");
  out->clear();
  out->resize(static_cast<size_t>(num_targets));
  for (ColumnBatch& b : *out) b.Reset(in.NumColumns(), in.sel.size());
  for (int32_t r : in.sel) {
    Row row = in.MaterializeRow(r);
    size_t t = static_cast<size_t>(HashRowKey(row, hash_cols) %
                                   static_cast<uint64_t>(num_targets));
    (*out)[t].AppendRow(std::move(row));
  }
  return Status::OK();
}

void VecAggUpdate(AggFunc fn, const std::vector<Datum>& vals,
                  const std::vector<int32_t>& pos, AggState* s) {
  if (fn == AggFunc::kCountStar) {
    s->count += static_cast<int64_t>(pos.size());
    return;
  }
  if ((fn == AggFunc::kSum || fn == AggFunc::kAvg) && s->sum_is_int) {
    // Int-sum hot loop; bail to the generic path on the first non-int value.
    size_t i = 0;
    for (; i < pos.size(); ++i) {
      const Datum& v = vals[static_cast<size_t>(pos[i])];
      if (v.is_null()) continue;
      if (!v.is_int()) break;
      s->isum += v.int_val();
      ++s->count;
      s->has_value = true;
    }
    for (; i < pos.size(); ++i) {
      AggUpdateValue(fn, s, vals[static_cast<size_t>(pos[i])]);
    }
    return;
  }
  for (int32_t r : pos) AggUpdateValue(fn, s, vals[static_cast<size_t>(r)]);
}

}  // namespace gphtap
