#include "vec/column_batch.h"

namespace gphtap {

void ColumnBatch::Reset(size_t ncols, size_t capacity) {
  Clear();
  columns.resize(ncols);
  for (auto& col : columns) col.reserve(capacity);
  sel.reserve(capacity);
}

void ColumnBatch::SelectAll() {
  sel.resize(rows);
  for (size_t r = 0; r < rows; ++r) sel[r] = static_cast<int32_t>(r);
}

void ColumnBatch::AppendRow(const Row& row) {
  for (size_t c = 0; c < columns.size(); ++c) columns[c].push_back(row[c]);
  sel.push_back(static_cast<int32_t>(rows));
  ++rows;
}

void ColumnBatch::AppendRow(Row&& row) {
  for (size_t c = 0; c < columns.size(); ++c) columns[c].push_back(std::move(row[c]));
  sel.push_back(static_cast<int32_t>(rows));
  ++rows;
}

Row ColumnBatch::MaterializeRow(int32_t r) const {
  Row out;
  out.reserve(columns.size());
  for (const auto& col : columns) out.push_back(col[static_cast<size_t>(r)]);
  return out;
}

void ColumnBatch::AppendTo(std::vector<Row>* out) const {
  out->reserve(out->size() + sel.size());
  for (int32_t r : sel) out->push_back(MaterializeRow(r));
}

ColumnBatch ColumnBatch::FromRows(const std::vector<Row>& rows) {
  ColumnBatch b;
  b.Reset(rows.empty() ? 0 : rows[0].size(), rows.size());
  for (const Row& r : rows) b.AppendRow(r);
  return b;
}

void ColumnBatch::Compact() {
  if (sel.size() == rows) return;  // already dense
  for (auto& col : columns) {
    std::vector<Datum> dense;
    dense.reserve(sel.size());
    for (int32_t r : sel) dense.push_back(std::move(col[static_cast<size_t>(r)]));
    col = std::move(dense);
  }
  rows = sel.size();
  SelectAll();
}

int64_t ColumnBatch::FootprintBytes() const {
  int64_t bytes = 0;
  for (int32_t r : sel) {
    bytes += static_cast<int64_t>(sizeof(Row));
    for (const auto& col : columns) {
      bytes += static_cast<int64_t>(col[static_cast<size_t>(r)].FootprintBytes());
    }
  }
  return bytes;
}

}  // namespace gphtap
