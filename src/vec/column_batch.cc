#include "vec/column_batch.h"

namespace gphtap {

void ColumnVector::ResetTyped(Tag t, size_t n) {
  Clear();
  tag = t;
  switch (tag) {
    case Tag::kInt64:
      ints.assign(n, 0);
      break;
    case Tag::kDouble:
      dbls.assign(n, 0.0);
      break;
    case Tag::kDatum:
      datums.assign(n, Datum());
      break;
  }
}

void ColumnVector::AdoptDatums(std::vector<Datum>&& vals, TypeId type) {
  Clear();
  if (type == TypeId::kInt64 || type == TypeId::kDouble) {
    const bool want_int = type == TypeId::kInt64;
    bool typed_ok = true;
    for (const Datum& d : vals) {
      if (!d.is_null() && (want_int ? !d.is_int() : !d.is_double())) {
        typed_ok = false;
        break;
      }
    }
    if (typed_ok) {
      tag = want_int ? Tag::kInt64 : Tag::kDouble;
      bool any_null = false;
      if (want_int) {
        ints.reserve(vals.size());
        for (const Datum& d : vals) {
          ints.push_back(d.is_null() ? 0 : d.int_val());
          any_null |= d.is_null();
        }
      } else {
        dbls.reserve(vals.size());
        for (const Datum& d : vals) {
          dbls.push_back(d.is_null() ? 0.0 : d.double_val());
          any_null |= d.is_null();
        }
      }
      if (any_null) {
        nulls.resize(vals.size());
        for (size_t i = 0; i < vals.size(); ++i) nulls[i] = vals[i].is_null();
      }
      return;
    }
  }
  tag = Tag::kDatum;
  datums = std::move(vals);
}

void ColumnVector::Demote() {
  if (tag == Tag::kDatum) return;
  const size_t n = size();
  std::vector<Datum> boxed;
  boxed.reserve(n);
  for (size_t r = 0; r < n; ++r) boxed.push_back(GetDatum(r));
  Clear();
  tag = Tag::kDatum;
  datums = std::move(boxed);
}

void ColumnVector::Append(const Datum& d) {
  if (size() == 0 && nulls.empty()) {
    // Empty column: adopt the datum's type (NULL defaults to the int layout —
    // the mask keeps it exact whatever arrives later).
    if (d.is_double()) {
      tag = Tag::kDouble;
    } else if (d.is_string()) {
      tag = Tag::kDatum;
    } else {
      tag = Tag::kInt64;
    }
  }
  switch (tag) {
    case Tag::kInt64:
      if (d.is_null()) {
        EnsureNulls();
        ints.push_back(0);
        nulls.push_back(1);
        return;
      }
      if (d.is_int()) {
        ints.push_back(d.int_val());
        if (!nulls.empty()) nulls.push_back(0);
        return;
      }
      break;
    case Tag::kDouble:
      if (d.is_null()) {
        EnsureNulls();
        dbls.push_back(0.0);
        nulls.push_back(1);
        return;
      }
      if (d.is_double()) {
        dbls.push_back(d.double_val());
        if (!nulls.empty()) nulls.push_back(0);
        return;
      }
      break;
    case Tag::kDatum:
      datums.push_back(d);
      return;
  }
  Demote();
  datums.push_back(d);
}

void ColumnVector::Append(Datum&& d) {
  if (tag == Tag::kDatum && size() > 0) {
    datums.push_back(std::move(d));
    return;
  }
  Append(static_cast<const Datum&>(d));
}

void ColumnVector::AppendFrom(const ColumnVector& src, size_t r) {
  if (size() == 0 && nulls.empty()) tag = src.tag;
  if (tag == src.tag) {
    switch (tag) {
      case Tag::kInt64:
        if (src.IsNull(r)) {
          EnsureNulls();
          ints.push_back(0);
          nulls.push_back(1);
        } else {
          ints.push_back(src.ints[r]);
          if (!nulls.empty()) nulls.push_back(0);
        }
        return;
      case Tag::kDouble:
        if (src.IsNull(r)) {
          EnsureNulls();
          dbls.push_back(0.0);
          nulls.push_back(1);
        } else {
          dbls.push_back(src.dbls[r]);
          if (!nulls.empty()) nulls.push_back(0);
        }
        return;
      case Tag::kDatum:
        datums.push_back(src.datums[r]);
        return;
    }
  }
  Append(src.GetDatum(r));
}

void ColumnBatch::Reset(size_t ncols, size_t capacity) {
  Clear();
  columns.resize(ncols);
  for (auto& col : columns) col.Reserve(capacity);
  sel.reserve(capacity);
}

void ColumnBatch::SelectAll() {
  sel.resize(rows);
  for (size_t r = 0; r < rows; ++r) sel[r] = static_cast<int32_t>(r);
}

void ColumnBatch::AppendRow(const Row& row) {
  for (size_t c = 0; c < columns.size(); ++c) columns[c].Append(row[c]);
  sel.push_back(static_cast<int32_t>(rows));
  ++rows;
}

void ColumnBatch::AppendRow(Row&& row) {
  for (size_t c = 0; c < columns.size(); ++c) columns[c].Append(std::move(row[c]));
  sel.push_back(static_cast<int32_t>(rows));
  ++rows;
}

void ColumnBatch::AppendSelectedFrom(const ColumnBatch& src, int32_t r) {
  for (size_t c = 0; c < columns.size(); ++c) {
    columns[c].AppendFrom(src.columns[c], static_cast<size_t>(r));
  }
  sel.push_back(static_cast<int32_t>(rows));
  ++rows;
}

Row ColumnBatch::MaterializeRow(int32_t r) const {
  Row out;
  out.reserve(columns.size());
  for (const auto& col : columns) out.push_back(col.GetDatum(static_cast<size_t>(r)));
  return out;
}

void ColumnBatch::AppendTo(std::vector<Row>* out) const {
  out->reserve(out->size() + sel.size());
  for (int32_t r : sel) out->push_back(MaterializeRow(r));
}

ColumnBatch ColumnBatch::FromRows(const std::vector<Row>& rows) {
  ColumnBatch b;
  b.Reset(rows.empty() ? 0 : rows[0].size(), rows.size());
  for (const Row& r : rows) b.AppendRow(r);
  return b;
}

void ColumnBatch::Compact() {
  if (sel.size() == rows) return;  // already dense
  for (auto& col : columns) {
    ColumnVector dense;
    dense.tag = col.tag;
    dense.Reserve(sel.size());
    for (int32_t r : sel) dense.AppendFrom(col, static_cast<size_t>(r));
    col = std::move(dense);
  }
  rows = sel.size();
  SelectAll();
}

int64_t ColumnBatch::FootprintBytes() const {
  int64_t bytes = 0;
  for (int32_t r : sel) {
    bytes += static_cast<int64_t>(sizeof(Row));
    for (const auto& col : columns) {
      bytes += static_cast<int64_t>(col.FootprintAt(static_cast<size_t>(r)));
    }
  }
  return bytes;
}

}  // namespace gphtap
