#include "vec/vec_executor.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/wait_event.h"
#include "delta/delta_index.h"
#include "exec/agg_ops.h"
#include "exec/executor.h"
#include "stats/statement_resources.h"
#include "storage/column_store.h"
#include "storage/heap_table.h"
#include "vec/vec_kernels.h"

namespace gphtap {

bool VecEngineSupports(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSeqScan:
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kHashAgg:
    case PlanKind::kHashJoin:
    case PlanKind::kMotion:
      return true;
    default:
      return false;
  }
}

namespace {

Status ExecuteNodeVecImpl(const PlanNode& node, ExecContext& ctx, const BatchSink& sink);

int64_t VecRowFootprint(const Row& row) {
  int64_t bytes = 32;
  for (const Datum& d : row) bytes += static_cast<int64_t>(d.FootprintBytes());
  return bytes;
}

// Footprint of physical row `r` of a batch, mirroring the row engine's
// RowFootprint without materializing the Row.
int64_t BatchRowFootprint(const ColumnBatch& b, int32_t r) {
  int64_t bytes = 32;
  for (const ColumnVector& col : b.columns) {
    bytes += static_cast<int64_t>(col.FootprintAt(static_cast<size_t>(r)));
  }
  return bytes;
}

// Runs a child subtree as a batch producer: the vec path when the child is
// marked, otherwise the row engine with rows packed into batches (the
// vec-over-row fallback, counted in vec.fallbacks).
Status ExecuteChildVec(const PlanNode& child, ExecContext& ctx, const BatchSink& sink) {
  if (child.vectorize && VecEngineSupports(child.kind)) {
    return ExecuteNodeVec(child, ctx, sink);
  }
  if (ctx.cluster != nullptr) ctx.cluster->metrics().counter("vec.fallbacks")->Add(1);
  if (ctx.resources != nullptr) ctx.resources->vec_fallbacks.fetch_add(1, std::memory_order_relaxed);
  ColumnBatch batch;
  bool shaped = false;
  Status s = ExecuteNode(child, ctx, [&](Row&& row) -> Status {
    if (!shaped) {
      batch.Reset(row.size());
      shaped = true;
    }
    batch.AppendRow(std::move(row));
    if (batch.rows >= ColumnBatch::kDefaultCapacity) {
      size_t ncols = batch.NumColumns();
      ColumnBatch full = std::move(batch);
      batch = ColumnBatch();
      batch.Reset(ncols);
      GPHTAP_RETURN_IF_ERROR(sink(std::move(full)));
    }
    return Status::OK();
  });
  GPHTAP_RETURN_IF_ERROR(s);
  if (batch.rows > 0) return sink(std::move(batch));
  return Status::OK();
}

// Row-scan fallback for a marked scan whose table turns out not to be an AO
// column store (packs filtered rows into batches). Inlined here rather than
// bouncing through ExecuteNode, which would re-enter the vec dispatch.
Status ExecSeqScanVecFallback(const PlanNode& node, ExecContext& ctx, Table* table,
                              const BatchSink& sink) {
  if (ctx.cluster != nullptr) ctx.cluster->metrics().counter("vec.fallbacks")->Add(1);
  if (ctx.resources != nullptr) ctx.resources->vec_fallbacks.fetch_add(1, std::memory_order_relaxed);
  VisibilityContext vis = ctx.Vis();
  ColumnBatch batch;
  bool shaped = false;
  int64_t visible_rows = 0;
  Status inner = Status::OK();
  auto cb = [&](TupleId, const Row& row) -> bool {
    Status t = ctx.Tick();
    if (!t.ok()) {
      inner = t;
      return false;
    }
    ++visible_rows;
    if (node.filter) {
      auto pass = EvalPredicate(*node.filter, row);
      if (!pass.ok()) {
        inner = pass.status();
        return false;
      }
      if (!*pass) return true;
    }
    if (!shaped) {
      batch.Reset(row.size());
      shaped = true;
    }
    batch.AppendRow(row);
    if (batch.rows >= ColumnBatch::kDefaultCapacity) {
      size_t ncols = batch.NumColumns();
      ColumnBatch full = std::move(batch);
      batch = ColumnBatch();
      batch.Reset(ncols);
      Status sk = sink(std::move(full));
      if (!sk.ok()) {
        inner = sk;
        return false;
      }
    }
    return true;
  };
  Status scan = node.scan_cols.empty() ? table->Scan(vis, cb)
                                       : table->ScanColumns(vis, node.scan_cols, cb);
  if (ctx.op_stats != nullptr && visible_rows > 0) {
    ctx.op_stats->RecordStoreRows(node.node_id, ScanStoreLabel(table->def().storage),
                                  visible_rows);
  }
  if (!inner.ok()) return inner;
  GPHTAP_RETURN_IF_ERROR(scan);
  if (batch.rows > 0) return sink(std::move(batch));
  return Status::OK();
}

// ---------- morsel-parallel sealed-group scan ----------
//
// Workers claim ascending group indexes from an atomic counter, decode +
// filter them (both pure / latch-protected), and publish results into a
// bounded reorder buffer. The consumer (the slice's own thread) drains the
// buffer strictly in group order, so output is byte-identical to the
// single-threaded scan; it alone runs ctx.Tick and the sink (neither is
// thread-safe).
struct MorselQueue {
  std::mutex mu;
  std::condition_variable cv;
  // gi -> decoded batch; null marks a skipped (reclaimed / fully-invisible /
  // fully-filtered) group. Bounded by `capacity` entries.
  std::map<size_t, std::unique_ptr<ColumnBatch>> ready;
  size_t capacity = 4;
  size_t next_consume = 0;
  std::atomic<size_t> next_claim{0};
  // Pre-filter visible rows decoded across all workers (store accounting).
  std::atomic<int64_t> visible_rows{0};
  int active_workers = 0;
  bool stop = false;  // consumer asks workers to quit (error or early stop)
  Status error;
  bool failed = false;
};

void MorselWorker(MorselQueue* q, AoColumnTable* aoc, const VisibilityContext vis,
                  const std::vector<int>& cols, const Expr* filter,
                  size_t num_groups) {
  for (;;) {
    size_t gi = q->next_claim.fetch_add(1, std::memory_order_relaxed);
    if (gi >= num_groups) break;
    {
      // Backpressure: don't run far ahead of the in-order consumer.
      std::unique_lock<std::mutex> g(q->mu);
      q->cv.wait(g, [&] {
        return q->stop || q->failed || gi < q->next_consume + q->capacity;
      });
      if (q->stop || q->failed) {
        // Publish a skip so the consumer never waits on this index.
        q->ready.emplace(gi, nullptr);
        q->cv.notify_all();
        break;
      }
    }
    auto batch = std::make_unique<ColumnBatch>();
    auto decoded = aoc->DecodeGroupBatch(gi, vis, cols, batch.get());
    Status st = decoded.ok() ? Status::OK() : decoded.status();
    bool skip = st.ok() && !*decoded;
    if (st.ok() && !skip) {
      q->visible_rows.fetch_add(static_cast<int64_t>(batch->ActiveRows()),
                                std::memory_order_relaxed);
    }
    if (st.ok() && !skip && filter != nullptr) {
      st = VecFilterBatch(*filter, batch.get());
      if (st.ok() && batch->ActiveRows() == 0) skip = true;
    }
    std::lock_guard<std::mutex> g(q->mu);
    if (!st.ok() && !q->failed) {
      q->failed = true;
      q->error = st;
    }
    q->ready.emplace(gi, skip || !st.ok() ? nullptr : std::move(batch));
    q->cv.notify_all();
  }
  std::lock_guard<std::mutex> g(q->mu);
  --q->active_workers;
  q->cv.notify_all();
}

Status ExecSeqScanVecMorsel(const PlanNode& node, ExecContext& ctx, AoColumnTable* aoc,
                            const std::vector<int>& cols, const VisibilityContext& vis,
                            size_t num_groups, int workers, const BatchSink& sink) {
  MorselQueue q;
  q.capacity = static_cast<size_t>(workers) * 2;
  q.active_workers = workers;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  const Expr* filter = node.filter.get();
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back(MorselWorker, &q, aoc, vis, std::cref(cols), filter, num_groups);
  }
  if (ctx.cluster != nullptr) {
    MetricsRegistry& m = ctx.cluster->metrics();
    m.counter("vec.morsels")->Add(num_groups);
    m.counter("vec.morsel_workers")->Add(static_cast<uint64_t>(workers));
  }

  Status result = Status::OK();
  for (size_t gi = 0; gi < num_groups; ++gi) {
    std::unique_ptr<ColumnBatch> batch;
    {
      std::unique_lock<std::mutex> g(q.mu);
      q.cv.wait(g, [&] {
        return q.failed || q.ready.count(gi) > 0 ||
               (q.active_workers == 0 && q.ready.count(gi) == 0);
      });
      if (q.failed) {
        result = q.error;
        break;
      }
      auto it = q.ready.find(gi);
      if (it == q.ready.end()) break;  // workers gone without publishing: stop
      batch = std::move(it->second);
      q.ready.erase(it);
      q.next_consume = gi + 1;
      q.cv.notify_all();
    }
    if (batch == nullptr) continue;  // skipped group
    Status t = ctx.Tick(static_cast<int>(batch->rows));
    if (t.ok()) t = sink(std::move(*batch));
    if (!t.ok()) {
      result = t;
      break;
    }
  }
  {
    std::lock_guard<std::mutex> g(q.mu);
    q.stop = true;
    q.cv.notify_all();
  }
  for (auto& th : pool) th.join();
  GPHTAP_RETURN_IF_ERROR(result);

  int64_t visible_rows = q.visible_rows.load(std::memory_order_relaxed);

  // Open tail runs inline, after every sealed group, like the serial scan.
  ColumnBatch tail;
  auto decoded = aoc->DecodeOpenTail(vis, cols, &tail);
  if (!decoded.ok()) return decoded.status();
  Status tail_status = Status::OK();
  if (*decoded) {
    visible_rows += static_cast<int64_t>(tail.ActiveRows());
    tail_status = ctx.Tick(static_cast<int>(tail.rows));
    if (tail_status.ok() && node.filter) {
      tail_status = VecFilterBatch(*node.filter, &tail);
    }
    if (tail_status.ok() && tail.ActiveRows() > 0) {
      tail_status = sink(std::move(tail));
    }
  }
  if (ctx.op_stats != nullptr && visible_rows > 0) {
    ctx.op_stats->RecordStoreRows(node.node_id, "ao-column", visible_rows);
  }
  return tail_status;
}

// Vectorized delta-merged scan of a heap table: wait for the delta feed to
// reach the log position captured at scan start, then scan the table's
// columnar delta store (sealed groups + open tail) under the statement's own
// visibility context. The wait makes the scan snapshot-exact: every record of
// every transaction the snapshot can see was appended before `target`.
// Sets `served=false` (without consuming the sink) when the delta path cannot
// run — no delta index here, or the feed missed the freshness deadline — so
// the caller falls back to the row engine.
Status ExecSeqScanDeltaMerged(const PlanNode& node, ExecContext& ctx,
                              const std::vector<int>& cols, const BatchSink& sink,
                              bool* served) {
  *served = false;
  if (ctx.cluster == nullptr || ctx.segment == nullptr) return Status::OK();
  DeltaIndex* di = ctx.cluster->delta_index(ctx.segment->index());
  ChangeLog* log = ctx.segment->change_log();
  if (di == nullptr || log == nullptr) return Status::OK();
  MetricsRegistry& m = ctx.cluster->metrics();

  const uint64_t target = log->size();
  const int64_t t0 = MonotonicMicros();
  Status fresh;
  {
    WaitEventScope scope(WaitEvent::kDeltaFreshness, ctx.segment->index());
    fresh = di->WaitForApplied(target,
                               ctx.cluster->options().delta_freshness_timeout_us);
  }
  m.counter("delta.freshness_wait_us")->Add(
      static_cast<uint64_t>(MonotonicMicros() - t0));
  if (!fresh.ok()) {
    m.counter("delta.freshness_timeouts")->Add(1);
    return Status::OK();  // the row engine serves this scan instead
  }

  *served = true;
  m.counter("delta.merged_scans")->Add(1);
  DeltaStore* ds = di->store(node.table);
  // No store after a successful freshness wait means no record ever touched
  // the table on this segment: it is empty here.
  if (ds == nullptr) return Status::OK();

  VisibilityContext vis = ctx.Vis();
  uint64_t sealed_rows = 0;
  uint64_t open_rows = 0;
  Status inner = Status::OK();
  Status scan = ds->ScanBatches(
      vis, cols,
      [&](ColumnBatch&& batch) -> bool {
        Status t = ctx.Tick(static_cast<int>(batch.rows));
        if (!t.ok()) {
          inner = t;
          return false;
        }
        if (node.filter) {
          Status f = VecFilterBatch(*node.filter, &batch);
          if (!f.ok()) {
            inner = f;
            return false;
          }
        }
        if (batch.ActiveRows() == 0) return true;
        Status s = sink(std::move(batch));
        if (!s.ok()) {
          inner = s;
          return false;
        }
        return true;
      },
      &sealed_rows, &open_rows);
  if (ctx.op_stats != nullptr) {
    ctx.op_stats->RecordStoreRows(node.node_id, "delta-merged",
                                  static_cast<int64_t>(sealed_rows + open_rows));
    if (sealed_rows > 0) {
      ctx.op_stats->RecordStoreRows(node.node_id, "delta-sealed",
                                    static_cast<int64_t>(sealed_rows));
    }
    if (open_rows > 0) {
      ctx.op_stats->RecordStoreRows(node.node_id, "delta-open",
                                    static_cast<int64_t>(open_rows));
    }
  }
  if (!inner.ok()) return inner;
  return scan;
}

Status ExecSeqScanVec(const PlanNode& node, ExecContext& ctx, const BatchSink& sink) {
  Table* table = nullptr;
  GPHTAP_RETURN_IF_ERROR(TableForNode(ctx, node.table, &table));
  GPHTAP_RETURN_IF_ERROR(AcquireScanLock(ctx, node.table));
  auto* aoc = dynamic_cast<AoColumnTable*>(table);
  if (aoc == nullptr) {
    std::vector<int> cols = node.scan_cols;
    if (cols.empty()) {
      cols.resize(table->schema().num_columns());
      for (size_t i = 0; i < cols.size(); ++i) cols[i] = static_cast<int>(i);
    }
    if (dynamic_cast<HeapTable*>(table) != nullptr) {
      bool served = false;
      Status s = ExecSeqScanDeltaMerged(node, ctx, cols, sink, &served);
      if (served) return s;
      if (ctx.cluster != nullptr) {
        ctx.cluster->metrics().counter("delta.fallback_scans")->Add(1);
      }
    }
    return ExecSeqScanVecFallback(node, ctx, table, sink);
  }

  std::vector<int> cols = node.scan_cols;
  if (cols.empty()) {
    cols.resize(table->schema().num_columns());
    for (size_t i = 0; i < cols.size(); ++i) cols[i] = static_cast<int>(i);
  }
  VisibilityContext vis = ctx.Vis();

  if (ctx.cluster != nullptr) {
    const ClusterOptions& opts = ctx.cluster->options();
    size_t num_groups = aoc->NumSealedGroups();
    if (opts.vec_morsel_workers > 1 && num_groups >= opts.vec_morsel_min_groups) {
      int workers = opts.vec_morsel_workers;
      if (static_cast<size_t>(workers) > num_groups) {
        workers = static_cast<int>(num_groups);
      }
      return ExecSeqScanVecMorsel(node, ctx, aoc, cols, vis, num_groups, workers, sink);
    }
  }

  Status inner = Status::OK();
  int64_t visible_rows = 0;
  Status scan = aoc->ScanBatches(vis, cols, [&](ColumnBatch&& batch) -> bool {
    // One Tick per batch amortizes cancellation checks and simulated-CPU
    // charging over the whole group.
    Status t = ctx.Tick(static_cast<int>(batch.rows));
    if (!t.ok()) {
      inner = t;
      return false;
    }
    visible_rows += static_cast<int64_t>(batch.ActiveRows());
    if (node.filter) {
      Status f = VecFilterBatch(*node.filter, &batch);
      if (!f.ok()) {
        inner = f;
        return false;
      }
    }
    if (batch.ActiveRows() == 0) return true;
    Status s = sink(std::move(batch));
    if (!s.ok()) {
      inner = s;
      return false;
    }
    return true;
  });
  if (ctx.op_stats != nullptr && visible_rows > 0) {
    ctx.op_stats->RecordStoreRows(node.node_id, "ao-column", visible_rows);
  }
  if (!inner.ok()) return inner;
  return scan;
}

// ---------- vectorized hash join ----------
//
// Mirrors the row engine's ExecHashJoin exactly (null keys never match, hash
// collisions verified by Datum::Compare, combined layout = probe columns then
// build columns, node.filter applied to the combined row, same memory
// accounting) — but the build store is one dense ColumnBatch addressed by row
// index, and probe/emit work batch-at-a-time by column copy.
Status ExecHashJoinVec(const PlanNode& node, ExecContext& ctx, const BatchSink& sink) {
  // Build side = children[1] (inner), fully materialized first — this is also
  // the Appendix-B network-deadlock prophylactic.
  ColumnBatch build;
  std::unordered_multimap<uint64_t, int32_t> ht;
  Status st = ExecuteChildVec(*node.children[1], ctx, [&](ColumnBatch&& b) -> Status {
    if (build.columns.empty()) build.Reset(b.NumColumns());
    for (int32_t r : b.sel) {
      bool null_key = false;
      for (int k : node.right_keys) {
        if (b.columns[static_cast<size_t>(k)].IsNull(static_cast<size_t>(r))) {
          null_key = true;
          break;
        }
      }
      if (null_key) continue;
      if (ctx.mem != nullptr) {
        GPHTAP_RETURN_IF_ERROR(ctx.mem->Reserve(BatchRowFootprint(b, r)));
      }
      ht.emplace(VecHashRowKey(b, node.right_keys, r),
                 static_cast<int32_t>(build.rows));
      build.AppendSelectedFrom(b, r);
    }
    return Status::OK();
  });
  GPHTAP_RETURN_IF_ERROR(st);

  // Probe side streams; matches accumulate into output batches.
  ColumnBatch out;
  bool shaped = false;
  auto flush = [&]() -> Status {
    if (node.filter) {
      GPHTAP_RETURN_IF_ERROR(VecFilterBatch(*node.filter, &out));
    }
    size_t ncols = out.NumColumns();
    ColumnBatch full = std::move(out);
    out = ColumnBatch();
    out.Reset(ncols);
    if (full.ActiveRows() == 0) return Status::OK();
    return sink(std::move(full));
  };
  Status ps = ExecuteChildVec(*node.children[0], ctx, [&](ColumnBatch&& p) -> Status {
    GPHTAP_RETURN_IF_ERROR(ctx.Tick(static_cast<int>(p.ActiveRows())));
    if (!shaped) {
      out.Reset(p.NumColumns() + build.NumColumns());
      shaped = true;
    }
    for (int32_t r : p.sel) {
      bool null_key = false;
      for (int k : node.left_keys) {
        if (p.columns[static_cast<size_t>(k)].IsNull(static_cast<size_t>(r))) {
          null_key = true;
          break;
        }
      }
      if (null_key) continue;
      auto range = ht.equal_range(VecHashRowKey(p, node.left_keys, r));
      for (auto it = range.first; it != range.second; ++it) {
        const size_t m = static_cast<size_t>(it->second);
        // Verify key equality (hash collisions).
        bool match = true;
        for (size_t k = 0; k < node.left_keys.size(); ++k) {
          if (p.columns[static_cast<size_t>(node.left_keys[k])]
                  .GetDatum(static_cast<size_t>(r))
                  .Compare(build.columns[static_cast<size_t>(node.right_keys[k])]
                               .GetDatum(m)) != 0) {
            match = false;
            break;
          }
        }
        if (!match) continue;
        for (size_t c = 0; c < p.NumColumns(); ++c) {
          out.columns[c].AppendFrom(p.columns[c], static_cast<size_t>(r));
        }
        for (size_t c = 0; c < build.NumColumns(); ++c) {
          out.columns[p.NumColumns() + c].AppendFrom(build.columns[c], m);
        }
        out.sel.push_back(static_cast<int32_t>(out.rows));
        ++out.rows;
        if (out.rows >= ColumnBatch::kDefaultCapacity) {
          GPHTAP_RETURN_IF_ERROR(flush());
        }
      }
    }
    return Status::OK();
  });
  GPHTAP_RETURN_IF_ERROR(ps);
  if (out.rows > 0) return flush();
  return Status::OK();
}

Status ExecHashAggVec(const PlanNode& node, ExecContext& ctx, const BatchSink& sink) {
  struct Group {
    Row key;
    std::vector<AggState> states;
  };
  std::map<std::string, Group> groups;
  Status mem_status = Status::OK();

  auto new_group = [&](Row key) -> Group {
    Group g;
    g.key = std::move(key);
    g.states.resize(node.aggs.size());
    // Memory grows with the number of groups, not the number of input rows
    // (same accounting as the row engine's hash agg).
    if (ctx.mem != nullptr && mem_status.ok()) {
      mem_status = ctx.mem->Reserve(VecRowFootprint(g.key) +
                                    64 * static_cast<int64_t>(node.aggs.size()));
    }
    return g;
  };

  Status s;
  if (node.agg_phase == AggPhase::kFinal) {
    // Final phase: merge partial states. Input layout: group cols first, then
    // each agg's partial state columns (AggStateArity wide). Input volume is
    // one row per (group, sender), so per-row materialization is cheap.
    std::vector<int> gcols(node.group_cols.size());
    for (size_t i = 0; i < gcols.size(); ++i) gcols[i] = static_cast<int>(i);
    s = ExecuteChildVec(*node.children[0], ctx, [&](ColumnBatch&& b) -> Status {
      GPHTAP_RETURN_IF_ERROR(ctx.Tick(static_cast<int>(b.ActiveRows())));
      for (int32_t r : b.sel) {
        Row row = b.MaterializeRow(r);
        std::string key = GroupKeyString(row, gcols);
        auto it = groups.find(key);
        if (it == groups.end()) {
          Row gkey;
          gkey.reserve(gcols.size());
          for (int c : gcols) gkey.push_back(row[static_cast<size_t>(c)]);
          it = groups.emplace(std::move(key), new_group(std::move(gkey))).first;
          GPHTAP_RETURN_IF_ERROR(mem_status);
        }
        int col = static_cast<int>(node.group_cols.size());
        for (size_t a = 0; a < node.aggs.size(); ++a) {
          GPHTAP_RETURN_IF_ERROR(
              AggMergePartial(node.aggs[a], &it->second.states[a], row, col));
          col += AggStateArity(node.aggs[a].fn);
        }
      }
      return Status::OK();
    });
  } else {
    s = ExecuteChildVec(*node.children[0], ctx, [&](ColumnBatch&& b) -> Status {
      GPHTAP_RETURN_IF_ERROR(ctx.Tick(static_cast<int>(b.ActiveRows())));
      // Evaluate each aggregate's argument once over the whole batch.
      std::vector<ColumnVector> argvals(node.aggs.size());
      for (size_t a = 0; a < node.aggs.size(); ++a) {
        if (node.aggs[a].arg != nullptr) {
          GPHTAP_RETURN_IF_ERROR(VecEval(*node.aggs[a].arg, b, b.sel, &argvals[a]));
        }
      }

      if (node.group_cols.empty()) {
        // Global aggregation: one group, column-at-a-time accumulation.
        auto it = groups.find("");
        if (it == groups.end()) {
          it = groups.emplace("", new_group({})).first;
          GPHTAP_RETURN_IF_ERROR(mem_status);
        }
        for (size_t a = 0; a < node.aggs.size(); ++a) {
          VecAggUpdate(node.aggs[a].fn, argvals[a], b.sel, &it->second.states[a]);
        }
        return Status::OK();
      }

      std::string key;
      for (int32_t r : b.sel) {
        key.clear();
        for (int c : node.group_cols) {
          AppendGroupKeyPart(
              b.columns[static_cast<size_t>(c)].GetDatum(static_cast<size_t>(r)),
              &key);
        }
        auto it = groups.find(key);
        if (it == groups.end()) {
          Row gkey;
          gkey.reserve(node.group_cols.size());
          for (int c : node.group_cols) {
            gkey.push_back(
                b.columns[static_cast<size_t>(c)].GetDatum(static_cast<size_t>(r)));
          }
          it = groups.emplace(key, new_group(std::move(gkey))).first;
          GPHTAP_RETURN_IF_ERROR(mem_status);
        }
        for (size_t a = 0; a < node.aggs.size(); ++a) {
          AggState& st = it->second.states[a];
          if (node.aggs[a].fn == AggFunc::kCountStar) {
            ++st.count;
          } else {
            AggUpdateValue(node.aggs[a].fn, &st,
                           argvals[a].GetDatum(static_cast<size_t>(r)));
          }
        }
      }
      return Status::OK();
    });
  }
  GPHTAP_RETURN_IF_ERROR(s);

  // Global aggregates with zero input rows still produce one output group.
  if (groups.empty() && node.group_cols.empty()) {
    Group g;
    g.states.resize(node.aggs.size());
    groups.emplace("", std::move(g));
  }

  ColumnBatch out;
  bool shaped = false;
  for (auto& [key, g] : groups) {
    Row row = g.key;
    for (size_t a = 0; a < node.aggs.size(); ++a) {
      if (node.agg_phase == AggPhase::kPartial) {
        AggEmitPartial(node.aggs[a], g.states[a], &row);
      } else {
        AggEmitFinal(node.aggs[a], g.states[a], &row);
      }
    }
    if (!shaped) {
      out.Reset(row.size());
      shaped = true;
    }
    out.AppendRow(std::move(row));
    if (out.rows >= ColumnBatch::kDefaultCapacity) {
      size_t ncols = out.NumColumns();
      ColumnBatch full = std::move(out);
      out = ColumnBatch();
      out.Reset(ncols);
      Status es = sink(std::move(full));
      if (es.code() == StatusCode::kStopIteration) return es;
      GPHTAP_RETURN_IF_ERROR(es);
    }
  }
  if (out.rows > 0) {
    Status es = sink(std::move(out));
    if (es.code() == StatusCode::kStopIteration) return es;
    GPHTAP_RETURN_IF_ERROR(es);
  }
  return Status::OK();
}

Status ExecMotionRecvVec(const PlanNode& node, ExecContext& ctx, const BatchSink& sink) {
  auto it = ctx.exchanges->find(node.motion_id);
  if (it == ctx.exchanges->end()) {
    return Status::Internal("no exchange for motion " + std::to_string(node.motion_id));
  }
  MotionExchange& ex = *it->second;
  while (auto batch = ex.RecvBatch(ctx.receiver_index)) {
    GPHTAP_RETURN_IF_ERROR(ctx.Tick(static_cast<int>(batch->ActiveRows())));
    Status s = sink(std::move(*batch));
    if (s.code() == StatusCode::kStopIteration) return s;
    GPHTAP_RETURN_IF_ERROR(s);
  }
  if (ex.aborted() && !(ctx.owner && ctx.owner->cancelled())) {
    return Status::Aborted("motion exchange aborted");
  }
  if (ctx.owner && ctx.owner->cancelled()) return ctx.owner->cancel_reason();
  return Status::OK();
}

Status ExecuteNodeVecImpl(const PlanNode& node, ExecContext& ctx, const BatchSink& sink) {
  switch (node.kind) {
    case PlanKind::kSeqScan:
      return ExecSeqScanVec(node, ctx, sink);
    case PlanKind::kFilter:
      return ExecuteChildVec(*node.children[0], ctx, [&](ColumnBatch&& b) -> Status {
        GPHTAP_RETURN_IF_ERROR(VecFilterBatch(*node.filter, &b));
        if (b.ActiveRows() == 0) return Status::OK();
        return sink(std::move(b));
      });
    case PlanKind::kProject:
      return ExecuteChildVec(*node.children[0], ctx, [&](ColumnBatch&& b) -> Status {
        ColumnBatch out;
        GPHTAP_RETURN_IF_ERROR(VecProjectBatch(node.exprs, b, &out));
        if (out.ActiveRows() == 0) return Status::OK();
        return sink(std::move(out));
      });
    case PlanKind::kHashAgg:
      return ExecHashAggVec(node, ctx, sink);
    case PlanKind::kHashJoin:
      return ExecHashJoinVec(node, ctx, sink);
    case PlanKind::kMotion:
      return ExecMotionRecvVec(node, ctx, sink);
    default:
      return Status::Internal("plan node kind not vectorized");
  }
}

}  // namespace

Status ExecuteNodeVec(const PlanNode& node, ExecContext& ctx, const BatchSink& sink) {
  int64_t rows = 0, batches = 0;
  auto counting = [&](ColumnBatch&& b) -> Status {
    ++batches;
    rows += static_cast<int64_t>(b.ActiveRows());
    return sink(std::move(b));
  };
  Stopwatch sw;
  Status s = ExecuteNodeVecImpl(node, ctx, counting);
  if (ctx.op_stats != nullptr && node.node_id >= 0) {
    ctx.op_stats->Record(node.node_id, rows, sw.ElapsedMicros(), batches);
  }
  if (ctx.cluster != nullptr) {
    MetricsRegistry& m = ctx.cluster->metrics();
    m.counter("vec.batches")->Add(static_cast<uint64_t>(batches));
    m.counter("vec.rows")->Add(static_cast<uint64_t>(rows));
  }
  if (ctx.resources != nullptr && batches > 0) {
    // Same per-node semantics as the vec.batches counter (nested marked nodes
    // each count their output), so the view column joins against the metric.
    ctx.resources->vec_batches.fetch_add(static_cast<uint64_t>(batches),
                                         std::memory_order_relaxed);
  }
  return s;
}

}  // namespace gphtap
