#include "vec/vec_executor.h"

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "exec/agg_ops.h"
#include "exec/executor.h"
#include "storage/column_store.h"
#include "vec/vec_kernels.h"

namespace gphtap {

bool VecEngineSupports(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSeqScan:
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kHashAgg:
    case PlanKind::kMotion:
      return true;
    default:
      return false;
  }
}

namespace {

Status ExecuteNodeVecImpl(const PlanNode& node, ExecContext& ctx, const BatchSink& sink);

int64_t VecRowFootprint(const Row& row) {
  int64_t bytes = 32;
  for (const Datum& d : row) bytes += static_cast<int64_t>(d.FootprintBytes());
  return bytes;
}

// Runs a child subtree as a batch producer: the vec path when the child is
// marked, otherwise the row engine with rows packed into batches (the
// vec-over-row fallback, counted in vec.fallbacks).
Status ExecuteChildVec(const PlanNode& child, ExecContext& ctx, const BatchSink& sink) {
  if (child.vectorize && VecEngineSupports(child.kind)) {
    return ExecuteNodeVec(child, ctx, sink);
  }
  if (ctx.cluster != nullptr) ctx.cluster->metrics().counter("vec.fallbacks")->Add(1);
  ColumnBatch batch;
  bool shaped = false;
  Status s = ExecuteNode(child, ctx, [&](Row&& row) -> Status {
    if (!shaped) {
      batch.Reset(row.size());
      shaped = true;
    }
    batch.AppendRow(std::move(row));
    if (batch.rows >= ColumnBatch::kDefaultCapacity) {
      size_t ncols = batch.NumColumns();
      ColumnBatch full = std::move(batch);
      batch = ColumnBatch();
      batch.Reset(ncols);
      GPHTAP_RETURN_IF_ERROR(sink(std::move(full)));
    }
    return Status::OK();
  });
  GPHTAP_RETURN_IF_ERROR(s);
  if (batch.rows > 0) return sink(std::move(batch));
  return Status::OK();
}

// Row-scan fallback for a marked scan whose table turns out not to be an AO
// column store (packs filtered rows into batches). Inlined here rather than
// bouncing through ExecuteNode, which would re-enter the vec dispatch.
Status ExecSeqScanVecFallback(const PlanNode& node, ExecContext& ctx, Table* table,
                              const BatchSink& sink) {
  if (ctx.cluster != nullptr) ctx.cluster->metrics().counter("vec.fallbacks")->Add(1);
  VisibilityContext vis = ctx.Vis();
  ColumnBatch batch;
  bool shaped = false;
  Status inner = Status::OK();
  auto cb = [&](TupleId, const Row& row) -> bool {
    Status t = ctx.Tick();
    if (!t.ok()) {
      inner = t;
      return false;
    }
    if (node.filter) {
      auto pass = EvalPredicate(*node.filter, row);
      if (!pass.ok()) {
        inner = pass.status();
        return false;
      }
      if (!*pass) return true;
    }
    if (!shaped) {
      batch.Reset(row.size());
      shaped = true;
    }
    batch.AppendRow(row);
    if (batch.rows >= ColumnBatch::kDefaultCapacity) {
      size_t ncols = batch.NumColumns();
      ColumnBatch full = std::move(batch);
      batch = ColumnBatch();
      batch.Reset(ncols);
      Status sk = sink(std::move(full));
      if (!sk.ok()) {
        inner = sk;
        return false;
      }
    }
    return true;
  };
  Status scan = node.scan_cols.empty() ? table->Scan(vis, cb)
                                       : table->ScanColumns(vis, node.scan_cols, cb);
  if (!inner.ok()) return inner;
  GPHTAP_RETURN_IF_ERROR(scan);
  if (batch.rows > 0) return sink(std::move(batch));
  return Status::OK();
}

Status ExecSeqScanVec(const PlanNode& node, ExecContext& ctx, const BatchSink& sink) {
  Table* table = nullptr;
  GPHTAP_RETURN_IF_ERROR(TableForNode(ctx, node.table, &table));
  GPHTAP_RETURN_IF_ERROR(AcquireScanLock(ctx, node.table));
  auto* aoc = dynamic_cast<AoColumnTable*>(table);
  if (aoc == nullptr) return ExecSeqScanVecFallback(node, ctx, table, sink);

  std::vector<int> cols = node.scan_cols;
  if (cols.empty()) {
    cols.resize(table->schema().num_columns());
    for (size_t i = 0; i < cols.size(); ++i) cols[i] = static_cast<int>(i);
  }
  VisibilityContext vis = ctx.Vis();
  Status inner = Status::OK();
  Status scan = aoc->ScanBatches(vis, cols, [&](ColumnBatch&& batch) -> bool {
    // One Tick per batch amortizes cancellation checks and simulated-CPU
    // charging over the whole group.
    Status t = ctx.Tick(static_cast<int>(batch.rows));
    if (!t.ok()) {
      inner = t;
      return false;
    }
    if (node.filter) {
      Status f = VecFilterBatch(*node.filter, &batch);
      if (!f.ok()) {
        inner = f;
        return false;
      }
    }
    if (batch.ActiveRows() == 0) return true;
    Status s = sink(std::move(batch));
    if (!s.ok()) {
      inner = s;
      return false;
    }
    return true;
  });
  if (!inner.ok()) return inner;
  return scan;
}

Status ExecHashAggVec(const PlanNode& node, ExecContext& ctx, const BatchSink& sink) {
  struct Group {
    Row key;
    std::vector<AggState> states;
  };
  std::map<std::string, Group> groups;
  Status mem_status = Status::OK();

  auto new_group = [&](Row key) -> Group {
    Group g;
    g.key = std::move(key);
    g.states.resize(node.aggs.size());
    // Memory grows with the number of groups, not the number of input rows
    // (same accounting as the row engine's hash agg).
    if (ctx.mem != nullptr && mem_status.ok()) {
      mem_status = ctx.mem->Reserve(VecRowFootprint(g.key) +
                                    64 * static_cast<int64_t>(node.aggs.size()));
    }
    return g;
  };

  Status s = ExecuteChildVec(*node.children[0], ctx, [&](ColumnBatch&& b) -> Status {
    GPHTAP_RETURN_IF_ERROR(ctx.Tick(static_cast<int>(b.ActiveRows())));
    // Evaluate each aggregate's argument once over the whole batch.
    std::vector<std::vector<Datum>> argvals(node.aggs.size());
    for (size_t a = 0; a < node.aggs.size(); ++a) {
      if (node.aggs[a].arg != nullptr) {
        GPHTAP_RETURN_IF_ERROR(VecEval(*node.aggs[a].arg, b, b.sel, &argvals[a]));
      }
    }

    if (node.group_cols.empty()) {
      // Global aggregation: one group, column-at-a-time accumulation.
      auto it = groups.find("");
      if (it == groups.end()) {
        it = groups.emplace("", new_group({})).first;
        GPHTAP_RETURN_IF_ERROR(mem_status);
      }
      for (size_t a = 0; a < node.aggs.size(); ++a) {
        VecAggUpdate(node.aggs[a].fn, argvals[a], b.sel, &it->second.states[a]);
      }
      return Status::OK();
    }

    std::string key;
    for (int32_t r : b.sel) {
      key.clear();
      for (int c : node.group_cols) {
        AppendGroupKeyPart(b.columns[static_cast<size_t>(c)][static_cast<size_t>(r)],
                           &key);
      }
      auto it = groups.find(key);
      if (it == groups.end()) {
        Row gkey;
        gkey.reserve(node.group_cols.size());
        for (int c : node.group_cols) {
          gkey.push_back(b.columns[static_cast<size_t>(c)][static_cast<size_t>(r)]);
        }
        it = groups.emplace(key, new_group(std::move(gkey))).first;
        GPHTAP_RETURN_IF_ERROR(mem_status);
      }
      for (size_t a = 0; a < node.aggs.size(); ++a) {
        AggState& st = it->second.states[a];
        if (node.aggs[a].fn == AggFunc::kCountStar) {
          ++st.count;
        } else {
          AggUpdateValue(node.aggs[a].fn, &st, argvals[a][static_cast<size_t>(r)]);
        }
      }
    }
    return Status::OK();
  });
  GPHTAP_RETURN_IF_ERROR(s);

  // Global aggregates with zero input rows still produce one output group.
  if (groups.empty() && node.group_cols.empty()) {
    Group g;
    g.states.resize(node.aggs.size());
    groups.emplace("", std::move(g));
  }

  ColumnBatch out;
  bool shaped = false;
  for (auto& [key, g] : groups) {
    Row row = g.key;
    for (size_t a = 0; a < node.aggs.size(); ++a) {
      if (node.agg_phase == AggPhase::kPartial) {
        AggEmitPartial(node.aggs[a], g.states[a], &row);
      } else {
        AggEmitFinal(node.aggs[a], g.states[a], &row);
      }
    }
    if (!shaped) {
      out.Reset(row.size());
      shaped = true;
    }
    out.AppendRow(std::move(row));
    if (out.rows >= ColumnBatch::kDefaultCapacity) {
      size_t ncols = out.NumColumns();
      ColumnBatch full = std::move(out);
      out = ColumnBatch();
      out.Reset(ncols);
      Status es = sink(std::move(full));
      if (es.code() == StatusCode::kStopIteration) return es;
      GPHTAP_RETURN_IF_ERROR(es);
    }
  }
  if (out.rows > 0) {
    Status es = sink(std::move(out));
    if (es.code() == StatusCode::kStopIteration) return es;
    GPHTAP_RETURN_IF_ERROR(es);
  }
  return Status::OK();
}

Status ExecMotionRecvVec(const PlanNode& node, ExecContext& ctx, const BatchSink& sink) {
  auto it = ctx.exchanges->find(node.motion_id);
  if (it == ctx.exchanges->end()) {
    return Status::Internal("no exchange for motion " + std::to_string(node.motion_id));
  }
  MotionExchange& ex = *it->second;
  while (auto batch = ex.RecvBatch(ctx.receiver_index)) {
    GPHTAP_RETURN_IF_ERROR(ctx.Tick(static_cast<int>(batch->ActiveRows())));
    Status s = sink(std::move(*batch));
    if (s.code() == StatusCode::kStopIteration) return s;
    GPHTAP_RETURN_IF_ERROR(s);
  }
  if (ex.aborted() && !(ctx.owner && ctx.owner->cancelled())) {
    return Status::Aborted("motion exchange aborted");
  }
  if (ctx.owner && ctx.owner->cancelled()) return ctx.owner->cancel_reason();
  return Status::OK();
}

Status ExecuteNodeVecImpl(const PlanNode& node, ExecContext& ctx, const BatchSink& sink) {
  switch (node.kind) {
    case PlanKind::kSeqScan:
      return ExecSeqScanVec(node, ctx, sink);
    case PlanKind::kFilter:
      return ExecuteChildVec(*node.children[0], ctx, [&](ColumnBatch&& b) -> Status {
        GPHTAP_RETURN_IF_ERROR(VecFilterBatch(*node.filter, &b));
        if (b.ActiveRows() == 0) return Status::OK();
        return sink(std::move(b));
      });
    case PlanKind::kProject:
      return ExecuteChildVec(*node.children[0], ctx, [&](ColumnBatch&& b) -> Status {
        ColumnBatch out;
        GPHTAP_RETURN_IF_ERROR(VecProjectBatch(node.exprs, b, &out));
        if (out.ActiveRows() == 0) return Status::OK();
        return sink(std::move(out));
      });
    case PlanKind::kHashAgg:
      return ExecHashAggVec(node, ctx, sink);
    case PlanKind::kMotion:
      return ExecMotionRecvVec(node, ctx, sink);
    default:
      return Status::Internal("plan node kind not vectorized");
  }
}

}  // namespace

Status ExecuteNodeVec(const PlanNode& node, ExecContext& ctx, const BatchSink& sink) {
  int64_t rows = 0, batches = 0;
  auto counting = [&](ColumnBatch&& b) -> Status {
    ++batches;
    rows += static_cast<int64_t>(b.ActiveRows());
    return sink(std::move(b));
  };
  Stopwatch sw;
  Status s = ExecuteNodeVecImpl(node, ctx, counting);
  if (ctx.op_stats != nullptr && node.node_id >= 0) {
    ctx.op_stats->Record(node.node_id, rows, sw.ElapsedMicros(), batches);
  }
  if (ctx.cluster != nullptr) {
    MetricsRegistry& m = ctx.cluster->metrics();
    m.counter("vec.batches")->Add(static_cast<uint64_t>(batches));
    m.counter("vec.rows")->Add(static_cast<uint64_t>(rows));
  }
  return s;
}

}  // namespace gphtap
