// Vectorized kernels: predicate evaluation, projection, redistribution
// partitioning, and aggregate accumulation over whole ColumnBatches. Scalar
// semantics (three-valued logic, NULL propagation, short-circuit AND/OR error
// behaviour, arithmetic errors) are shared with the row engine via
// plan/expr.h's EvalBinaryOp/DatumTruth, so both engines agree bit-for-bit.
#ifndef GPHTAP_VEC_VEC_KERNELS_H_
#define GPHTAP_VEC_VEC_KERNELS_H_

#include <vector>

#include "exec/agg_ops.h"
#include "plan/expr.h"
#include "vec/column_batch.h"

namespace gphtap {

/// Evaluates `e` over `batch` at the row positions in `pos`. `out` is dense by
/// physical row index (resized to batch.rows); only entries at `pos` are
/// written. AND/OR evaluate the right operand only at positions the left
/// operand did not decide — matching the row engine's short circuit, including
/// its suppression of errors in the unevaluated operand.
Status VecEval(const Expr& e, const ColumnBatch& batch,
               const std::vector<int32_t>& pos, std::vector<Datum>* out);

/// Applies a WHERE predicate to the batch, shrinking its selection vector in
/// place (NULL and false both reject, as in EvalPredicate).
Status VecFilterBatch(const Expr& filter, ColumnBatch* batch);

/// Projects `exprs` over `in`'s live rows into a dense, fully-selected `out`.
Status VecProjectBatch(const std::vector<ExprPtr>& exprs, const ColumnBatch& in,
                       ColumnBatch* out);

/// Splits `in`'s live rows into `num_targets` dense batches routed by
/// HashRowKey(row, hash_cols) % num_targets — identical routing to the row
/// path's redistribute motion.
Status VecPartitionBatch(const ColumnBatch& in, const std::vector<int>& hash_cols,
                         int num_targets, std::vector<ColumnBatch>* out);

/// Folds a pre-evaluated argument column (dense by row index) into an
/// aggregate state for every position in `pos`. Tight inner loop for the
/// int-sum hot path; falls back to AggUpdateValue otherwise.
void VecAggUpdate(AggFunc fn, const std::vector<Datum>& vals,
                  const std::vector<int32_t>& pos, AggState* s);

}  // namespace gphtap

#endif  // GPHTAP_VEC_VEC_KERNELS_H_
