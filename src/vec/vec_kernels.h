// Vectorized kernels: predicate evaluation, projection, redistribution
// partitioning, and aggregate accumulation over whole ColumnBatches. The hot
// paths are type-specialized loops over unboxed int64/double payloads,
// dispatched once per batch; columns holding strings or mixed types fall back
// to the boxed Datum path. Scalar semantics (three-valued logic, NULL
// propagation, short-circuit AND/OR error behaviour, arithmetic errors) are
// shared with the row engine via plan/expr.h's EvalBinaryOp/DatumTruth, so
// both engines agree bit-for-bit.
#ifndef GPHTAP_VEC_VEC_KERNELS_H_
#define GPHTAP_VEC_VEC_KERNELS_H_

#include <vector>

#include "exec/agg_ops.h"
#include "plan/expr.h"
#include "vec/column_batch.h"

namespace gphtap {

/// Evaluates `e` over `batch` at the row positions in `pos`. `out` is RESET on
/// every call to exactly batch.rows slots (zeroed, non-NULL) — it never
/// carries values from a previous, larger batch; only entries at `pos` are
/// meaningful. AND/OR evaluate the right operand only at positions the left
/// operand did not decide — matching the row engine's short circuit, including
/// its suppression of errors in the unevaluated operand.
Status VecEval(const Expr& e, const ColumnBatch& batch,
               const std::vector<int32_t>& pos, ColumnVector* out);

/// SQL truth value of slot `r` (-1 NULL, 0 false, 1 true), matching
/// DatumTruth.
int VecTruthAt(const ColumnVector& v, size_t r);

/// Applies a WHERE predicate to the batch, shrinking its selection vector in
/// place (NULL and false both reject, as in EvalPredicate).
Status VecFilterBatch(const Expr& filter, ColumnBatch* batch);

/// Projects `exprs` over `in`'s live rows into a dense, fully-selected `out`.
Status VecProjectBatch(const std::vector<ExprPtr>& exprs, const ColumnBatch& in,
                       ColumnBatch* out);

/// Splits `in`'s live rows into `num_targets` dense batches routed by the
/// distribution-key hash — identical routing to the row path's redistribute
/// motion (HashRowKey), but hashing the key columns straight out of the
/// column vectors and appending by column copy, with no Row materialization.
Status VecPartitionBatch(const ColumnBatch& in, const std::vector<int>& hash_cols,
                         int num_targets, std::vector<ColumnBatch>* out);

/// Hash of the key columns at physical row `r`, equal to
/// HashRowKey(in.MaterializeRow(r), hash_cols) without building the Row.
uint64_t VecHashRowKey(const ColumnBatch& in, const std::vector<int>& hash_cols,
                       int32_t r);

/// Folds a pre-evaluated argument column (dense by row index) into an
/// aggregate state for every position in `pos`. Tight unboxed inner loops for
/// int/double sum/count; falls back to AggUpdateValue otherwise.
void VecAggUpdate(AggFunc fn, const ColumnVector& vals,
                  const std::vector<int32_t>& pos, AggState* s);

}  // namespace gphtap

#endif  // GPHTAP_VEC_VEC_KERNELS_H_
