// Vectorized (batch-at-a-time) plan execution, parallel to the row engine in
// exec/executor.h. The planner marks qualifying subtrees (scan → filter →
// project → partial/single agg over AO column tables, plus the motions above
// them) with PlanNode::vectorize; those subtrees run here, everything else
// stays on the row path. The two engines meet at two boundaries:
//   - row parent over vec child: ExecuteNode explodes batches into rows;
//   - vec parent over row child: ExecuteChildVec packs rows into batches
//     (counted as vec.fallbacks).
#ifndef GPHTAP_VEC_VEC_EXECUTOR_H_
#define GPHTAP_VEC_VEC_EXECUTOR_H_

#include <functional>

#include "exec/exec_context.h"
#include "plan/plan.h"
#include "vec/column_batch.h"

namespace gphtap {

/// Receives produced batches. Returning kStopIteration stops production early
/// (LIMIT); any other non-OK status aborts the query.
using BatchSink = std::function<Status(ColumnBatch&&)>;

/// True if the batch engine implements this node kind. A node only runs
/// vectorized when BOTH its `vectorize` mark and this predicate hold.
bool VecEngineSupports(PlanKind kind);

/// Executes one vectorize-marked plan subtree, pushing batches into `sink`.
/// Records per-operator rows/batches into ctx.op_stats and bumps the cluster
/// `vec.*` metrics.
Status ExecuteNodeVec(const PlanNode& node, ExecContext& ctx, const BatchSink& sink);

}  // namespace gphtap

#endif  // GPHTAP_VEC_VEC_EXECUTOR_H_
