// Column-oriented tuple batch: the unit of work of the vectorized engine and
// the payload of batched motion transport. A batch holds up to kDefaultCapacity
// tuples as parallel Datum columns plus a selection vector of the row indexes
// that are still "live" (visible and passing all filters applied so far).
// Kernels (vec_kernels.h) iterate the selection vector in tight loops instead
// of pushing one Row at a time through virtual sinks.
#ifndef GPHTAP_VEC_COLUMN_BATCH_H_
#define GPHTAP_VEC_COLUMN_BATCH_H_

#include <cstdint>
#include <vector>

#include "catalog/datum.h"

namespace gphtap {

struct ColumnBatch {
  /// Matches AoColumnTable::kRowGroupSize so one sealed row group decompresses
  /// into exactly one batch.
  static constexpr size_t kDefaultCapacity = 1024;

  /// Parallel columns; every column has exactly `rows` entries.
  std::vector<std::vector<Datum>> columns;
  /// Indexes (ascending) of the live rows. Kernels only touch these.
  std::vector<int32_t> sel;
  /// Physical rows present in each column (live + filtered-out).
  size_t rows = 0;

  size_t NumColumns() const { return columns.size(); }
  size_t ActiveRows() const { return sel.size(); }

  void Clear() {
    columns.clear();
    sel.clear();
    rows = 0;
  }

  /// Shapes the batch to `ncols` empty columns with `capacity` reserved; used
  /// when building a batch row by row (AppendRow).
  void Reset(size_t ncols, size_t capacity = kDefaultCapacity);

  /// Makes the selection vector the identity [0, rows).
  void SelectAll();

  /// Appends one row (must have NumColumns() datums) and selects it.
  void AppendRow(const Row& row);
  void AppendRow(Row&& row);

  /// Materializes physical row `r` as a Row (all columns, in order).
  Row MaterializeRow(int32_t r) const;

  /// Appends every live row to `out` as materialized Rows.
  void AppendTo(std::vector<Row>* out) const;

  /// Builds a fully-selected batch from materialized rows.
  static ColumnBatch FromRows(const std::vector<Row>& rows);

  /// Drops filtered-out rows: columns become dense over the live rows and the
  /// selection vector resets to the identity. Call before shipping a sparse
  /// batch over a motion so dead rows don't ride the wire.
  void Compact();

  /// Approximate memory footprint of the live rows (vmem / SimNet accounting),
  /// mirroring the row path's sizeof(Row) + datum footprints per tuple.
  int64_t FootprintBytes() const;
};

}  // namespace gphtap

#endif  // GPHTAP_VEC_COLUMN_BATCH_H_
