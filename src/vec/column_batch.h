// Column-oriented tuple batch: the unit of work of the vectorized engine and
// the payload of batched motion transport. A batch holds up to kDefaultCapacity
// tuples as parallel typed column vectors plus a selection vector of the row
// indexes that are still "live" (visible and passing all filters applied so
// far). Kernels (vec_kernels.h) iterate the selection vector over contiguous
// int64/double payloads in tight loops instead of pushing one boxed Row at a
// time through virtual sinks — the MonetDB/X100 layout.
#ifndef GPHTAP_VEC_COLUMN_BATCH_H_
#define GPHTAP_VEC_COLUMN_BATCH_H_

#include <cstdint>
#include <vector>

#include "catalog/datum.h"

namespace gphtap {

/// One column of a batch. Int64 and double columns store their payload
/// unboxed (contiguous machine words; NULL slots hold 0 and are flagged in the
/// lazy null mask). Strings and mixed-type columns degrade to a boxed Datum
/// payload, so every Datum a row could hold is still representable exactly.
///
/// Invariants: exactly one payload vector (selected by `tag`) is in use and
/// the other two are empty; `nulls` is either empty (no NULLs) or has one flag
/// per row. A Datum-tagged column never uses the mask — NULL lives in the
/// datum itself.
struct ColumnVector {
  enum class Tag : uint8_t { kInt64, kDouble, kDatum };

  Tag tag = Tag::kInt64;
  std::vector<int64_t> ints;   // tag == kInt64 payload
  std::vector<double> dbls;    // tag == kDouble payload
  std::vector<Datum> datums;   // tag == kDatum payload (strings / mixed)
  std::vector<uint8_t> nulls;  // empty = no NULLs; else 1 flag per row

  size_t size() const {
    switch (tag) {
      case Tag::kInt64:
        return ints.size();
      case Tag::kDouble:
        return dbls.size();
      case Tag::kDatum:
        return datums.size();
    }
    return 0;
  }

  bool IsNull(size_t r) const {
    if (tag == Tag::kDatum) return datums[r].is_null();
    return !nulls.empty() && nulls[r] != 0;
  }

  void Clear() {
    tag = Tag::kInt64;
    ints.clear();
    dbls.clear();
    datums.clear();
    nulls.clear();
  }

  void Reserve(size_t n) {
    switch (tag) {
      case Tag::kInt64:
        ints.reserve(n);
        break;
      case Tag::kDouble:
        dbls.reserve(n);
        break;
      case Tag::kDatum:
        datums.reserve(n);
        break;
    }
  }

  /// Reshapes to `n` zeroed (non-NULL) slots of the given tag — the kernel
  /// output contract: sized exactly, never carrying values from a prior batch.
  void ResetTyped(Tag t, size_t n);

  /// Materializes the null mask (all clear) if it is still lazily empty.
  void EnsureNulls() {
    if (nulls.empty()) nulls.assign(size(), 0);
  }

  void SetNull(size_t r) {
    EnsureNulls();
    nulls[r] = 1;
  }

  /// Takes ownership of a decompressed column, laying it out unboxed when the
  /// declared type allows (NULLs keep the mask; any off-type datum falls the
  /// whole column back to boxed storage).
  void AdoptDatums(std::vector<Datum>&& vals, TypeId type);

  /// Converts the typed payload to boxed datums (exact value preserving).
  void Demote();

  /// Materializes slot `r` as a Datum (allocation-free for typed columns).
  Datum GetDatum(size_t r) const {
    if (tag == Tag::kDatum) return datums[r];
    if (!nulls.empty() && nulls[r]) return Datum::Null();
    return tag == Tag::kInt64 ? Datum(ints[r]) : Datum(dbls[r]);
  }

  /// Appends one datum. An empty column adopts the datum's type; a typed
  /// column demotes itself on the first off-type value.
  void Append(const Datum& d);
  void Append(Datum&& d);

  /// Appends slot `r` of `src` — the column-copy gather used by Compact,
  /// partitioning, and join output assembly. An empty destination adopts the
  /// source tag so the payload stays unboxed.
  void AppendFrom(const ColumnVector& src, size_t r);

  /// Hash of slot `r`, identical to GetDatum(r).Hash() (and therefore to the
  /// row path's distribution hashing) but allocation-free for typed columns.
  uint64_t HashAt(size_t r) const {
    return tag == Tag::kDatum ? datums[r].Hash() : GetDatum(r).Hash();
  }

  /// Approximate per-slot footprint, mirroring Datum::FootprintBytes().
  size_t FootprintAt(size_t r) const {
    return tag == Tag::kDatum ? datums[r].FootprintBytes() : 16;
  }
};

struct ColumnBatch {
  /// Matches AoColumnTable::kRowGroupSize so one sealed row group decompresses
  /// into exactly one batch.
  static constexpr size_t kDefaultCapacity = 1024;

  /// Parallel columns; every column has exactly `rows` entries.
  std::vector<ColumnVector> columns;
  /// Indexes (ascending) of the live rows. Kernels only touch these.
  std::vector<int32_t> sel;
  /// Physical rows present in each column (live + filtered-out).
  size_t rows = 0;

  size_t NumColumns() const { return columns.size(); }
  size_t ActiveRows() const { return sel.size(); }

  void Clear() {
    columns.clear();
    sel.clear();
    rows = 0;
  }

  /// Shapes the batch to `ncols` empty columns with `capacity` reserved; used
  /// when building a batch row by row (AppendRow).
  void Reset(size_t ncols, size_t capacity = kDefaultCapacity);

  /// Makes the selection vector the identity [0, rows).
  void SelectAll();

  /// Appends one row (must have NumColumns() datums) and selects it.
  void AppendRow(const Row& row);
  void AppendRow(Row&& row);

  /// Appends live row `r` of `src` by column copy (no Row materialization)
  /// and selects it. Columns must be layout-compatible.
  void AppendSelectedFrom(const ColumnBatch& src, int32_t r);

  /// Materializes physical row `r` as a Row (all columns, in order).
  Row MaterializeRow(int32_t r) const;

  /// Appends every live row to `out` as materialized Rows.
  void AppendTo(std::vector<Row>* out) const;

  /// Builds a fully-selected batch from materialized rows.
  static ColumnBatch FromRows(const std::vector<Row>& rows);

  /// Drops filtered-out rows: columns become dense over the live rows and the
  /// selection vector resets to the identity. Call before shipping a sparse
  /// batch over a motion so dead rows don't ride the wire.
  void Compact();

  /// Approximate memory footprint of the live rows (vmem / SimNet accounting),
  /// mirroring the row path's sizeof(Row) + datum footprints per tuple.
  int64_t FootprintBytes() const;
};

}  // namespace gphtap

#endif  // GPHTAP_VEC_COLUMN_BATCH_H_
