// The million-session front door: thread-decoupled logical sessions
// multiplexed over a bounded worker pool, with graceful overload degradation.
//
// A direct Cluster::Connect() session is passive state driven by whatever
// thread calls into it — so a workload of N concurrent clients needs N OS
// threads, and a connection storm exhausts the machine before the resource
// group admission queue or the circuit breaker (PR 5) ever see the load. The
// front door breaks that 1:1 mapping:
//
//   * Connect() returns a lightweight FrontendSession handle. Accept is
//     bounded (max_sessions): beyond it, connects are shed with a retryable
//     kUnavailable carrying a retry-after hint — never blocked, never a new
//     thread.
//   * Submit() enqueues one statement as a work item and returns immediately;
//     a fixed pool of workers dequeues items and attaches/detaches the
//     underlying Session state (transaction, prepared statements, wait
//     context, resgroup slot) per statement. A logical session therefore
//     holds no thread while idle or queued, so tens of thousands of them
//     coexist over a handful of workers.
//   * Dispatch is two-level: statements of an open transaction go to a
//     priority queue that is drained first and never shed (they must run so
//     the transaction can release its locks), while transaction-opening
//     statements are bounded globally (max_dispatch_queue) and per resource
//     group (ResourceGroup::DispatchBound) — backpressure upstream of the
//     PR 5 admission queue and circuit breaker, not instead of them.
//   * Inline continuation fast path: when a completion callback running on a
//     pool worker submits the same session's next continuation, the work is
//     handed straight back to that worker through a thread-local slot — no
//     queue round-trip, no condvar wakeup. A streak cap forces a round
//     through the queue so one chatty transaction cannot monopolize a
//     worker; transaction-opening statements always take the queued path so
//     admission control sees every new transaction.
//   * A sweeper enforces idle-session and login timeouts so abandoned
//     handles cannot pin registry entries forever.
//   * Fault points frontend.worker_stall (delay) and frontend.accept_drop
//     let chaos stall the pool and drop connects mid-storm.
//
// Memory model: a logical session runs at most one statement at a time
// (Submit while one is in flight is rejected), and every handoff of the
// Session state between workers goes through the front door mutex, which
// gives worker B running statement N+1 a happens-before edge on worker A
// finishing statement N. An inline continuation runs on the same worker
// thread that ran statement N, so program order covers it (Submit still
// takes the mutex for the busy/group bookkeeping).
//
// While queued, a session is visible in gp_stat_activity as state `queued`
// with wait_event frontend:dispatch and the dispatch-queue depth it joined
// behind; the wait is accumulated into gp_wait_events on dequeue.
#ifndef GPHTAP_FRONTEND_FRONTEND_H_
#define GPHTAP_FRONTEND_FRONTEND_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/session.h"
#include "common/status.h"
#include "frontend/frontend_options.h"

namespace gphtap {

class FrontDoor;

/// Completion of one submitted statement. Runs on a pool worker thread after
/// the session is detached, so it may immediately Submit the next statement
/// (callback-chained state machines are the intended client shape); it must
/// not block for long — a blocked callback is a blocked pool worker.
using StatementCallback = std::function<void(StatusOr<QueryResult>)>;

/// A logical session: the client-side handle the front door hands out. All
/// mutable state is guarded by the owning FrontDoor's mutex; the embedded
/// Session is touched only by the worker executing this session's current
/// statement (or by teardown once the session can no longer become busy).
class FrontendSession : public std::enable_shared_from_this<FrontendSession> {
 public:
  ~FrontendSession();

  FrontendSession(const FrontendSession&) = delete;
  FrontendSession& operator=(const FrontendSession&) = delete;

  /// Enqueues one statement. Returns non-OK immediately — without invoking
  /// `done` — when the statement cannot be accepted: the session is closed
  /// (retryable kUnavailable: reconnect), a statement is already in flight
  /// (kInvalidArgument: no pipelining), or the dispatch queue / this
  /// session's resource group is saturated (retryable kUnavailable with a
  /// retry-after hint). On OK, `done` is invoked exactly once.
  Status Submit(std::string sql, StatementCallback done);

  /// Synchronous facade over Submit for tests and simple clients: blocks the
  /// calling thread (not a pool worker) until the statement completes.
  /// Submit-level rejections (shed, closed, busy) come back as the error.
  /// Never takes the inline fast path — the statement always goes through
  /// the queue, so calling this from a completion callback cannot deadlock
  /// on the worker's own slot (it still blocks a pool worker, so don't).
  StatusOr<QueryResult> Execute(const std::string& sql);

  /// Closes the logical session: rolls back any open transaction, destroys
  /// the underlying Session (removing it from gp_stat_activity) and rejects
  /// every later Submit. Idempotent; safe from callbacks (deferred until the
  /// in-flight statement, if any, completes).
  void Close();

  /// gp_stat_activity session id of the underlying Session.
  int64_t id() const { return id_; }
  /// Resource group the session's role mapped to at connect.
  const std::string& group() const { return group_; }
  bool closed() const;

 private:
  friend class FrontDoor;
  FrontendSession(FrontDoor* door, std::unique_ptr<Session> session);

  FrontDoor* const door_;
  const int64_t id_;
  const std::string group_;
  std::shared_ptr<SessionInfo> info_;  // outlives session_ for late readers

  // --- Guarded by door_->mu_ ---
  std::unique_ptr<Session> session_;
  bool busy_ = false;        // a statement is queued or executing
  bool closed_ = false;
  bool ever_ran_ = false;    // login-timeout: has any statement completed
  int64_t connected_us_ = 0;
  int64_t last_active_us_ = 0;
};

/// The front door itself; Cluster owns one when options.frontend.enabled.
class FrontDoor {
 public:
  FrontDoor(Cluster* cluster, const FrontDoorOptions& options);
  ~FrontDoor();

  FrontDoor(const FrontDoor&) = delete;
  FrontDoor& operator=(const FrontDoor&) = delete;

  /// Accepts a logical session for `role`, or sheds: over max_sessions (or
  /// with frontend.accept_drop armed) this returns a retryable kUnavailable
  /// with a retry-after hint instead of blocking — graceful degradation is
  /// the contract. Never creates a thread.
  StatusOr<std::shared_ptr<FrontendSession>> Connect(const std::string& role = "");

  /// Stops workers and the sweeper, failing still-queued statements with
  /// kUnavailable and closing every live session. Called by ~Cluster before
  /// any other subsystem comes down; idempotent.
  void Stop();

  const FrontDoorOptions& options() const { return options_; }

  /// Point-in-time front-door state (bench + tests; counters also live in
  /// gp_metrics under frontend.*).
  struct Stats {
    uint64_t accepted = 0;         // connects admitted
    uint64_t shed_connects = 0;    // connects shed (capacity or fault point)
    uint64_t queued = 0;           // statements enqueued
    uint64_t executed = 0;         // statements completed by workers
    uint64_t inline_dispatched = 0;  // continuations run without queueing
    uint64_t shed_statements = 0;  // submits shed (dispatch/group bounds)
    uint64_t idle_closed = 0;      // sessions reaped by idle/login timeout
    uint64_t pool_busy = 0;        // dequeues that saturated the pool
    int64_t busy_us = 0;           // total worker time spent executing
    int live_sessions = 0;
    int queue_depth = 0;           // both levels, now
    int busy_workers = 0;
  };
  Stats stats() const;

  /// The retry-after hint currently attached to sheds: the base hint scaled
  /// by dispatch-queue pressure, so storms back off harder as load grows.
  int64_t RetryAfterHintUs() const;

 private:
  friend class FrontendSession;

  struct Work {
    std::shared_ptr<FrontendSession> fs;
    std::string sql;
    StatementCallback done;
  };

  /// Per-worker inline-continuation slot: points at the owning worker's stack
  /// while its WorkerLoop runs, armed only for the span of a completion
  /// callback. Touched exclusively by that worker thread (SubmitInternal
  /// reaches it only when called *on* the worker, inside the callback).
  struct InlineSlot {
    FrontDoor* door = nullptr;
    bool armed = false;  // true only while the worker runs a completion callback
    int streak = 0;      // consecutive inline statements this worker has run
    bool work_set = false;
    Work work;
  };
  static thread_local InlineSlot* tls_inline_;

  Status SubmitInternal(const std::shared_ptr<FrontendSession>& fs, std::string sql,
                        StatementCallback done, bool allow_inline);
  void CloseInternal(const std::shared_ptr<FrontendSession>& fs);
  void WorkerLoop();
  void SweepLoop();
  /// Detaches fs's Session for destruction. Requires mu_ held, fs not busy.
  std::unique_ptr<Session> FinalizeLocked(FrontendSession* fs);
  int64_t RetryAfterHintLocked() const;

  Cluster* const cluster_;
  const FrontDoorOptions options_;

  // frontend.* counters (resolved once from the cluster MetricsRegistry).
  Counter* m_accepted_;
  Counter* m_queued_;
  Counter* m_shed_;
  Counter* m_idle_closed_;
  Counter* m_pool_busy_;
  Counter* m_executed_;
  Counter* m_inline_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable sweep_cv_;
  bool stopping_ = false;
  // Two-level dispatch: continuations of open transactions drain first and
  // never shed; transaction-opening statements are the bounded level.
  std::deque<Work> txn_queue_;
  std::deque<Work> open_queue_;
  // Queued + executing statements per resource group (backpressure).
  std::unordered_map<std::string, int> group_inflight_;
  // Cached per-group dispatch bounds (group configs are immutable once made).
  std::unordered_map<std::string, int> group_bound_;
  // Every live logical session, by session id (sweeper + shutdown walk it).
  std::unordered_map<int64_t, std::shared_ptr<FrontendSession>> live_;
  int busy_workers_ = 0;

  // Monotonic accumulators (mu_ for the ints; counters are atomics).
  uint64_t shed_connects_ = 0;
  uint64_t shed_statements_ = 0;
  uint64_t idle_closed_ = 0;
  std::atomic<int64_t> busy_us_{0};

  std::vector<std::thread> workers_;
  std::thread sweeper_;
};

}  // namespace gphtap

#endif  // GPHTAP_FRONTEND_FRONTEND_H_
