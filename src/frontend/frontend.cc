#include "frontend/frontend.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "cluster/cluster.h"
#include "common/clock.h"
#include "common/fault_injector.h"

namespace gphtap {
namespace {

// Fairness bound on the inline continuation fast path: after this many
// consecutive statements handed straight back to one worker, the next one
// takes the queue so other sessions get the worker. TPC-B-shaped chains end
// well before this (the COMMIT's successor is a transaction opener, which
// always queues); the cap only matters for pathologically long transactions.
constexpr int kMaxInlineStreak = 32;

}  // namespace

thread_local FrontDoor::InlineSlot* FrontDoor::tls_inline_ = nullptr;

// ---------------------------------------------------------------------------
// FrontendSession
// ---------------------------------------------------------------------------

FrontendSession::FrontendSession(FrontDoor* door, std::unique_ptr<Session> session)
    : door_(door),
      id_(session->session_info()->id),
      group_(session->session_info()->group()),
      info_(session->session_info()),
      session_(std::move(session)) {}

// The Session (if still attached) dies here: by the time the last shared_ptr
// drops, the handle is either finalized (session_ already null) or was never
// closed — then the Session dtor rolls back and unregisters as usual. The
// front door arranges that this never runs under its mutex.
FrontendSession::~FrontendSession() = default;

Status FrontendSession::Submit(std::string sql, StatementCallback done) {
  return door_->SubmitInternal(shared_from_this(), std::move(sql), std::move(done),
                               /*allow_inline=*/true);
}

StatusOr<QueryResult> FrontendSession::Execute(const std::string& sql) {
  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<StatusOr<QueryResult>> result;
  };
  auto sync = std::make_shared<Sync>();
  // allow_inline=false: a blocking facade must never stow work in its own
  // worker's slot — the wait below would then starve the very statement it
  // waits for.
  Status submitted = door_->SubmitInternal(
      shared_from_this(), sql,
      [sync](StatusOr<QueryResult> r) {
        std::lock_guard<std::mutex> g(sync->mu);
        sync->result.emplace(std::move(r));
        sync->cv.notify_all();
      },
      /*allow_inline=*/false);
  if (!submitted.ok()) return submitted;
  std::unique_lock<std::mutex> g(sync->mu);
  sync->cv.wait(g, [&] { return sync->result.has_value(); });
  return std::move(*sync->result);
}

void FrontendSession::Close() { door_->CloseInternal(shared_from_this()); }

bool FrontendSession::closed() const {
  std::lock_guard<std::mutex> g(door_->mu_);
  return closed_;
}

// ---------------------------------------------------------------------------
// FrontDoor
// ---------------------------------------------------------------------------

FrontDoor::FrontDoor(Cluster* cluster, const FrontDoorOptions& options)
    : cluster_(cluster),
      options_(options),
      m_accepted_(cluster->metrics().counter("frontend.accepted")),
      m_queued_(cluster->metrics().counter("frontend.queued")),
      m_shed_(cluster->metrics().counter("frontend.shed")),
      m_idle_closed_(cluster->metrics().counter("frontend.idle_closed")),
      m_pool_busy_(cluster->metrics().counter("frontend.pool_busy")),
      m_executed_(cluster->metrics().counter("frontend.executed")),
      m_inline_(cluster->metrics().counter("frontend.inline_dispatch")) {
  int n = std::max(1, options_.workers);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { WorkerLoop(); });
  sweeper_ = std::thread([this] { SweepLoop(); });
}

FrontDoor::~FrontDoor() { Stop(); }

int64_t FrontDoor::RetryAfterHintLocked() const {
  int64_t base = std::max<int64_t>(options_.retry_after_us, 1);
  auto depth = static_cast<int64_t>(txn_queue_.size() + open_queue_.size());
  int64_t bound = std::max(options_.max_dispatch_queue, 1);
  // 1x at an empty queue up to 4x at a full one: storms back off harder as
  // pressure grows, spreading retries to roughly the service rate.
  return base * (1 + 3 * depth / bound);
}

int64_t FrontDoor::RetryAfterHintUs() const {
  std::lock_guard<std::mutex> lk(mu_);
  return RetryAfterHintLocked();
}

StatusOr<std::shared_ptr<FrontendSession>> FrontDoor::Connect(const std::string& role) {
  if (cluster_->faults().Evaluate(fault_points::kFrontendAcceptDrop)) {
    std::lock_guard<std::mutex> lk(mu_);
    ++shed_connects_;
    m_shed_->Add(1);
    return Status::Unavailable("connect dropped at accept")
        .WithRetryAfter(RetryAfterHintLocked());
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return Status::Unavailable("front door stopped");
    if (options_.max_sessions > 0 &&
        live_.size() >= static_cast<size_t>(options_.max_sessions)) {
      ++shed_connects_;
      m_shed_->Add(1);
      return Status::Unavailable("front door at max_sessions (" +
                                 std::to_string(options_.max_sessions) + ")")
          .WithRetryAfter(RetryAfterHintLocked());
    }
  }
  // Build the Session outside mu_: its constructor registers with the session
  // registry and resolves metrics. Racing connects can overshoot max_sessions
  // by the number of racers — the bound is a shed threshold, not an invariant.
  auto session = std::make_unique<Session>(cluster_, role);
  std::shared_ptr<FrontendSession> fs(new FrontendSession(this, std::move(session)));
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!stopping_) {
      int64_t now = MonotonicMicros();
      fs->connected_us_ = now;
      fs->last_active_us_ = now;
      live_.emplace(fs->id_, fs);
      m_accepted_->Add(1);
      return fs;
    }
  }
  // Stopped while we were building: fs (and its Session) dies here, outside
  // the front-door mutex.
  return Status::Unavailable("front door stopped");
}

Status FrontDoor::SubmitInternal(const std::shared_ptr<FrontendSession>& fs,
                                 std::string sql, StatementCallback done,
                                 bool allow_inline) {
  std::lock_guard<std::mutex> lk(mu_);
  if (stopping_ || fs->closed_) {
    return Status::Unavailable("logical session closed")
        .WithRetryAfter(RetryAfterHintLocked());
  }
  if (fs->busy_) {
    return Status::InvalidArgument(
        "statement already in flight on this logical session (no pipelining)");
  }
  // Safe to read off-thread: the previous statement's worker published its
  // writes by releasing mu_ when it cleared busy_, and we hold mu_ now.
  bool continuation = fs->session_->in_txn();
  if (!continuation) {
    // Only transaction-opening statements shed: a continuation must run so
    // its transaction can finish and release locks. Draining continuations
    // first (below) keeps the set of open transactions near the pool size.
    if (open_queue_.size() >= static_cast<size_t>(std::max(options_.max_dispatch_queue, 1))) {
      ++shed_statements_;
      m_shed_->Add(1);
      return Status::Unavailable("front-door dispatch queue full")
          .WithRetryAfter(RetryAfterHintLocked());
    }
    if (options_.group_queue_overflow > 0 &&
        cluster_->options().resource_groups_enabled) {
      auto bit = group_bound_.find(fs->group_);
      int bound;
      if (bit != group_bound_.end()) {
        bound = bit->second;
      } else {
        auto grp = cluster_->resgroups().Get(fs->group_);
        bound = grp == nullptr ? 0
                               : grp->DispatchBound(cluster_->options().resgroup_max_queue,
                                                    options_.group_queue_overflow);
        group_bound_[fs->group_] = bound;
      }
      if (bound > 0 && group_inflight_[fs->group_] >= bound) {
        ++shed_statements_;
        m_shed_->Add(1);
        return Status::Unavailable("resource group " + fs->group_ +
                                   " saturated at the front door")
            .WithRetryAfter(RetryAfterHintLocked());
      }
    }
  }
  fs->busy_ = true;
  ++group_inflight_[fs->group_];
  // Inline continuation fast path: this Submit is the completion callback of
  // the session's previous statement, running on the worker that just ran it.
  // Hand the work straight back to that worker instead of a queue round-trip
  // (enqueue, wakeup, context switch) — at tens of thousands of statements a
  // second that round-trip is the dominant front-door cost. The session never
  // queues, so it skips the queued-state publication and the wait accounting.
  InlineSlot* slot = tls_inline_;
  if (allow_inline && continuation && slot != nullptr && slot->door == this &&
      slot->armed && !slot->work_set) {
    fs->info_->SetStrings(nullptr, nullptr, &sql);
    slot->work = Work{fs, std::move(sql), std::move(done)};
    slot->work_set = true;
    m_inline_->Add(1);
    return Status::OK();
  }
  // Publish queued state for gp_stat_activity: state first stays whatever it
  // was until the full wait tuple is in place (readers tolerate either order,
  // but this way a `queued` row always has its wait event).
  SessionInfo* info = fs->info_.get();
  info->queue_depth.store(
      static_cast<int64_t>(txn_queue_.size() + open_queue_.size() + 1),
      std::memory_order_release);
  info->wait.start_us.store(MonotonicMicros(), std::memory_order_release);
  info->wait.event.store(static_cast<int>(WaitEvent::kFrontendDispatch),
                         std::memory_order_release);
  info->state.store(static_cast<int>(SessionState::kQueued), std::memory_order_release);
  // Publish the queued text now; Session::Execute republishes on dequeue.
  info->SetStrings(nullptr, nullptr, &sql);
  (continuation ? txn_queue_ : open_queue_)
      .push_back(Work{fs, std::move(sql), std::move(done)});
  m_queued_->Add(1);
  work_cv_.notify_one();
  return Status::OK();
}

void FrontDoor::WorkerLoop() {
  InlineSlot slot;
  slot.door = this;
  tls_inline_ = &slot;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] {
      return stopping_ || !txn_queue_.empty() || !open_queue_.empty();
    });
    if (txn_queue_.empty() && open_queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    std::deque<Work>& q = txn_queue_.empty() ? open_queue_ : txn_queue_;
    Work w = std::move(q.front());
    q.pop_front();
    ++busy_workers_;
    if (busy_workers_ >= std::max(options_.workers, 1)) m_pool_busy_->Add(1);
    slot.streak = 0;
    bool queued_work = true;  // false once w came from the inline slot
    // Inner loop: one dequeued statement plus the inline continuation chain
    // its completion callbacks hand back. busy_workers_ is released per
    // statement (observers poll it to see a statement finish) and retaken
    // when a continuation keeps the worker.
    for (;;) {
      bool fail_fast = stopping_;
      lk.unlock();

      SessionInfo* info = w.fs->info_.get();
      if (queued_work) {
        // Account the dispatch wait (and clear the queued state) on dequeue.
        // Inline work never queued: its wait tuple was never set.
        int64_t qstart = info->wait.start_us.load(std::memory_order_acquire);
        int64_t waited = std::max<int64_t>(0, MonotonicMicros() - qstart);
        cluster_->wait_events().Record(WaitEvent::kFrontendDispatch, -1, w.fs->group_,
                                       waited);
        info->wait.event.store(0, std::memory_order_release);
        info->wait.start_us.store(0, std::memory_order_release);
        info->queue_depth.store(0, std::memory_order_release);
      }

      StatusOr<QueryResult> result = Status::Unavailable("front door stopping");
      if (!fail_fast) {
        // Attach: from here this worker is the session's thread for one
        // statement — the session leaves `queued` the moment it is dispatched.
        info->state.store(static_cast<int>(SessionState::kActive),
                          std::memory_order_release);
        // Fault point: a stalled pool worker (GC pause, hung disk) — chaos arms
        // this to prove queued sessions stay diagnosable and nothing deadlocks.
        int64_t stall =
            cluster_->faults().EvaluateDelay(fault_points::kFrontendWorkerStall);
        if (stall > 0) PreciseSleepUs(stall);
        // The Session installs its own WaitContext inside Execute, so wait
        // events, resgroup admission and the statement deadline all attribute
        // normally.
        int64_t t0 = MonotonicMicros();
        result = w.fs->session_->Execute(w.sql);
        busy_us_.fetch_add(MonotonicMicros() - t0, std::memory_order_relaxed);
        m_executed_->Add(1);
        // Detach: publish the idle state the next attach will build on.
        info->state.store(static_cast<int>(w.fs->session_->in_txn()
                                               ? SessionState::kIdleInTransaction
                                               : SessionState::kIdle),
                          std::memory_order_release);
      } else {
        info->state.store(static_cast<int>(SessionState::kIdle),
                          std::memory_order_release);
      }

      lk.lock();
      --busy_workers_;  // re-incremented if the callback hands back a continuation
      w.fs->busy_ = false;
      w.fs->ever_ran_ = true;
      w.fs->last_active_us_ = MonotonicMicros();
      auto it = group_inflight_.find(w.fs->group_);
      if (it != group_inflight_.end() && --it->second <= 0) group_inflight_.erase(it);
      std::unique_ptr<Session> dead;
      if (w.fs->closed_ && w.fs->session_ != nullptr) dead = FinalizeLocked(w.fs.get());
      lk.unlock();
      dead.reset();  // Session dtor (rollback + unregister) outside mu_
      // Run the callback with the slot armed: if it submits this session's
      // next continuation, SubmitInternal stows the work here and this worker
      // runs it directly. Stopping or a full streak forces the queued path.
      slot.armed = !fail_fast && slot.streak < kMaxInlineStreak;
      if (w.done) w.done(std::move(result));
      slot.armed = false;
      if (slot.work_set) {
        w = std::move(slot.work);
        slot.work = Work{};
        slot.work_set = false;
        ++slot.streak;
        queued_work = false;
        lk.lock();  // inner-loop top expects the lock held (re-reads stopping_)
        ++busy_workers_;  // not a dequeue, so no pool_busy accounting
        continue;
      }
      w = Work{};  // drop the session handle before re-locking
      break;
    }
    lk.lock();
  }
}

void FrontDoor::SweepLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stopping_) {
    sweep_cv_.wait_for(lk,
                       std::chrono::microseconds(std::max<int64_t>(
                           options_.sweep_period_us, 1000)),
                       [&] { return stopping_; });
    if (stopping_) return;
    if (options_.idle_timeout_us <= 0 && options_.login_timeout_us <= 0) continue;
    int64_t now = MonotonicMicros();
    std::vector<std::unique_ptr<Session>> dead;
    std::vector<int64_t> ids;
    for (auto& [id, fs] : live_) {
      if (fs->busy_ || fs->closed_) continue;
      bool idle_hit = options_.idle_timeout_us > 0 && fs->ever_ran_ &&
                      now - fs->last_active_us_ >= options_.idle_timeout_us;
      bool login_hit = options_.login_timeout_us > 0 && !fs->ever_ran_ &&
                       now - fs->connected_us_ >= options_.login_timeout_us;
      if (!idle_hit && !login_hit) continue;
      dead.push_back(FinalizeLocked(fs.get()));
      ids.push_back(id);
      ++idle_closed_;
      m_idle_closed_->Add(1);
    }
    for (int64_t id : ids) live_.erase(id);
    if (dead.empty()) continue;
    lk.unlock();
    dead.clear();  // Session dtors (rollback + unregister) outside mu_
    lk.lock();
  }
}

std::unique_ptr<Session> FrontDoor::FinalizeLocked(FrontendSession* fs) {
  fs->closed_ = true;
  return std::move(fs->session_);
}

void FrontDoor::CloseInternal(const std::shared_ptr<FrontendSession>& fs) {
  std::unique_ptr<Session> dead;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (fs->closed_) return;
    fs->closed_ = true;
    live_.erase(fs->id_);
    // Busy: the worker running the in-flight statement finalizes on completion.
    if (!fs->busy_ && fs->session_ != nullptr) dead = FinalizeLocked(fs.get());
  }
  dead.reset();
}

void FrontDoor::Stop() {
  std::vector<std::thread> workers;
  std::thread sweeper;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
    workers.swap(workers_);
    sweeper.swap(sweeper_);
    work_cv_.notify_all();
    sweep_cv_.notify_all();
  }
  for (auto& t : workers) {
    if (t.joinable()) t.join();
  }
  if (sweeper.joinable()) sweeper.join();
  // Workers drained both queues on the way out (failing each callback with
  // kUnavailable); with them joined no session is busy. Close every survivor.
  std::vector<std::unique_ptr<Session>> dead;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [id, fs] : live_) {
      fs->closed_ = true;
      if (fs->session_ != nullptr) dead.push_back(FinalizeLocked(fs.get()));
    }
    live_.clear();
  }
  dead.clear();
}

FrontDoor::Stats FrontDoor::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s;
  s.accepted = m_accepted_->value();
  s.queued = m_queued_->value();
  s.executed = m_executed_->value();
  s.inline_dispatched = m_inline_->value();
  s.shed_connects = shed_connects_;
  s.shed_statements = shed_statements_;
  s.idle_closed = idle_closed_;
  s.pool_busy = m_pool_busy_->value();
  s.busy_us = busy_us_.load(std::memory_order_relaxed);
  s.live_sessions = static_cast<int>(live_.size());
  s.queue_depth = static_cast<int>(txn_queue_.size() + open_queue_.size());
  s.busy_workers = busy_workers_;
  return s;
}

}  // namespace gphtap
