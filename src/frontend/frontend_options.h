// Sizing and policy GUCs for the million-session front door (frontend.h).
// Split from frontend.h so ClusterOptions can embed them by value without
// pulling the front door (and with it the session machinery) into cluster.h.
#ifndef GPHTAP_FRONTEND_FRONTEND_OPTIONS_H_
#define GPHTAP_FRONTEND_FRONTEND_OPTIONS_H_

#include <cstdint>

namespace gphtap {

struct FrontDoorOptions {
  // Master switch: when false the cluster builds no front door and
  // Cluster::ConnectLogical fails with kNotSupported. Direct Connect()
  // sessions are unaffected either way.
  bool enabled = false;

  // Fixed pool size: the only OS threads the front door ever owns, however
  // many logical sessions are connected (plus one sweeper thread).
  int workers = 8;

  // Accept bound: connects beyond this many live logical sessions are shed
  // with kUnavailable + retry-after. 0 = unbounded accept.
  int max_sessions = 100'000;

  // Dispatch bound: statements (of sessions not yet in a transaction) queued
  // for a worker beyond this are shed. Statements of an open transaction are
  // exempt — they must run so the transaction can release its locks — and are
  // also drained first, which keeps the number of concurrently open
  // transactions near the pool size instead of the session count.
  int max_dispatch_queue = 4096;

  // Per-resource-group dispatch backpressure: each group's queued + executing
  // front-door statements are capped at ResourceGroup::DispatchBound(
  // resgroup_max_queue, group_queue_overflow) so overload sheds at the front
  // door instead of tying up pool workers parked in PR 5's admission queue.
  // 0 disables the per-group cap (the global dispatch bound still applies).
  int group_queue_overflow = 4;

  // Idle-session timeout: a session with no statement for this long is closed
  // by the sweeper (its gp_stat_activity entry disappears; the next Submit
  // fails with a retryable kUnavailable so the client reconnects). 0 = never.
  int64_t idle_timeout_us = 0;

  // Login timeout: a session that connects but never runs a statement is
  // closed after this long (half-open connection storm hygiene). 0 = never.
  int64_t login_timeout_us = 0;

  // Base retry-after hint attached to shed responses. The actual hint scales
  // with observed queue pressure so clients pace to the service rate.
  int64_t retry_after_us = 10'000;

  // Sweeper period for idle/login timeout enforcement.
  int64_t sweep_period_us = 50'000;
};

}  // namespace gphtap

#endif  // GPHTAP_FRONTEND_FRONTEND_OPTIONS_H_
