#include "delta/delta_store.h"

#include <algorithm>

namespace gphtap {

DeltaStore::DeltaStore(TableDef def) : def_(std::move(def)) {
  open_cols_.resize(def_.schema.num_columns());
}

size_t DeltaStore::PositionOfLocked(TupleId tid) const {
  auto it = tid_pos_.find(tid);
  return it == tid_pos_.end() ? kNoPos : it->second;
}

void DeltaStore::FreeGroupLocked(size_t gi) {
  SealedGroup& g = sealed_[gi];
  if (g.freed) return;
  g.columns.clear();
  g.columns.shrink_to_fit();
  g.freed = true;
  ++freed_groups_;
}

void DeltaStore::ApplyInsert(TupleId tid, LocalXid xid, const Row& row) {
  std::unique_lock<std::shared_mutex> g(latch_);
  // Heap tids are reused after vacuum; a mapping that still exists here is a
  // stale version of the slot — retire it before the new row takes the tid.
  size_t old = PositionOfLocked(tid);
  if (old != kNoPos) {
    const size_t sealed_rows = sealed_.size() * kGroupRows;
    if (old < sealed_rows) {
      sealed_[old / kGroupRows].dropped[old % kGroupRows] = 1;
    } else {
      open_dropped_[old - sealed_rows] = 1;
    }
  }
  const size_t ncols = def_.schema.num_columns();
  for (size_t c = 0; c < ncols; ++c) {
    open_cols_[c].Append(c < row.size() ? row[c] : Datum::Null());
  }
  tid_pos_[tid] = sealed_.size() * kGroupRows + open_tids_.size();
  open_tids_.push_back(tid);
  open_xmins_.push_back(xid);
  open_xmaxs_.push_back(kInvalidLocalXid);
  open_dropped_.push_back(0);
}

void DeltaStore::ApplyDelete(TupleId tid, LocalXid xid) {
  std::unique_lock<std::shared_mutex> g(latch_);
  size_t pos = PositionOfLocked(tid);
  if (pos == kNoPos) return;
  const size_t sealed_rows = sealed_.size() * kGroupRows;
  if (pos < sealed_rows) {
    sealed_[pos / kGroupRows].xmaxs[pos % kGroupRows] = xid;
  } else {
    open_xmaxs_[pos - sealed_rows] = xid;
  }
  ++deletes_;
}

void DeltaStore::ApplyFreeSlot(TupleId tid) {
  std::unique_lock<std::shared_mutex> g(latch_);
  size_t pos = PositionOfLocked(tid);
  tid_pos_.erase(tid);  // the heap slot may be reused by a future insert
  if (pos == kNoPos) return;
  const size_t sealed_rows = sealed_.size() * kGroupRows;
  if (pos < sealed_rows) {
    sealed_[pos / kGroupRows].dropped[pos % kGroupRows] = 1;
  } else {
    open_dropped_[pos - sealed_rows] = 1;
  }
}

void DeltaStore::ApplyTruncate() {
  std::unique_lock<std::shared_mutex> g(latch_);
  sealed_.clear();
  freed_groups_ = 0;
  for (ColumnVector& cv : open_cols_) cv.Clear();
  open_tids_.clear();
  open_xmins_.clear();
  open_xmaxs_.clear();
  open_dropped_.clear();
  tid_pos_.clear();
  pending_free_.clear();
  ++truncate_epoch_;
}

void DeltaStore::ApplyFreeGroup(size_t group_index, uint64_t epoch) {
  std::unique_lock<std::shared_mutex> g(latch_);
  if (epoch != truncate_epoch_) return;  // free predates a truncate: stale
  if (group_index < sealed_.size()) {
    FreeGroupLocked(group_index);
  } else {
    // Seals are local, not logged: a replica replaying the log may reach this
    // free before it has sealed the group. Defer; SealCold lands it.
    pending_free_.insert(group_index);
  }
}

DeltaSealResult DeltaStore::SealCold(const CommitLog* clog) {
  std::unique_lock<std::shared_mutex> g(latch_);
  DeltaSealResult result;
  const size_t ncols = def_.schema.num_columns();
  while (open_tids_.size() >= kGroupRows) {
    if (clog != nullptr) {
      bool decided = true;
      for (size_t r = 0; r < kGroupRows && decided; ++r) {
        TxnState s = clog->GetState(open_xmins_[r]);
        decided = (s == TxnState::kCommitted || s == TxnState::kAborted);
      }
      if (!decided) break;  // the run is still hot; try again next pass
    }
    SealedGroup group;
    group.columns.resize(ncols);
    std::vector<Datum> vals(kGroupRows);
    for (size_t c = 0; c < ncols; ++c) {
      for (size_t r = 0; r < kGroupRows; ++r) vals[r] = open_cols_[c].GetDatum(r);
      Status s = CompressColumn(def_.compression, def_.schema.column(c).type, vals,
                                &group.columns[c]);
      if (!s.ok()) {
        CompressColumn(CompressionKind::kNone, def_.schema.column(c).type, vals,
                       &group.columns[c]);
      }
    }
    auto take = [](auto& v, auto& out) {
      out.assign(v.begin(), v.begin() + kGroupRows);
      v.erase(v.begin(), v.begin() + kGroupRows);
    };
    take(open_tids_, group.tids);
    take(open_xmins_, group.xmins);
    take(open_xmaxs_, group.xmaxs);
    take(open_dropped_, group.dropped);
    std::vector<ColumnVector> rest(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      const size_t n = open_cols_[c].size();
      rest[c].Reserve(n > kGroupRows ? n - kGroupRows : 0);
      for (size_t r = kGroupRows; r < n; ++r) rest[c].AppendFrom(open_cols_[c], r);
    }
    open_cols_ = std::move(rest);
    sealed_.push_back(std::move(group));
    ++result.groups_sealed;
    result.rows_sealed += kGroupRows;
    // A free that arrived from the log before we sealed this group lands now.
    auto pf = pending_free_.find(sealed_.size() - 1);
    if (pf != pending_free_.end()) {
      FreeGroupLocked(sealed_.size() - 1);
      pending_free_.erase(pf);
    }
  }
  return result;
}

AoReclaimResult DeltaStore::ReclaimDeadGroups(const AoRowDeadFn& dead, ChangeLog* log) {
  std::unique_lock<std::shared_mutex> g(latch_);
  AoReclaimResult result;
  for (size_t gi = 0; gi < sealed_.size(); ++gi) {
    SealedGroup& grp = sealed_[gi];
    if (grp.freed) continue;
    bool all_dead = true;
    for (size_t r = 0; r < kGroupRows && all_dead; ++r) {
      all_dead = grp.dropped[r] != 0 || dead(grp.xmins[r], grp.xmaxs[r]);
    }
    if (!all_dead) continue;
    FreeGroupLocked(gi);
    result.groups_freed += 1;
    result.rows_freed += kGroupRows;
    if (log != nullptr) {
      ChangeRecord rec;
      rec.kind = ChangeKind::kFreeGroup;
      rec.table = def_.id;
      rec.tid = gi;
      rec.tid2 = truncate_epoch_;  // stamps the epoch; see ApplyFreeGroup
      log->Append(std::move(rec));
    }
  }
  return result;
}

Status DeltaStore::ScanBatches(const VisibilityContext& ctx, const std::vector<int>& cols,
                               const BatchScanCallback& fn, uint64_t* sealed_rows_scanned,
                               uint64_t* open_rows_scanned) const {
  std::shared_lock<std::shared_mutex> g(latch_);
  std::vector<int> all;
  if (cols.empty()) {
    all.resize(def_.schema.num_columns());
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  }
  const std::vector<int>& touched = cols.empty() ? all : cols;

  for (const SealedGroup& grp : sealed_) {
    if (grp.freed) continue;
    std::vector<int32_t> sel;
    for (size_t r = 0; r < kGroupRows; ++r) {
      if (grp.dropped[r]) continue;
      if (TupleVisible(grp.xmins[r], grp.xmaxs[r], ctx)) sel.push_back(static_cast<int32_t>(r));
    }
    if (sel.empty()) continue;
    ColumnBatch batch;
    batch.columns.resize(touched.size());
    for (size_t i = 0; i < touched.size(); ++i) {
      GPHTAP_ASSIGN_OR_RETURN(std::vector<Datum> vals,
                              DecompressColumn(grp.columns[touched[i]]));
      batch.columns[i].AdoptDatums(std::move(vals),
                                   def_.schema.column(touched[i]).type);
    }
    batch.rows = kGroupRows;
    batch.sel = std::move(sel);
    if (sealed_rows_scanned != nullptr) *sealed_rows_scanned += batch.sel.size();
    if (!fn(std::move(batch))) return Status::OK();
  }

  const size_t open_n = open_tids_.size();
  for (size_t base = 0; base < open_n; base += kGroupRows) {
    const size_t end = std::min(open_n, base + kGroupRows);
    ColumnBatch batch;
    batch.Reset(touched.size(), end - base);
    for (size_t r = base; r < end; ++r) {
      if (open_dropped_[r]) continue;
      if (!TupleVisible(open_xmins_[r], open_xmaxs_[r], ctx)) continue;
      for (size_t i = 0; i < touched.size(); ++i) {
        batch.columns[i].AppendFrom(open_cols_[touched[i]], r);
      }
      ++batch.rows;
    }
    if (batch.rows == 0) continue;
    batch.SelectAll();
    if (open_rows_scanned != nullptr) *open_rows_scanned += batch.rows;
    if (!fn(std::move(batch))) return Status::OK();
  }
  return Status::OK();
}

DeltaStoreStats DeltaStore::Stats() const {
  std::shared_lock<std::shared_mutex> g(latch_);
  DeltaStoreStats s;
  s.open_rows = open_tids_.size();
  s.sealed_groups = sealed_.size();
  s.freed_groups = freed_groups_;
  s.sealed_rows = (sealed_.size() - freed_groups_) * kGroupRows;
  s.deletes = deletes_;
  s.pending_frees = pending_free_.size();
  return s;
}

}  // namespace gphtap
