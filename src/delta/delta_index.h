// Per-segment delta index: tails the segment's change log on its own thread
// (the same stream the mirror replays) and applies every heap-table data
// record to that table's DeltaStore, so the columnar deltas trail the row
// store by the feed's apply latency — milliseconds, not a batch ETL window.
//
// Freshness contract: kInsert / kSetXmax records are appended at statement
// execution time, before the writing transaction commits. A scan that first
// waits for `applied >= log.size()` (WaitForApplied) therefore sees every
// record of every transaction its snapshot can see — the delta-merged scan is
// snapshot-exact, never "eventually consistent".
#ifndef GPHTAP_DELTA_DELTA_INDEX_H_
#define GPHTAP_DELTA_DELTA_INDEX_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "delta/delta_store.h"

namespace gphtap {

class DeltaIndex {
 public:
  using TableDefLookup = std::function<StatusOr<TableDef>(TableId)>;

  DeltaIndex(int segment_index, TableDefLookup lookup, MetricsRegistry* metrics);
  ~DeltaIndex();

  /// Starts the feed thread tailing `log`. The log outlives this index (it is
  /// owned by the segment and survives Crash/Recover); a Close() by failover
  /// does not stop the feed — it polls for post-promotion appends.
  void Start(ChangeLog* log);
  void Stop();

  /// Number of log records applied so far.
  uint64_t applied() const { return applied_.load(std::memory_order_acquire); }

  /// Blocks until `applied() >= target` (TimedOut after `timeout_us`).
  Status WaitForApplied(uint64_t target, int64_t timeout_us);

  /// The table's delta store, or null when the table has none here (not a
  /// plain heap table, or no record touched it yet — i.e. it is empty).
  DeltaStore* store(TableId id) const;

  struct TableStatus {
    TableId id = 0;
    std::string name;
    DeltaStoreStats stats;
  };
  std::vector<TableStatus> TableStatuses() const;

  /// One seal-daemon pass over every store: seal cold runs, then reclaim
  /// all-dead groups, logging kFreeGroup records to `log`.
  DeltaSealResult SealAndReclaim(const CommitLog* clog, ChangeLog* log,
                                 const AoRowDeadFn& dead);

 private:
  void FeedLoop();
  void ApplyRecord(const ChangeRecord& rec);
  DeltaStore* StoreForRecord(TableId table);

  const int segment_index_;
  const TableDefLookup lookup_;
  MetricsRegistry* const metrics_;
  Counter* applied_records_ = nullptr;
  Counter* rows_ = nullptr;
  Counter* deletes_ = nullptr;

  ChangeLog* log_ = nullptr;
  std::thread feed_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> applied_{0};

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  std::atomic<int> waiters_{0};

  mutable std::shared_mutex stores_mu_;
  // nullptr marks "seen and not tracked" (AO / partitioned / virtual tables)
  // so the catalog lookup happens once per table.
  std::map<TableId, std::unique_ptr<DeltaStore>> stores_;
};

}  // namespace gphtap

#endif  // GPHTAP_DELTA_DELTA_INDEX_H_
