// In-memory columnar delta store: a per-table column index over a heap
// table, kept fresh by tailing the segment's change log (the PolarDB-IMCI
// shape: base rows stay in the row store, an in-memory column index absorbs
// the update stream so analytics scan columns instead of pages).
//
// Layout mirrors AoColumnTable: rows accumulate in an open run of typed
// ColumnVectors and are sealed into compressed 1024-row groups once every
// creating transaction has decided. Group boundaries are purely positional
// (row N of the log-apply order lands in group N/1024), so any replayer that
// applies the same change log builds byte-identical groups — which is what
// makes seal-daemon kFreeGroup records safe to replay on a mirror that has
// not sealed yet (they defer in `pending_free_` until the group exists).
//
// Concurrency: one feed thread applies log records (unique latch), the seal
// daemon seals/reclaims (unique latch), any number of scans read under the
// shared latch — a scan therefore observes a stable store while the feed
// briefly queues behind it.
#ifndef GPHTAP_DELTA_DELTA_STORE_H_
#define GPHTAP_DELTA_DELTA_STORE_H_

#include <set>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "storage/ao_group.h"
#include "storage/change_log.h"
#include "storage/column_store.h"
#include "storage/compression.h"
#include "txn/clog.h"
#include "txn/visibility.h"
#include "vec/column_batch.h"

namespace gphtap {

struct DeltaStoreStats {
  uint64_t open_rows = 0;      // rows in the unsealed tail (incl. dropped)
  uint64_t sealed_groups = 0;  // sealed groups, including freed slots
  uint64_t sealed_rows = 0;    // rows in live (non-freed) sealed groups
  uint64_t freed_groups = 0;
  uint64_t deletes = 0;        // xmax marks applied
  uint64_t pending_frees = 0;  // kFreeGroup seen before its group sealed here
};

struct DeltaSealResult {
  size_t groups_sealed = 0;
  size_t rows_sealed = 0;
};

class DeltaStore {
 public:
  /// One sealed group decompresses into exactly one ColumnBatch.
  static constexpr size_t kGroupRows = ColumnBatch::kDefaultCapacity;

  explicit DeltaStore(TableDef def);

  // ---- log application (feed thread / replay) -------------------------------
  void ApplyInsert(TupleId tid, LocalXid xid, const Row& row);
  void ApplyDelete(TupleId tid, LocalXid xid);  // kSetXmax
  void ApplyFreeSlot(TupleId tid);              // heap vacuum reclaimed the slot
  void ApplyTruncate();

  /// Replays a seal-daemon kFreeGroup. `epoch` is the truncate epoch stamped
  /// into the record (tid2) at emit time: a free that predates a truncate is
  /// ignored so it can never hit a post-truncate group of the same index.
  /// A free for a group this replica has not sealed yet defers in
  /// `pending_free_` and lands the moment the group forms — the replay-order
  /// fix: seals are local (never logged), so a mirror rebuilding from the log
  /// can legitimately see the free before it has sealed the group.
  void ApplyFreeGroup(size_t group_index, uint64_t epoch);

  // ---- seal daemon ----------------------------------------------------------
  /// Seals every complete kGroupRows prefix of the open run whose creating
  /// transactions have all decided (committed or aborted) per `clog`; a null
  /// clog seals unconditionally (replay rebuild / tests). Newly sealed groups
  /// with a pending free are freed immediately.
  DeltaSealResult SealCold(const CommitLog* clog);

  /// Frees every sealed group whose rows are all dead per `dead` ("dead to
  /// every snapshot"). Emits one kFreeGroup change record per freed group to
  /// `log` (may be null) so mirrors and crash recovery replay the reclamation
  /// for free.
  AoReclaimResult ReclaimDeadGroups(const AoRowDeadFn& dead, ChangeLog* log);

  // ---- scans ----------------------------------------------------------------
  /// Vectorized scan of the whole store under `ctx`: sealed groups decompress
  /// their touched columns into one batch each (selection vector = visible
  /// rows), the open tail arrives as dense batches. The shared latch is held
  /// across the scan, so the result is a consistent cut of the store.
  /// `sealed_rows_scanned` / `open_rows_scanned` (may be null) accumulate the
  /// visible row counts served from each part — the EXPLAIN per-store counts.
  Status ScanBatches(const VisibilityContext& ctx, const std::vector<int>& cols,
                     const BatchScanCallback& fn, uint64_t* sealed_rows_scanned,
                     uint64_t* open_rows_scanned) const;

  DeltaStoreStats Stats() const;
  const TableDef& def() const { return def_; }

 private:
  struct SealedGroup {
    std::vector<CompressedBlock> columns;  // one block per schema column
    // Uncompressed per-row metadata; kept after a free so positions (and late
    // xmax / free-slot marks) stay valid.
    std::vector<TupleId> tids;
    std::vector<LocalXid> xmins;
    std::vector<LocalXid> xmaxs;
    std::vector<uint8_t> dropped;  // heap slot vacuumed (dead to everyone)
    bool freed = false;
  };

  // Global row position: sealed groups first (group*kGroupRows + offset), then
  // the open run. Sealing moves the boundary but never renumbers a row.
  static constexpr size_t kNoPos = static_cast<size_t>(-1);
  size_t PositionOfLocked(TupleId tid) const;
  void FreeGroupLocked(size_t gi);

  const TableDef def_;

  mutable std::shared_mutex latch_;
  std::vector<SealedGroup> sealed_;
  size_t freed_groups_ = 0;
  // Open run: one ColumnVector per schema column plus parallel metadata.
  std::vector<ColumnVector> open_cols_;
  std::vector<TupleId> open_tids_;
  std::vector<LocalXid> open_xmins_;
  std::vector<LocalXid> open_xmaxs_;
  std::vector<uint8_t> open_dropped_;
  std::unordered_map<TupleId, size_t> tid_pos_;
  std::set<size_t> pending_free_;  // group indexes freed before sealing here
  uint64_t truncate_epoch_ = 0;
  uint64_t deletes_ = 0;
};

}  // namespace gphtap

#endif  // GPHTAP_DELTA_DELTA_STORE_H_
