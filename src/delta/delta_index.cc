#include "delta/delta_index.h"

#include <chrono>

#include "common/clock.h"

namespace gphtap {

DeltaIndex::DeltaIndex(int segment_index, TableDefLookup lookup, MetricsRegistry* metrics)
    : segment_index_(segment_index), lookup_(std::move(lookup)), metrics_(metrics) {
  if (metrics_ != nullptr) {
    applied_records_ = metrics_->counter("delta.applied_records");
    rows_ = metrics_->counter("delta.rows");
    deletes_ = metrics_->counter("delta.deletes");
  }
}

DeltaIndex::~DeltaIndex() { Stop(); }

void DeltaIndex::Start(ChangeLog* log) {
  log_ = log;
  running_.store(true, std::memory_order_release);
  feed_ = std::thread([this] { FeedLoop(); });
}

void DeltaIndex::Stop() {
  if (!feed_.joinable()) return;
  running_.store(false, std::memory_order_release);
  log_->Close();  // wakes a blocking Read; idempotent
  feed_.join();
}

void DeltaIndex::FeedLoop() {
  size_t cursor = applied_.load(std::memory_order_acquire);
  while (running_.load(std::memory_order_acquire)) {
    std::optional<ChangeRecord> rec = log_->Read(cursor);
    if (!rec.has_value()) {
      // Closed log with nothing left. Failover closes the shared log while
      // the promoted side keeps appending to it, so poll rather than exit.
      if (!running_.load(std::memory_order_acquire)) break;
      PreciseSleepUs(200);
      continue;
    }
    ApplyRecord(*rec);
    ++cursor;
    applied_.store(cursor, std::memory_order_release);
    if (applied_records_ != nullptr) applied_records_->Add(1);
    if (waiters_.load(std::memory_order_relaxed) > 0) {
      std::lock_guard<std::mutex> g(wait_mu_);
      wait_cv_.notify_all();
    }
  }
}

DeltaStore* DeltaIndex::StoreForRecord(TableId table) {
  {
    std::shared_lock<std::shared_mutex> lk(stores_mu_);
    auto it = stores_.find(table);
    if (it != stores_.end()) return it->second.get();
  }
  StatusOr<TableDef> def = lookup_(table);
  std::unique_ptr<DeltaStore> store;
  if (def.ok() && def.value().storage == StorageKind::kHeap &&
      !def.value().partitions.has_value() && !def.value().is_system_view) {
    store = std::make_unique<DeltaStore>(def.value());
  }
  std::unique_lock<std::shared_mutex> lk(stores_mu_);
  auto it = stores_.emplace(table, std::move(store)).first;
  return it->second.get();
}

void DeltaIndex::ApplyRecord(const ChangeRecord& rec) {
  switch (rec.kind) {
    case ChangeKind::kTxnBegin:
    case ChangeKind::kTxnCommit:
    case ChangeKind::kTxnAbort:
    case ChangeKind::kTxnPrepare:
    case ChangeKind::kLink:  // ctid chains are a row-store concern
      return;
    default:
      break;
  }
  DeltaStore* store = StoreForRecord(rec.table);
  if (store == nullptr) return;  // not a plain heap table
  switch (rec.kind) {
    case ChangeKind::kInsert:
      store->ApplyInsert(rec.tid, rec.xid, rec.row);
      if (rows_ != nullptr) rows_->Add(1);
      break;
    case ChangeKind::kSetXmax:
      store->ApplyDelete(rec.tid, rec.xid);
      if (deletes_ != nullptr) deletes_->Add(1);
      break;
    case ChangeKind::kFreeSlot:
      store->ApplyFreeSlot(rec.tid);
      break;
    case ChangeKind::kTruncate:
      store->ApplyTruncate();
      break;
    case ChangeKind::kFreeGroup:
      store->ApplyFreeGroup(static_cast<size_t>(rec.tid), rec.tid2);
      break;
    default:
      break;
  }
}

Status DeltaIndex::WaitForApplied(uint64_t target, int64_t timeout_us) {
  if (applied() >= target) return Status::OK();
  const int64_t deadline = MonotonicMicros() + timeout_us;
  waiters_.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> lk(wait_mu_);
  Status result = Status::OK();
  for (;;) {
    if (applied() >= target) break;
    if (!running_.load(std::memory_order_acquire)) {
      result = Status::Unavailable("delta index stopped");
      break;
    }
    int64_t now = MonotonicMicros();
    if (now >= deadline) {
      result = Status::TimedOut("delta freshness wait");
      break;
    }
    // Capped wait: a missed notify costs at most 1ms, never a hang.
    wait_cv_.wait_for(lk, std::chrono::microseconds(std::min<int64_t>(deadline - now, 1000)));
  }
  waiters_.fetch_sub(1, std::memory_order_relaxed);
  return result;
}

DeltaStore* DeltaIndex::store(TableId id) const {
  std::shared_lock<std::shared_mutex> lk(stores_mu_);
  auto it = stores_.find(id);
  return it == stores_.end() ? nullptr : it->second.get();
}

std::vector<DeltaIndex::TableStatus> DeltaIndex::TableStatuses() const {
  std::shared_lock<std::shared_mutex> lk(stores_mu_);
  std::vector<TableStatus> out;
  for (const auto& [id, store] : stores_) {
    if (store == nullptr) continue;
    TableStatus ts;
    ts.id = id;
    ts.name = store->def().name;
    ts.stats = store->Stats();
    out.push_back(std::move(ts));
  }
  return out;
}

DeltaSealResult DeltaIndex::SealAndReclaim(const CommitLog* clog, ChangeLog* log,
                                           const AoRowDeadFn& dead) {
  std::vector<DeltaStore*> stores;
  {
    std::shared_lock<std::shared_mutex> lk(stores_mu_);
    for (const auto& [id, store] : stores_) {
      if (store != nullptr) stores.push_back(store.get());
    }
  }
  DeltaSealResult total;
  for (DeltaStore* store : stores) {
    DeltaSealResult sealed = store->SealCold(clog);
    total.groups_sealed += sealed.groups_sealed;
    total.rows_sealed += sealed.rows_sealed;
    AoReclaimResult reclaimed = store->ReclaimDeadGroups(dead, log);
    if (metrics_ != nullptr) {
      if (sealed.groups_sealed > 0) {
        metrics_->counter("delta.sealed_groups")->Add(sealed.groups_sealed);
        metrics_->counter("delta.sealed_rows")->Add(sealed.rows_sealed);
      }
      if (reclaimed.groups_freed > 0) {
        metrics_->counter("delta.freed_groups")->Add(reclaimed.groups_freed);
      }
    }
  }
  if (metrics_ != nullptr) metrics_->counter("delta.seal_passes")->Add(1);
  return total;
}

}  // namespace gphtap
